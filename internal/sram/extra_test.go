package sram

import (
	"testing"

	"invisiblebits/internal/analog"
	"invisiblebits/internal/rng"
)

func TestByteAccessors(t *testing.T) {
	a := mustNew(t, testSpec(101))
	if _, err := a.ByteAt(0); err != ErrUnpowered {
		t.Errorf("ByteAt unpowered: %v", err)
	}
	if err := a.SetByteAt(0, 1); err != ErrUnpowered {
		t.Errorf("SetByteAt unpowered: %v", err)
	}
	if _, err := a.PowerOn(25); err != nil {
		t.Fatal(err)
	}
	if err := a.SetByteAt(5, 0xC3); err != nil {
		t.Fatal(err)
	}
	b, err := a.ByteAt(5)
	if err != nil {
		t.Fatal(err)
	}
	if b != 0xC3 {
		t.Errorf("byte = %#x", b)
	}
	if _, err := a.ByteAt(-1); err == nil {
		t.Error("negative offset accepted")
	}
	if _, err := a.ByteAt(a.Bytes()); err == nil {
		t.Error("out-of-range read accepted")
	}
	if err := a.SetByteAt(a.Bytes(), 0); err == nil {
		t.Error("out-of-range write accepted")
	}
}

func TestSpecAccessor(t *testing.T) {
	spec := testSpec(102)
	a := mustNew(t, spec)
	if got := a.Spec(); got.Seed != spec.Seed || got.Rows != spec.Rows {
		t.Errorf("Spec() = %+v", got)
	}
}

func TestCaptureVotesConsistentWithMajority(t *testing.T) {
	a := mustNew(t, testSpec(103))
	votes, err := a.CaptureVotes(5, 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(votes) != a.Cells() {
		t.Fatalf("votes length = %d", len(votes))
	}
	for i, v := range votes {
		if v > 5 {
			t.Fatalf("cell %d has %d votes of 5", i, v)
		}
	}
	// Vote counts must track the bias: strongly positive-bias cells read
	// 1 every time.
	for i := 0; i < a.Cells(); i++ {
		if a.Bias(i) > 20 && votes[i] != 5 {
			t.Fatalf("cell %d: bias %v but %d/5 votes", i, a.Bias(i), votes[i])
		}
		if a.Bias(i) < -20 && votes[i] != 0 {
			t.Fatalf("cell %d: bias %v but %d/5 votes", i, a.Bias(i), votes[i])
		}
	}
	if _, err := a.CaptureVotes(0, 25); err == nil {
		t.Error("zero captures accepted")
	}
}

func TestOperateRandomValidation(t *testing.T) {
	a := mustNew(t, testSpec(104))
	w := rng.NewWorkloadWriter(1, 0)
	cond := analog.Conditions{VoltageV: 1.2, TempC: 25}
	if err := a.OperateRandom(w, cond, 1, 1); err != ErrUnpowered {
		t.Errorf("unpowered operate: %v", err)
	}
	if _, err := a.PowerOn(25); err != nil {
		t.Fatal(err)
	}
	if err := a.OperateRandom(w, cond, 1, 0); err == nil {
		t.Error("zero epoch accepted")
	}
	if err := a.OperateRandom(w, cond, 0, 1); err != nil {
		t.Errorf("zero duration should be a no-op: %v", err)
	}
	// Partial final epoch: 1.5h in 1h epochs.
	if err := a.OperateRandom(w, cond, 1.5, 1); err != nil {
		t.Fatal(err)
	}
}

func TestStressWithPatternErrors(t *testing.T) {
	a := mustNew(t, testSpec(105))
	cond := analog.Conditions{VoltageV: 3.3, TempC: 85}
	if err := a.StressWithPattern(make([]byte, a.Bytes()), cond, 1); err != ErrUnpowered {
		t.Errorf("unpowered: %v", err)
	}
	if _, err := a.PowerOn(25); err != nil {
		t.Fatal(err)
	}
	if err := a.StressWithPattern(make([]byte, 3), cond, 1); err == nil {
		t.Error("short pattern accepted")
	}
}

func TestStateSnapshotRoundTripInPackage(t *testing.T) {
	a := mustNew(t, testSpec(106))
	if _, err := a.PowerOn(25); err != nil {
		t.Fatal(err)
	}
	if err := a.Fill(0x5A); err != nil {
		t.Fatal(err)
	}
	if err := a.Stress(analog.Conditions{VoltageV: 3.3, TempC: 85}, 2); err != nil {
		t.Fatal(err)
	}
	snap := a.StateSnapshot()

	b := mustNew(t, testSpec(106))
	if err := b.RestoreState(snap); err != nil {
		t.Fatal(err)
	}
	if !b.Powered() {
		t.Error("powered flag not restored")
	}
	data, err := b.Read()
	if err != nil {
		t.Fatal(err)
	}
	if data[0] != 0x5A {
		t.Error("contents not restored")
	}
	// Aging state equality: identical per-cell decision variables.
	for i := 0; i < a.Cells(); i += 97 {
		if a.Bias(i) != b.Bias(i) {
			t.Fatalf("cell %d bias diverged: %v vs %v", i, a.Bias(i), b.Bias(i))
		}
	}
	// Mutating the snapshot must not affect the restored array (deep copy).
	snap.Data[0] = 0xFF
	d2, _ := b.Read()
	if d2[0] == 0xFF && data[0] != 0xFF {
		t.Error("RestoreState aliased the snapshot buffers")
	}
}

func TestRestoreStateSeedMismatchInPackage(t *testing.T) {
	a := mustNew(t, testSpec(107))
	b := mustNew(t, testSpec(108))
	if err := b.RestoreState(a.StateSnapshot()); err == nil {
		t.Fatal("foreign seed accepted")
	}
}
