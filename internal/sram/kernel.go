package sram

import (
	"context"
	"fmt"
	"math/bits"

	"invisiblebits/internal/rng"
)

// Word-parallel capture engine.
//
// A capture burst is, per cell, `captures` races of `bias + sigma*noise
// > 0`. The scalar engine resolved them cell by cell; this kernel
// resolves them 64 cells per machine word:
//
//   - The bias plane splits once per (bias epoch, sigma) into
//     deterministic-one / deterministic-zero word planes (cells whose
//     |bias| exceeds the hard noise bound resolve identically on every
//     race — no draws, their counts are 0 or `races` by inspection) and
//     a packed residue of noisy cells with precomputed per-cell noise
//     coordinates (rng.IdxMul) and draw-space vote thresholds
//     (rng.VoteThreshold / rng.VoteBoundsF32).
//   - Each race runs rng.PackedZigVotes (or rng.PackedBMVotes for v1
//     arrays) over the packed residue, producing one vote bit per cell
//     per word, and ripple-adds the vote words into bit-sliced
//     counters: slice b of word w holds bit b of every cell's running
//     count, so accumulating 64 cells costs a handful of word ops and
//     counts up to MaxCaptures fit in 16 slices.
//   - Races iterate innermost over cache-sized chunks of the packed
//     arrays (kernelChunkWords), so a burst streams the per-cell tables
//     from memory once, not once per race.
//   - After the last race the sliced counters transpose back to per-cell
//     counts, the final race's votes scatter into the data plane next
//     to the deterministic words, and majority/vote/bias outputs all
//     derive from the counts.
//
// The kernel consumes exactly the counter-derived noise tape
// (norm(base+k, i) for race k, cell i) the serial engines consume, so
// votes, the final data plane and PowerOnCount are bit-identical to
// CaptureVotesReference / PowerOnReference for any worker count — the
// sram differential and fuzz suites enforce this.

// MaxCaptures is the largest capture count a single burst supports: the
// per-cell vote counters are 16-bit, so a burst beyond 65535 captures
// could silently truncate counts (the pre-kernel engine did exactly
// that when narrowing its internal uint32 counters). Larger campaigns
// split into multiple bursts — the noise tape advances per race, so two
// back-to-back bursts draw exactly the noise one big burst would.
const MaxCaptures = 65535

// CaptureCountError reports a capture count the vote counters cannot
// represent. It is a typed error so callers can distinguish "split your
// burst" from parameter validation failures.
type CaptureCountError struct{ Captures int }

func (e *CaptureCountError) Error() string {
	return fmt.Sprintf("sram: %d captures exceed the %d-capture burst limit (16-bit vote counters)",
		e.Captures, MaxCaptures)
}

// kernelChunkWords is the packed-domain chunk the race loop iterates
// within: 256 words = 16384 cells keeps a chunk's working set (idxMul,
// thresholds, draws, votes, slices — ~520 KiB) L2-resident on a
// megabyte-class L2, so a burst reads the per-cell tables from memory
// once per burst instead of once per race, while each packed-kernel
// call is long enough to amortize its gather, dispatch and slow-lane
// pool overhead.
const kernelChunkWords = 256

// capKernel caches the packed capture layout and owns the burst
// scratch. The layout half is valid for one (bias epoch, sigma, noise
// generation) key; the scratch half is reused by every burst, so
// steady-state captures allocate nothing.
type capKernel struct {
	valid bool
	epoch uint64
	sigma float64
	gen   int

	// Global word domain (nw = ceil(n/64) words).
	det1 []uint64 // cells deterministically 1 at this sigma
	det0 []uint64 // cells deterministically 0
	// Packed noisy-cell residue, ascending cell order.
	cellIdx []uint32
	idxMul  []uint64
	xt      []float64
	xtLo    []float32
	xtHi    []float32

	// Burst scratch, packed noisy domain.
	votes  []uint64
	slow   []uint64
	draws  []uint64
	last   []uint64 // final race's votes, scattered to the data plane
	slices [16][]uint64
	ctrs   []uint64
	dataW  []uint64 // assembled data plane, global word domain
	counts []uint16 // per-cell counts for callers that discard them
	remB   []byte   // retained-contents snapshot for remanent first captures
	// detCounts is the deterministic-cell count plane for detRaces races
	// (0 at noisy and deterministic-zero cells): counts assembly starts
	// as one memcpy instead of a per-cell walk.
	detCounts []uint16
	detRaces  int

	// raceFn is the worker-pool body, created once so steady-state
	// bursts pass an existing closure to pool.Run instead of allocating
	// one per call; burstRaces parameterizes it per burst.
	raceFn     func(lo, hi int)
	burstRaces int
	burstNB    int // count bits this burst needs (bits.Len(races))
}

// bumpBiasEpoch invalidates every derived view of the bias plane (the
// packed capture layout). Call sites are exactly the writers of
// biasPlane: ensureBiasPlane rebuilds, Stress, decayPools and
// StressReference.
func (a *Array) bumpBiasEpoch() { a.biasEpoch++ }

// ensureKernel (re)builds the packed capture layout for sigma if the
// cached one is stale. The build is one pass over the bias plane;
// within an epoch (between stress/recovery events) every burst at the
// same temperature reuses it.
func (a *Array) ensureKernel(ctx context.Context, sigma float64) error {
	if err := a.ensureBiasPlane(ctx); err != nil {
		return err
	}
	k := &a.kern
	if k.valid && k.epoch == a.biasEpoch && k.sigma == sigma && k.gen == a.spec.NoiseGen {
		return nil
	}
	nw := (a.n + 63) / 64
	if cap(k.det1) < nw {
		k.det1 = make([]uint64, nw)
		k.det0 = make([]uint64, nw)
		k.dataW = make([]uint64, nw)
	}
	k.det1 = k.det1[:nw]
	k.det0 = k.det0[:nw]
	k.dataW = k.dataW[:nw]
	if cap(k.cellIdx) < a.n {
		// Worst case every cell is noisy (always true for v1 arrays).
		k.cellIdx = make([]uint32, 0, a.n)
		k.idxMul = make([]uint64, 0, a.n)
		k.xt = make([]float64, 0, a.n)
		k.xtLo = make([]float32, 0, a.n)
		k.xtHi = make([]float32, 0, a.n)
	}
	k.cellIdx = k.cellIdx[:0]
	k.idxMul = k.idxMul[:0]
	k.xt = k.xt[:0]
	k.xtLo = k.xtLo[:0]
	k.xtHi = k.xtHi[:0]

	bound := a.pruneBound(sigma)
	zig := a.spec.NoiseGen == NoiseGenZiggurat
	for w := 0; w < nw; w++ {
		var d1, d0 uint64
		base := w * 64
		lim := a.n - base
		if lim > 64 {
			lim = 64
		}
		for j := 0; j < lim; j++ {
			i := base + j
			bias := float64(a.biasPlane[i])
			if bias > bound {
				d1 |= 1 << uint(j)
				continue
			}
			if bias < -bound {
				d0 |= 1 << uint(j)
				continue
			}
			xt := rng.VoteThreshold(bias, sigma)
			k.cellIdx = append(k.cellIdx, uint32(i))
			k.idxMul = append(k.idxMul, rng.IdxMul(uint64(i)))
			k.xt = append(k.xt, xt)
			if zig {
				lo, hi := rng.VoteBoundsF32(xt)
				k.xtLo = append(k.xtLo, lo)
				k.xtHi = append(k.xtHi, hi)
			}
		}
		k.det1[w] = d1
		k.det0[w] = d0
	}

	nc := len(k.cellIdx)
	nwN := (nc + 63) / 64
	if cap(k.votes) < nwN {
		k.votes = make([]uint64, nwN)
		k.slow = make([]uint64, nwN)
		k.last = make([]uint64, nwN)
	}
	k.votes = k.votes[:nwN]
	k.slow = k.slow[:nwN]
	k.last = k.last[:nwN]
	if cap(k.draws) < nc {
		k.draws = make([]uint64, nc)
	}
	k.draws = k.draws[:nc]

	k.valid = true
	k.epoch = a.biasEpoch
	k.sigma = sigma
	k.gen = a.spec.NoiseGen
	k.detRaces = -1 // det planes changed: count template is stale
	return nil
}

// ensureSlices sizes and zeroes the bit-sliced counter planes for a
// burst whose counts need nb bits. The fast ripple path touches five
// planes unconditionally (carries above bit nb-1 never happen — counts
// stay ≤ races < 2^nb — but the stores still need somewhere to land),
// so at least five are always prepared.
func (k *capKernel) ensureSlices(nb int) {
	if nb < 5 {
		nb = 5
	}
	nwN := len(k.votes)
	for b := 0; b < nb; b++ {
		if cap(k.slices[b]) < nwN {
			k.slices[b] = make([]uint64, nwN)
		}
		s := k.slices[b][:nwN]
		for i := range s {
			s[i] = 0
		}
		k.slices[b] = s
	}
}

// scratchCounts returns the kernel-owned per-cell counts buffer for
// callers that derive an output from the counts rather than returning
// them. Valid until the next burst.
func (a *Array) scratchCounts() []uint16 {
	if cap(a.kern.counts) < a.n {
		a.kern.counts = make([]uint16, a.n)
	}
	a.kern.counts = a.kern.counts[:a.n]
	return a.kern.counts
}

// captureBurstInto runs `captures` power-on races at tempC, writing
// each cell's count of 1 readings into out (len == Cells()) and the
// final capture into the data plane, leaving the array powered. It is
// the engine behind every capture entry point; steady-state calls
// allocate nothing. Counter consumption, remanence handling and the
// noise tape match CaptureVotesReference bit for bit.
func (a *Array) captureBurstInto(ctx context.Context, captures int, tempC float64, out []uint16) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	races := captures
	remFirst := false
	if !a.powered && a.remanent {
		// First capture is the remembered state; no race, no counter.
		a.remanent = false
		remFirst = true
		races--
	}
	var remBytes []byte
	if remFirst {
		// Snapshot the retained contents before the races overwrite them.
		remBytes = a.kern.remSnapshot(a.data)
	}
	if races > 0 {
		if err := a.runRaces(ctx, races, tempC, out); err != nil {
			a.powered = false
			return err
		}
	} else {
		for i := range out {
			out[i] = 0
		}
	}
	if remFirst {
		for byteIdx, bv := range remBytes {
			base := byteIdx * 8
			for ; bv != 0; bv &= bv - 1 {
				out[base+bits.TrailingZeros8(bv)]++
			}
		}
	}
	a.powered = true
	return nil
}

// remSnapshot copies the retained data plane into kernel-owned scratch.
func (k *capKernel) remSnapshot(data []byte) []byte {
	if cap(k.remB) < len(data) {
		k.remB = make([]byte, len(data))
	}
	k.remB = k.remB[:len(data)]
	copy(k.remB, data)
	return k.remB
}

// runRaces executes `races` fresh power-on races and fills out with the
// per-cell counts; the last race becomes the data plane.
func (a *Array) runRaces(ctx context.Context, races int, tempC float64, out []uint16) error {
	sigma := a.noiseSigmaAt(tempC)
	if err := a.ensureKernel(ctx, sigma); err != nil {
		return err
	}
	k := &a.kern
	nc := len(k.cellIdx)
	nwN := (nc + 63) / 64
	nb := bits.Len(uint(races)) // counts ≤ races < 1<<nb
	k.ensureSlices(nb)
	if cap(k.ctrs) < races {
		k.ctrs = make([]uint64, races)
	}
	k.ctrs = k.ctrs[:races]
	base := a.powerOns
	a.powerOns += uint64(races)
	for r := 0; r < races; r++ {
		k.ctrs[r] = a.noise.CtrState(base + uint64(r))
	}

	if nwN > 0 {
		k.burstRaces = races
		k.burstNB = nb
		if k.raceFn == nil {
			k.raceFn = a.raceChunks
		}
		if err := a.pool.Run(ctx, nwN, 1, k.raceFn); err != nil {
			return err
		}
	}

	// Assemble counts and the final data plane. Deterministic cells
	// resolve identically on every race, so their count plane is a pure
	// function of (layout, races): build it once per races value and
	// memcpy it per burst — steady-state decode loops reuse one races
	// count, so the per-cell walk amortizes to a copy. Noisy cells then
	// transpose out of the sliced counters and scatter over the template.
	if k.detRaces != races {
		if cap(k.detCounts) < a.n {
			k.detCounts = make([]uint16, a.n)
		}
		k.detCounts = k.detCounts[:a.n]
		for i := range k.detCounts {
			k.detCounts[i] = 0
		}
		rc := uint16(races)
		for w, d1 := range k.det1 {
			wbase := w * 64
			for m := d1; m != 0; m &= m - 1 {
				k.detCounts[wbase+bits.TrailingZeros64(m)] = rc
			}
		}
		k.detRaces = races
	}
	copy(out, k.detCounts)
	copy(k.dataW, k.det1)
	for pw := 0; pw < nwN; pw++ {
		lv := k.last[pw]
		cbase := pw * 64
		lim := nc - cbase
		if lim > 64 {
			lim = 64
		}
		var sl [16]uint64
		for b := 0; b < nb; b++ {
			sl[b] = k.slices[b][pw]
		}
		idx := k.cellIdx[cbase : cbase+lim]
		if nb <= 5 {
			// Straight-line transpose for every realistic burst
			// (≤ 31 captures): unfilled slice words are zero, so
			// reading all five is safe and branch-free.
			s0, s1, s2, s3, s4 := sl[0], sl[1], sl[2], sl[3], sl[4]
			for j := 0; j < lim; j++ {
				jj := uint(j)
				cnt := s0>>jj&1 | (s1>>jj&1)<<1 | (s2>>jj&1)<<2 |
					(s3>>jj&1)<<3 | (s4>>jj&1)<<4
				ci := idx[j]
				out[ci] = uint16(cnt)
				k.dataW[ci>>6] |= (lv >> jj & 1) << (ci & 63)
			}
			continue
		}
		for j := 0; j < lim; j++ {
			var cnt uint64
			for b := nb - 1; b >= 0; b-- {
				cnt = cnt<<1 | sl[b]>>uint(j)&1
			}
			ci := idx[j]
			out[ci] = uint16(cnt)
			k.dataW[ci>>6] |= (lv >> uint(j) & 1) << (ci & 63)
		}
	}
	packWordsToBytes(k.dataW, a.data)
	return nil
}

// raceChunks is the burst worker body: it runs every race of the
// current burst over packed words [lo, hi), chunked so each chunk's
// tables stay cache-resident across the whole burst. Chunks are
// independent (counter-derived noise), so any sharding is exact.
func (a *Array) raceChunks(lo, hi int) {
	k := &a.kern
	nc := len(k.cellIdx)
	races := k.burstRaces
	nb := k.burstNB
	zig := k.gen == NoiseGenZiggurat
	for clo := lo; clo < hi; clo += kernelChunkWords {
		chi := clo + kernelChunkWords
		if chi > hi {
			chi = hi
		}
		cellLo := clo * 64
		cellHi := chi * 64
		if cellHi > nc {
			cellHi = nc
		}
		im := k.idxMul[cellLo:cellHi]
		xts := k.xt[cellLo:cellHi]
		votes := k.votes[clo:chi]
		for r := 0; r < races; r++ {
			if zig {
				rng.PackedZigVotes(k.ctrs[r], im, xts,
					k.xtLo[cellLo:cellHi], k.xtHi[cellLo:cellHi],
					votes, k.slow[clo:chi], k.draws[cellLo:cellHi])
			} else {
				rng.PackedBMVotes(k.ctrs[r], im, xts, votes)
			}
			// Ripple-add this race's vote bits into the sliced
			// counters. The carry-chain length is data-dependent and
			// unpredictable, so the common depth (two levels) runs
			// branch-free; carries past bit 1 (~1 word in 16) take the
			// guarded tail. Bursts needing more than five count bits
			// (> 31 captures) use the generic ripple.
			if nb <= 5 {
				s0, s1, s2, s3, s4 := k.slices[0], k.slices[1], k.slices[2], k.slices[3], k.slices[4]
				for w := 0; w < len(votes); w++ {
					i := clo + w
					v := votes[w]
					t := s0[i]
					s0[i] = t ^ v
					v &= t
					t = s1[i]
					s1[i] = t ^ v
					v &= t
					if v != 0 {
						t = s2[i]
						s2[i] = t ^ v
						v &= t
						t = s3[i]
						s3[i] = t ^ v
						v &= t
						t = s4[i]
						s4[i] = t ^ v
					}
				}
			} else {
				for w := 0; w < len(votes); w++ {
					carry := votes[w]
					for b := 0; carry != 0; b++ {
						sb := k.slices[b]
						s := sb[clo+w]
						sb[clo+w] = s ^ carry
						carry &= s
					}
				}
			}
		}
		copy(k.last[clo:chi], votes)
	}
}

// packWordsToBytes writes the little-endian word plane into the
// bit-packed byte plane (bit i of the array is data[i/8]>>(i%8), which
// is exactly the little-endian byte order of 64-bit words).
func packWordsToBytes(words []uint64, data []byte) {
	i := 0
	for ; i+8 <= len(data); i += 8 {
		w := words[i>>3]
		data[i] = byte(w)
		data[i+1] = byte(w >> 8)
		data[i+2] = byte(w >> 16)
		data[i+3] = byte(w >> 24)
		data[i+4] = byte(w >> 32)
		data[i+5] = byte(w >> 40)
		data[i+6] = byte(w >> 48)
		data[i+7] = byte(w >> 56)
	}
	if i < len(data) {
		w := words[i>>3]
		for ; i < len(data); i++ {
			data[i] = byte(w >> uint((i&7)*8))
		}
	}
}
