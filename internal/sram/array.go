// Package sram models an embedded SRAM array at the analog level of
// detail Invisible Bits needs: per-cell process variation, data-directed
// NBTI aging of the cross-coupled inverters, noisy power-on state
// sampling, data remanence, and ordinary digital read/write operation.
//
// # Reduced-order cell model
//
// The transistor-level race of §2.1 (validated in internal/spice) reduces
// to one decision variable per cell:
//
//	bias B = mismatch + S0 − S1      (all in mV)
//
// where mismatch is the static |vth2|−|vth4| asymmetry from process
// variation, S0 is the aging accumulated while the cell held logic 0
// (stressing M2, biasing future power-ons toward 1), and S1 the aging
// while holding 1 (stressing M4, biasing toward 0). A power-on event
// samples `B + noise > 0` with fresh Gaussian thermal noise — giving the
// temporal randomness that makes majority voting across captures
// meaningful (§4.3) and the spatial randomness that makes clean SRAM a
// fingerprint (§2).
//
// Mismatch is drawn from a per-device seed, so a given (simulated) device
// exhibits the same power-on fingerprint across program runs, like real
// silicon. A small smooth across-die gradient component reproduces the
// slightly positive Moran's I the paper measures on unstressed devices
// (Table 2: 0.009–0.011).
package sram

import (
	"context"
	"errors"
	"fmt"
	"math"

	"invisiblebits/internal/analog"
	"invisiblebits/internal/parallel"
	"invisiblebits/internal/rng"
)

// Noise-generation versions selectable via Spec.NoiseGen. The version is
// part of a device's persisted identity: state snapshots and device
// images record it, and restoring a snapshot adopts its version, so a
// device image replays bit-identical captures forever regardless of
// which engine generation wrote it.
const (
	// NoiseGenBoxMuller is the v1 thermal-noise plane: Box–Muller
	// variates with unbounded support. Pre-versioning snapshots and
	// images (which carry no NoiseGen field) load as v1.
	NoiseGenBoxMuller = 1
	// NoiseGenZiggurat is the v2 plane: ziggurat variates truncated at
	// ±rng.NormZigguratBound (8σ, P ≈ 1e-15 — physically immaterial).
	// The hard bound is what makes deterministic-cell pruning exact.
	// New arrays default to v2.
	NoiseGenZiggurat = 2
)

// Spec describes the physical and statistical properties of an array.
type Spec struct {
	// Rows and Cols give the physical layout; Rows*Cols is the bit count
	// and must be a multiple of 8.
	Rows, Cols int
	// MismatchSigmaMv is the standard deviation of the local (white)
	// component of per-cell inverter mismatch.
	MismatchSigmaMv float64
	// GradientFrac scales the smooth across-die variation component as a
	// fraction of MismatchSigmaMv (≈0.08 reproduces the paper's Moran's I
	// of ~0.01 on clean devices). The field is centered so it never biases
	// the device-level mean.
	GradientFrac float64
	// NoiseSigmaMv is the per-power-on thermal noise standard deviation at
	// the nominal temperature.
	NoiseSigmaMv float64
	// NoiseTempRefC anchors the √T scaling of thermal noise.
	NoiseTempRefC float64
	// ExtremeFrac is the fraction of cells with defect-class mismatch far
	// beyond the Gaussian population. These are §5.1.1's cells whose
	// "manufacturing mismatch between the inverters can be so large that
	// stress-induced degradation fails to overcome such bias" — they set
	// the error floor of Invisible Bits.
	ExtremeFrac float64
	// ExtremeMinMv and ExtremeMaxMv bound the uniform magnitude of the
	// defect-class mismatch.
	ExtremeMinMv, ExtremeMaxMv float64
	// Aging is the device's NBTI response.
	Aging analog.Params
	// Seed determines the mismatch pattern (device identity); the noise
	// stream is keyed by it.
	Seed uint64
	// Workers bounds the capture engine's worker pool for this array.
	// 0 (the default) shares the process-wide pool (GOMAXPROCS
	// workers), which also bounds *fleet-wide* capture parallelism when
	// many arrays run bursts concurrently. Worker count never affects
	// results: per-cell noise is counter-derived, so any sharding
	// produces bit-identical captures.
	Workers int
	// NoiseGen selects the thermal-noise plane version
	// (NoiseGenBoxMuller or NoiseGenZiggurat). 0 means "current
	// default", which New normalizes to NoiseGenZiggurat; RestoreState
	// overrides it with the snapshot's version so restored devices keep
	// their original noise plane.
	NoiseGen int
}

// DefaultSpec returns an MSP432-class 64 KB array specification.
func DefaultSpec() Spec {
	return Spec{
		Rows:            512,
		Cols:            1024,
		MismatchSigmaMv: 30,
		GradientFrac:    0.08,
		NoiseSigmaMv:    1.2,
		NoiseTempRefC:   25,
		ExtremeFrac:     0.005,
		ExtremeMinMv:    150,
		ExtremeMaxMv:    500,
		Aging: analog.Params{
			A0MvPerHourN:    analog.CalibrateA0(0.66, 45.4, 10),
			TimeExponent:    0.66,
			GammaPerVolt:    1.6,
			ActivationEV:    0.19,
			Ref:             analog.Conditions{VoltageV: 3.3, TempC: 85},
			RecFastFrac:     0.12,
			RecSlowFrac:     0.16,
			TauFastHours:    100,
			TauSlowHours:    1350,
			RecActivationEV: 0.30,
			RecTRefC:        25,
		},
		Seed: 1,
	}
}

// Validate reports whether the spec is usable.
func (s Spec) Validate() error {
	if s.Rows <= 0 || s.Cols <= 0 {
		return fmt.Errorf("sram: non-positive dimensions %dx%d", s.Rows, s.Cols)
	}
	if (s.Rows*s.Cols)%8 != 0 {
		return fmt.Errorf("sram: bit count %d not byte-aligned", s.Rows*s.Cols)
	}
	if s.MismatchSigmaMv <= 0 || s.NoiseSigmaMv < 0 || s.GradientFrac < 0 {
		return errors.New("sram: mismatch/noise parameters out of range")
	}
	if s.ExtremeFrac < 0 || s.ExtremeFrac >= 1 || (s.ExtremeFrac > 0 && s.ExtremeMaxMv < s.ExtremeMinMv) {
		return errors.New("sram: defect-population parameters out of range")
	}
	switch s.NoiseGen {
	case 0, NoiseGenBoxMuller, NoiseGenZiggurat:
	default:
		return fmt.Errorf("sram: unknown noise-generation version %d", s.NoiseGen)
	}
	return s.Aging.Validate()
}

// Array is a simulated SRAM. The zero value is unusable; use New.
type Array struct {
	spec Spec
	n    int // cell count

	mismatch []float32 // static per-cell mismatch, mV

	// Per-direction stress pools (mV). s0* accumulate while holding 0 and
	// push power-on toward 1; s1* push toward 0.
	s0Perm, s0Fast, s0Slow []float32
	s1Perm, s1Fast, s1Slow []float32

	data     []byte // current digital contents, bit-packed row-major
	powered  bool
	remanent bool // charge left on nodes by a non-discharged power-off

	// noise is the counter-based thermal-noise plane: power-on number k
	// samples cell i's noise as noise.Norm(k, i) (v1) or noise.NormZig
	// (v2); drawNorm is the selected sampler. powerOns counts the races
	// run so far, so every power-on draws from a fresh counter
	// regardless of which worker resolves which cell.
	noise    rng.Stream
	drawNorm func(counter, index uint64) float64
	powerOns uint64

	// biasPlane caches each cell's decision variable as one flat,
	// cache-friendly array so the race loops read one float32 instead
	// of gathering seven arrays. The engine's decision variable is
	// float64(biasPlane[i]); Bias keeps the exact seven-term float64
	// sum for calibration and tests. Stress and decayPools touch every
	// cell anyway and keep the plane fresh inline; New and RestoreState
	// mark it dirty and the next race rebuilds it, sharded over the
	// pool.
	biasPlane []float32
	biasFresh bool
	// biasEpoch counts bias-plane generations; every writer bumps it so
	// the capture kernel knows when its packed layout is stale.
	biasEpoch uint64

	// kern caches the word-parallel capture engine's packed layout and
	// burst scratch (see kernel.go).
	kern capKernel

	// t0Ref and t1Ref track each direction's accumulated stress as
	// equivalent time at the reference rate A0 (total = A0·tⁿ), letting
	// Stress advance a cell with one add + forward power evaluation
	// instead of the inverse math.Pow in analog.GrowShift. −1 marks a
	// stale entry (the direction's recoverable pools decayed, shrinking
	// total); the next growth re-derives it from the current total —
	// exactly the re-derivation the pre-overhaul engine did for every
	// cell on every call.
	t0Ref, t1Ref []float64

	pool *parallel.Pool
}

// New builds an array with a fresh, unaged mismatch pattern.
func New(spec Spec) (*Array, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.NoiseGen == 0 {
		spec.NoiseGen = NoiseGenZiggurat
	}
	n := spec.Rows * spec.Cols
	a := &Array{
		spec:      spec,
		n:         n,
		mismatch:  make([]float32, n),
		s0Perm:    make([]float32, n),
		s0Fast:    make([]float32, n),
		s0Slow:    make([]float32, n),
		s1Perm:    make([]float32, n),
		s1Fast:    make([]float32, n),
		s1Slow:    make([]float32, n),
		data:      make([]byte, n/8),
		biasPlane: make([]float32, n),
		// Fresh pools hold zero shift, so the zeroed equivalent times
		// are already valid.
		t0Ref: make([]float64, n),
		t1Ref: make([]float64, n),
	}
	seedSrc := rng.NewSource(spec.Seed)
	mismatchSrc := seedSrc.Split()
	a.noise = rng.NewStream(spec.Seed)
	a.setNoiseGen(spec.NoiseGen)
	if spec.Workers > 0 {
		a.pool = parallel.New(spec.Workers)
	} else {
		a.pool = parallel.Shared()
	}
	a.synthesizeMismatch(mismatchSrc)
	return a, nil
}

// setNoiseGen binds the sampler for the given (already validated,
// non-zero) noise-plane version.
func (a *Array) setNoiseGen(gen int) {
	a.spec.NoiseGen = gen
	if gen == NoiseGenZiggurat {
		a.drawNorm = a.noise.NormZig
	} else {
		a.drawNorm = a.noise.Norm
	}
}

// NoiseGen returns the array's effective noise-plane version
// (NoiseGenBoxMuller or NoiseGenZiggurat — never 0).
func (a *Array) NoiseGen() int { return a.spec.NoiseGen }

// SetPool points the array's capture engine at pool (nil restores the
// process-wide shared pool). A fleet hands every device the same pool
// to bound total capture parallelism; results are identical under any
// pool.
func (a *Array) SetPool(pool *parallel.Pool) {
	if pool == nil {
		pool = parallel.Shared()
	}
	a.pool = pool
}

// Pool returns the worker pool the capture engine runs on.
func (a *Array) Pool() *parallel.Pool { return a.pool }

// PowerOnCount returns how many power-on races the array has resolved —
// the noise-stream counter. It is part of the serialized state so a
// restored array replays the same noise future it would have seen.
func (a *Array) PowerOnCount() uint64 { return a.powerOns }

// synthesizeMismatch draws the white local component and superimposes a
// smooth low-frequency across-die field (random sinusoids + planar tilt).
func (a *Array) synthesizeMismatch(src *rng.Source) {
	sigma := a.spec.MismatchSigmaMv
	gAmp := sigma * a.spec.GradientFrac

	type wave struct{ kr, kc, phase, amp float64 }
	waves := make([]wave, 4)
	for i := range waves {
		waves[i] = wave{
			kr:    (src.Float64()*2 - 1) * 3 * math.Pi / float64(a.spec.Rows),
			kc:    (src.Float64()*2 - 1) * 3 * math.Pi / float64(a.spec.Cols),
			phase: src.Float64() * 2 * math.Pi,
			amp:   gAmp * (0.5 + src.Float64()),
		}
	}
	tiltR := (src.Float64()*2 - 1) * gAmp / float64(a.spec.Rows)
	tiltC := (src.Float64()*2 - 1) * gAmp / float64(a.spec.Cols)

	// First pass: compute the smooth field's mean so it can be centered.
	// An uncentered gradient would bias the whole device's power-on state
	// away from 0.5, which real silicon does not show (Table 5's clean
	// biases are 0.500–0.502).
	var smoothMean float64
	smoothAt := func(r, c int) float64 {
		s := tiltR*float64(r) + tiltC*float64(c)
		for _, w := range waves {
			s += w.amp * math.Sin(w.kr*float64(r)+w.kc*float64(c)+w.phase)
		}
		return s
	}
	for r := 0; r < a.spec.Rows; r++ {
		for c := 0; c < a.spec.Cols; c++ {
			smoothMean += smoothAt(r, c)
		}
	}
	smoothMean /= float64(a.n)

	i := 0
	for r := 0; r < a.spec.Rows; r++ {
		for c := 0; c < a.spec.Cols; c++ {
			smooth := smoothAt(r, c) - smoothMean
			if a.spec.ExtremeFrac > 0 && src.Float64() < a.spec.ExtremeFrac {
				mag := a.spec.ExtremeMinMv +
					src.Float64()*(a.spec.ExtremeMaxMv-a.spec.ExtremeMinMv)
				if src.Float64() < 0.5 {
					mag = -mag
				}
				a.mismatch[i] = float32(mag + smooth)
			} else {
				a.mismatch[i] = float32(src.NormScaled(0, sigma) + smooth)
			}
			i++
		}
	}
}

// Spec returns the array's construction parameters.
func (a *Array) Spec() Spec { return a.spec }

// Cells returns the number of bit cells.
func (a *Array) Cells() int { return a.n }

// Bytes returns the array capacity in bytes.
func (a *Array) Bytes() int { return a.n / 8 }

// Rows and Cols expose the physical layout for spatial statistics.
func (a *Array) Rows() int { return a.spec.Rows }

// Cols returns the number of columns in the physical layout.
func (a *Array) Cols() int { return a.spec.Cols }

// Powered reports whether the array currently has supply voltage.
func (a *Array) Powered() bool { return a.powered }

// bias returns cell i's decision variable in mV.
func (a *Array) bias(i int) float64 {
	return float64(a.mismatch[i]) +
		float64(a.s0Perm[i]) + float64(a.s0Fast[i]) + float64(a.s0Slow[i]) -
		float64(a.s1Perm[i]) - float64(a.s1Fast[i]) - float64(a.s1Slow[i])
}

// Bias exposes the decision variable for cell i (mV); used by tests,
// calibration, and the PUF-cloning example.
func (a *Array) Bias(i int) float64 { return a.bias(i) }

// ensureBiasPlane rebuilds the cached decision-variable plane if it is
// stale, sharded over the worker pool (pure per-cell math, so any
// sharding gives the identical plane).
func (a *Array) ensureBiasPlane(ctx context.Context) error {
	if a.biasFresh {
		return ctx.Err()
	}
	if err := a.pool.Run(ctx, len(a.data), 1, func(lo, hi int) {
		for i := lo * 8; i < hi*8; i++ {
			a.biasPlane[i] = float32(a.bias(i))
		}
	}); err != nil {
		return err
	}
	a.biasFresh = true
	a.bumpBiasEpoch()
	return nil
}

// pruneBound returns the decision threshold beyond which a cell's race
// outcome is deterministic for every draw of the noise plane: v2 noise
// is hard-truncated at ±NormZigguratBound, so |bias| > bound ⇒ bias +
// sigma·noise keeps bias's sign (float rounding is monotone, so
// fl(sigma·|noise|) ≤ fl(sigma·8) — the skip is exact, not
// approximate). v1 noise is unbounded: +Inf disables pruning.
func (a *Array) pruneBound(sigma float64) float64 {
	if a.spec.NoiseGen == NoiseGenZiggurat {
		return rng.NormZigguratBound * sigma
	}
	return math.Inf(1)
}

// DeterministicFrac reports the fraction of cells whose power-on state
// at tempC is already decided by their bias alone — the cells the v2
// capture engine prunes (credits without drawing noise). Zero for v1
// arrays. After a message imprint this is close to 1, which is where
// the capture speedup comes from.
func (a *Array) DeterministicFrac(tempC float64) (float64, error) {
	if err := a.ensureBiasPlane(context.Background()); err != nil {
		return 0, err
	}
	bound := a.pruneBound(a.noiseSigmaAt(tempC))
	pruned := 0
	for _, b := range a.biasPlane {
		if v := float64(b); v > bound || v < -bound {
			pruned++
		}
	}
	return float64(pruned) / float64(a.n), nil
}
