//go:build race

package sram

// raceEnabled reports whether this binary was built with the race
// detector. Race instrumentation allocates inside code that is
// otherwise allocation-free, so zero-alloc gates must not run here;
// the non-instrumented CI job still enforces them.
const raceEnabled = true
