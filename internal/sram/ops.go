package sram

import (
	"context"
	"errors"
	"fmt"
	"math"

	"invisiblebits/internal/analog"
)

// noiseSigmaAt scales the per-power-on thermal noise to tempC (√T law).
func (a *Array) noiseSigmaAt(tempC float64) float64 {
	return a.spec.NoiseSigmaMv *
		math.Sqrt((tempC+273.15)/(a.spec.NoiseTempRefC+273.15))
}

// resolveRace runs power-on race ctr for the cells of bytes [lo, hi),
// writing the resolved bits into a.data. It reads the cached bias plane
// (the caller must ensureBiasPlane first) and skips the noise draw for
// cells beyond bound — their outcome is the sign of the bias for every
// achievable draw. Safe to call concurrently on disjoint byte ranges.
func (a *Array) resolveRace(ctr uint64, sigma, bound float64, lo, hi int) {
	norm := a.drawNorm
	for byteIdx := lo; byteIdx < hi; byteIdx++ {
		var out byte
		base := byteIdx * 8
		for b := 0; b < 8; b++ {
			i := base + b
			bias := float64(a.biasPlane[i])
			if bias > bound {
				out |= 1 << b
				continue
			}
			if bias < -bound {
				continue
			}
			if bias+sigma*norm(ctr, uint64(i)) > 0 {
				out |= 1 << b
			}
		}
		a.data[byteIdx] = out
	}
}

// Errors returned by digital and power operations.
var (
	ErrUnpowered = errors.New("sram: operation requires power")
	ErrPowered   = errors.New("sram: array already powered")
)

// PowerOn applies the supply ramp at temperature tempC and resolves every
// cell's power-on race. It returns a copy of the resulting state (which
// also becomes the array's digital contents, exactly as on real hardware
// where "SRAM embedded within the device retains its power-on state until
// software overwrites it", §2).
//
// PowerOn on an already-powered array is an error: real hardware cannot
// re-run the race without dropping the supply first.
func (a *Array) PowerOn(tempC float64) ([]byte, error) {
	return a.PowerOnContext(context.Background(), tempC)
}

// PowerOnContext is PowerOn with cancellation: the race checks ctx
// between dispatched chunks, so a fleet sweep can abandon a fingerprint
// read mid-race. On cancellation the data plane is partially written and
// the array is left unpowered; the consumed power-on counter is not
// rewound (matching captureBurst), so the next power-on runs a fresh,
// fully clean race.
func (a *Array) PowerOnContext(ctx context.Context, tempC float64) ([]byte, error) {
	if a.powered {
		return nil, ErrPowered
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if a.remanent {
		// Remanence: the nodes never discharged, so the previous contents
		// survive the power cycle and no race is run.
		a.remanent = false
		a.powered = true
		out := make([]byte, len(a.data))
		copy(out, a.data)
		return out, nil
	}
	// A power-on is a one-capture burst through the word-parallel kernel:
	// deterministic cells resolve by plane, noisy cells by one packed
	// race, consuming exactly one counter. Identical for any worker
	// count or chunk size (counter-derived noise).
	if err := a.captureBurstInto(ctx, 1, tempC, a.scratchCounts()); err != nil {
		return nil, err
	}
	out := make([]byte, len(a.data))
	copy(out, a.data)
	return out, nil
}

// PowerOff drops the supply. If dischargeFully is true the caller drives
// the rails to ground (as the paper's rig does: "all of our measurements
// eliminate the SRAM data remanence effect by driving the supply voltage
// of the device to the ground state", §5) and the stored state is lost.
// If false, a rapid power cycle leaves charge on the nodes and the next
// PowerOn returns the previous contents unchanged — the remanence effect.
func (a *Array) PowerOff(dischargeFully bool) {
	if !a.powered {
		return
	}
	a.powered = false
	if !dischargeFully {
		a.remanent = true
		return
	}
	a.remanent = false
}

// PowerCycle is the receiver's capture primitive: discharge-off then on.
func (a *Array) PowerCycle(tempC float64) ([]byte, error) {
	a.PowerOff(true)
	return a.PowerOn(tempC)
}

// Write replaces the digital contents. Short data is an error — software
// always knows the SRAM size it is writing.
func (a *Array) Write(data []byte) error {
	if !a.powered {
		return ErrUnpowered
	}
	if len(data) != len(a.data) {
		return fmt.Errorf("sram: write of %d bytes into %d-byte array", len(data), len(a.data))
	}
	copy(a.data, data)
	return nil
}

// WriteAt stores data at byte offset off, leaving the rest untouched.
func (a *Array) WriteAt(off int, data []byte) error {
	if !a.powered {
		return ErrUnpowered
	}
	if off < 0 || off+len(data) > len(a.data) {
		return fmt.Errorf("sram: write [%d, %d) out of bounds for %d-byte array",
			off, off+len(data), len(a.data))
	}
	copy(a.data[off:], data)
	return nil
}

// Read returns a copy of the digital contents.
func (a *Array) Read() ([]byte, error) {
	if !a.powered {
		return nil, ErrUnpowered
	}
	out := make([]byte, len(a.data))
	copy(out, a.data)
	return out, nil
}

// ByteAt returns the digital byte at offset off (for the CPU bus).
func (a *Array) ByteAt(off int) (byte, error) {
	if !a.powered {
		return 0, ErrUnpowered
	}
	if off < 0 || off >= len(a.data) {
		return 0, fmt.Errorf("sram: byte read at %d out of range", off)
	}
	return a.data[off], nil
}

// SetByteAt writes the digital byte at offset off (for the CPU bus).
func (a *Array) SetByteAt(off int, b byte) error {
	if !a.powered {
		return ErrUnpowered
	}
	if off < 0 || off >= len(a.data) {
		return fmt.Errorf("sram: byte write at %d out of range", off)
	}
	a.data[off] = b
	return nil
}

// Fill writes the same byte everywhere (the all-0s/all-1s stress patterns
// of Fig. 3 and Table 2).
func (a *Array) Fill(b byte) error {
	if !a.powered {
		return ErrUnpowered
	}
	for i := range a.data {
		a.data[i] = b
	}
	return nil
}

// Stress ages the array for hours under conditions c while it holds its
// current digital contents. Each cell's active direction accumulates
// stress; the opposite direction's recoverable pools relax (its PMOS is
// unstressed for the duration). This is the paper's data-directed aging
// (§2.2) and the core of the encoding step (Algorithm 1, lines 5–6).
func (a *Array) Stress(c analog.Conditions, hours float64) error {
	if !a.powered {
		return ErrUnpowered
	}
	if hours <= 0 {
		return nil
	}
	p := a.spec.Aging
	// The opposite direction's recoverable pools relax at the chamber
	// temperature (hot soaks also heal faster).
	fFast, fSlow := p.RecoveryFactorsAt(hours, c.TempC)
	f32, s32 := float32(fFast), float32(fSlow)
	permFrac := p.PermanentFrac()
	n := p.TimeExponent
	invN := 1 / n
	a0 := p.A0MvPerHourN
	// Everything condition-dependent hoists out of the cell loop: dt
	// hours at Rate(c) advances a cell's reference-rate equivalent time
	// by dt·(Rate(c)/A0)^(1/n) — one Rate and one Pow for the whole
	// call instead of per cell, and growth becomes a forward power
	// evaluation (no inverse Pow per cell).
	dtEff := hours * math.Pow(p.Rate(c)/a0, invN)
	// Pure per-cell math over disjoint byte-aligned shards; the plane
	// update rides along, so a full Stress leaves the bias cache fresh
	// even if it was stale on entry.
	err := a.pool.Run(context.Background(), len(a.data), 1, func(lo, hi int) {
		for byteIdx := lo; byteIdx < hi; byteIdx++ {
			bits := a.data[byteIdx]
			base := byteIdx * 8
			for b := 0; b < 8; b++ {
				i := base + b
				if bits&(1<<b) != 0 {
					growPoolsEq(a0, n, invN, dtEff, permFrac, p.RecFastFrac, p.RecSlowFrac,
						&a.t1Ref[i], &a.s1Perm[i], &a.s1Fast[i], &a.s1Slow[i])
					if a.s0Fast[i] != 0 || a.s0Slow[i] != 0 {
						a.s0Fast[i] *= f32
						a.s0Slow[i] *= s32
						a.t0Ref[i] = -1 // total shrank: equivalent time stale
					}
				} else {
					growPoolsEq(a0, n, invN, dtEff, permFrac, p.RecFastFrac, p.RecSlowFrac,
						&a.t0Ref[i], &a.s0Perm[i], &a.s0Fast[i], &a.s0Slow[i])
					if a.s1Fast[i] != 0 || a.s1Slow[i] != 0 {
						a.s1Fast[i] *= f32
						a.s1Slow[i] *= s32
						a.t1Ref[i] = -1
					}
				}
				a.biasPlane[i] = float32(a.bias(i))
			}
		}
	})
	if err != nil {
		return err
	}
	a.biasFresh = true
	a.bumpBiasEpoch()
	return nil
}

// growPoolsEq applies effective-time stress growth to one direction's
// pools using the tracked reference-rate equivalent time: te advances by
// the caller's pre-scaled dtEff and the new total is one forward
// exp(n·log te). A negative *tRef means the pools decayed since te was
// last valid; re-derive it from the current total — the same inverse
// power the pre-overhaul engine paid on every cell of every call, now
// paid only by cells that actually decayed.
func growPoolsEq(a0, n, invN, dtEff, permFrac, fastFrac, slowFrac float64,
	tRef *float64, perm, fast, slow *float32) {
	total := float64(*perm) + float64(*fast) + float64(*slow)
	te := *tRef
	if te < 0 {
		te = 0
		if total > 0 {
			te = math.Pow(total/a0, invN)
		}
	}
	te += dtEff
	*tRef = te
	delta := a0*math.Exp(n*math.Log(te)) - total
	if delta <= 0 {
		return
	}
	*perm += float32(delta * permFrac)
	*fast += float32(delta * fastFrac)
	*slow += float32(delta * slowFrac)
}

// Shelve lets the unpowered array recover naturally for hours (§5.1.3)
// at the reference storage temperature.
func (a *Array) Shelve(hours float64) error {
	if a.powered {
		return fmt.Errorf("sram: cannot shelve a powered array")
	}
	if hours <= 0 {
		return nil
	}
	fFast, fSlow := a.spec.Aging.RecoveryFactors(hours)
	a.decayPools(fFast, fSlow)
	return nil
}

// ShelveAt stores the unpowered array at tempC for hours. Hot storage
// accelerates recovery (Arrhenius) — the basis of the "baking attack"
// where an adversary ovens a suspect device to erase a potential
// message. Both directions' recoverable pools decay; permanent damage
// remains, which is what bounds the attack.
func (a *Array) ShelveAt(hours, tempC float64) error {
	if a.powered {
		return fmt.Errorf("sram: cannot shelve a powered array")
	}
	if hours <= 0 {
		return nil
	}
	fFast, fSlow := a.spec.Aging.RecoveryFactorsAt(hours, tempC)
	a.decayPools(fFast, fSlow)
	return nil
}

func (a *Array) decayPools(fFast, fSlow float64) {
	f32, s32 := float32(fFast), float32(fSlow)
	// Background context: Run cannot fail. Decayed directions' equivalent
	// times go stale; the plane update rides along, so shelving leaves
	// the bias cache fresh.
	_ = a.pool.Run(context.Background(), len(a.data), 1, func(lo, hi int) {
		for i := lo * 8; i < hi*8; i++ {
			if a.s0Fast[i] != 0 || a.s0Slow[i] != 0 {
				a.s0Fast[i] *= f32
				a.s0Slow[i] *= s32
				a.t0Ref[i] = -1
			}
			if a.s1Fast[i] != 0 || a.s1Slow[i] != 0 {
				a.s1Fast[i] *= f32
				a.s1Slow[i] *= s32
				a.t1Ref[i] = -1
			}
			a.biasPlane[i] = float32(a.bias(i))
		}
	})
	a.biasFresh = true
	a.bumpBiasEpoch()
}
