package sram

import (
	"testing"

	"invisiblebits/internal/analog"
	"invisiblebits/internal/rng"
	"invisiblebits/internal/stats"
)

// TestBakingAttackBoundedByPermanentDamage models an adversary who ovens
// a suspect (unpowered) device at 85 °C to erase a potential message.
// Hot storage accelerates recovery (~7× at 0.3 eV), so a week in the oven
// costs roughly what two months on the shelf would — but the permanent
// component survives, so a repetition-coded message still decodes.
func TestBakingAttackBoundedByPermanentDamage(t *testing.T) {
	cond := analog.Conditions{VoltageV: 3.3, TempC: 85}

	encodeOn := func(seed uint64) (*Array, []byte) {
		a := mustNew(t, testSpec(seed))
		if _, err := a.PowerOn(25); err != nil {
			t.Fatal(err)
		}
		payload := make([]byte, a.Bytes())
		rng.NewSource(0xBA4E).Bytes(payload)
		if err := a.StressWithPattern(payload, cond, 10); err != nil {
			t.Fatal(err)
		}
		a.PowerOff(true)
		return a, payload
	}
	measure := func(a *Array, payload []byte) float64 {
		maj, err := a.CaptureMajority(5, 25)
		if err != nil {
			t.Fatal(err)
		}
		a.PowerOff(true)
		return stats.BitErrorRate(invert(maj), payload)
	}

	baked, payload := encodeOn(0xB1)
	base := measure(baked, payload)
	if err := baked.ShelveAt(7*24, 85); err != nil {
		t.Fatal(err)
	}
	bakedErr := measure(baked, payload)

	shelf, payload2 := encodeOn(0xB1)
	if err := shelf.Shelve(7 * 24); err != nil {
		t.Fatal(err)
	}
	shelfErr := measure(shelf, payload2)

	// Baking accelerates damage relative to room-temperature shelving...
	if bakedErr <= shelfErr {
		t.Errorf("baking (%v) should out-damage shelving (%v)", bakedErr, shelfErr)
	}
	// ...but is bounded: even a fully recovered device keeps the permanent
	// 72% of the encoding shift, which leaves the error under ~2.1× base —
	// well within a 5-copy repetition code's budget.
	if factor := bakedErr / base; factor > 2.3 {
		t.Errorf("baking factor = %v, permanent damage should bound it near 2x", factor)
	}
	// A post-bake channel of ~12% still decodes through the paper's
	// layered code: repetition(5) brings it under 2%, and the Hamming
	// outer layer mops that up.
	rep5 := stats.RepetitionErrorRate(1-bakedErr, 5)
	if rep5 > 0.02 {
		t.Errorf("5-copy repetition after baking leaves %v error", rep5)
	}
	if final := stats.HammingResidual74(rep5); final > 0.002 {
		t.Errorf("rep5+hamming(7,4) after baking leaves %v error", final)
	}
}

func TestShelveAtReducesToShelveAtReference(t *testing.T) {
	cond := analog.Conditions{VoltageV: 3.3, TempC: 85}
	a := mustNew(t, testSpec(0xC1))
	b := mustNew(t, testSpec(0xC1))
	for _, arr := range []*Array{a, b} {
		if _, err := arr.PowerOn(25); err != nil {
			t.Fatal(err)
		}
		if err := arr.Fill(0xFF); err != nil {
			t.Fatal(err)
		}
		if err := arr.Stress(cond, 10); err != nil {
			t.Fatal(err)
		}
		arr.PowerOff(true)
	}
	if err := a.Shelve(100); err != nil {
		t.Fatal(err)
	}
	if err := b.ShelveAt(100, 25); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.Cells(); i += 131 {
		if a.Bias(i) != b.Bias(i) {
			t.Fatalf("cell %d: Shelve and ShelveAt(25) diverge", i)
		}
	}
}

func TestRecoveryAccelArrhenius(t *testing.T) {
	p := testSpec(1).Aging
	cold := p.RecoveryAccel(0)
	ref := p.RecoveryAccel(25)
	hot := p.RecoveryAccel(85)
	if !(cold < ref && ref < hot) {
		t.Fatalf("recovery acceleration not monotone: %v %v %v", cold, ref, hot)
	}
	if ref < 0.999 || ref > 1.001 {
		t.Errorf("reference acceleration = %v, want 1", ref)
	}
	// At 0.3 eV, 25→85 °C accelerates recovery by roughly 5–10×.
	if hot < 4 || hot > 12 {
		t.Errorf("85°C acceleration = %v, want ~7x", hot)
	}
	// Disabled activation energy: flat.
	p.RecActivationEV = 0
	if p.RecoveryAccel(85) != 1 {
		t.Error("zero activation energy should disable acceleration")
	}
}
