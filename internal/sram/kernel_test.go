package sram

import (
	"context"
	"errors"
	"testing"

	"invisiblebits/internal/analog"
)

// kernelTestSpec builds a small spec with the given cell count (must be
// a multiple of 8) and noise generation.
func kernelTestSpec(cells int, gen int, seed uint64) Spec {
	spec := DefaultSpec()
	spec.Rows = 1
	spec.Cols = cells
	spec.Seed = seed
	spec.NoiseGen = gen
	return spec
}

// imprintSome stresses a checkerboard pattern so part of the array goes
// deterministic: the kernel then exercises the det-plane fill, the
// packed residue and the scatter paths together.
func imprintSome(t testing.TB, a *Array, hours float64) {
	t.Helper()
	if _, err := a.PowerOn(25); err != nil {
		t.Fatal(err)
	}
	pat := make([]byte, a.Bytes())
	for i := range pat {
		pat[i] = 0xA5
	}
	if err := a.StressWithPattern(pat, analog.Conditions{VoltageV: 3.6, TempC: 105}, hours); err != nil {
		t.Fatal(err)
	}
	a.PowerOff(true)
}

// TestCaptureCountBoundary: 65535 captures work and count correctly at
// the counter's ceiling; 65536 is rejected with the typed error before
// any race runs (the pre-kernel engine silently truncated the counts
// instead). A 16-cell array keeps the boundary burst fast.
func TestCaptureCountBoundary(t *testing.T) {
	a, err := New(kernelTestSpec(16, NoiseGenZiggurat, 7))
	if err != nil {
		t.Fatal(err)
	}
	votes, err := a.CaptureVotes(MaxCaptures, 25)
	if err != nil {
		t.Fatalf("CaptureVotes(%d): %v", MaxCaptures, err)
	}
	if got := a.PowerOnCount(); got != MaxCaptures {
		t.Fatalf("PowerOnCount = %d, want %d", got, MaxCaptures)
	}
	var sawMid bool
	for i, v := range votes {
		if int(v) > MaxCaptures {
			t.Fatalf("cell %d: %d votes out of %d captures", i, v, MaxCaptures)
		}
		if v != 0 && int(v) != MaxCaptures {
			sawMid = true
		}
	}
	if !sawMid {
		t.Fatal("no noisy cell recorded an intermediate vote count; boundary burst untested")
	}

	before := a.PowerOnCount()
	_, err = a.CaptureVotes(MaxCaptures+1, 25)
	var cce *CaptureCountError
	if !errors.As(err, &cce) {
		t.Fatalf("CaptureVotes(%d) error = %v, want *CaptureCountError", MaxCaptures+1, err)
	}
	if cce.Captures != MaxCaptures+1 {
		t.Fatalf("CaptureCountError.Captures = %d, want %d", cce.Captures, MaxCaptures+1)
	}
	if a.PowerOnCount() != before {
		t.Fatal("rejected burst consumed power-on counters")
	}
	// Every capture entry point validates the same bound.
	if _, err := a.BiasMap(MaxCaptures+1, 25); !errors.As(err, &cce) {
		t.Fatalf("BiasMap error = %v, want *CaptureCountError", err)
	}
	if _, err := a.CaptureMajority(MaxCaptures+2, 25); err == nil {
		t.Fatal("CaptureMajority accepted an even, over-limit count")
	}
	if _, err := a.CaptureVotesScalar(MaxCaptures+1, 25); !errors.As(err, &cce) {
		t.Fatalf("CaptureVotesScalar error = %v, want *CaptureCountError", err)
	}
}

// TestSlicedMajorityMatchesScalarThreshold: for every odd capture count
// 1..25 and cell counts straddling word boundaries (63, 64, 65), the
// kernel's majority (derived from bit-sliced counters) must equal the
// scalar threshold rule applied to the reference engine's counts.
func TestSlicedMajorityMatchesScalarThreshold(t *testing.T) {
	for _, cells := range []int{64, 72} { // 64 = exact word, 72 = tail word
		for captures := 1; captures <= 25; captures += 2 {
			spec := kernelTestSpec(cells, NoiseGenZiggurat, uint64(100+cells+captures))
			ak, err := New(spec)
			if err != nil {
				t.Fatal(err)
			}
			ar, err := New(spec)
			if err != nil {
				t.Fatal(err)
			}
			imprintSome(t, ak, 3)
			imprintSome(t, ar, 3)
			maj, err := ak.CaptureMajority(captures, 25)
			if err != nil {
				t.Fatal(err)
			}
			refVotes, err := ar.CaptureVotesReference(captures, 25)
			if err != nil {
				t.Fatal(err)
			}
			threshold := uint16(captures/2) + 1
			for i := 0; i < cells; i++ {
				want := refVotes[i] >= threshold
				got := maj[i/8]&(1<<(i%8)) != 0
				if got != want {
					t.Fatalf("cells=%d captures=%d cell %d: sliced majority %v, scalar threshold %v (votes %d)",
						cells, captures, i, got, want, refVotes[i])
				}
			}
		}
	}
	// Sub-word arrays exercise the global tail mask (n not a multiple
	// of 64): 63 isn't byte-aligned, so use 56 = 7 bytes < one word.
	spec := kernelTestSpec(56, NoiseGenZiggurat, 999)
	ak, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	ar, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	maj, err := ak.CaptureMajority(5, 25)
	if err != nil {
		t.Fatal(err)
	}
	refVotes, err := ar.CaptureVotesReference(5, 25)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 56; i++ {
		if got, want := maj[i/8]&(1<<(i%8)) != 0, refVotes[i] >= 3; got != want {
			t.Fatalf("tail array cell %d: majority %v, want %v", i, got, want)
		}
	}
}

// TestKernelEquivalence: kernel, pre-kernel scalar engine and serial
// reference must produce identical votes, data planes and counter
// consumption — for both noise generations, with and without remanence,
// from identically aged states.
func TestKernelEquivalence(t *testing.T) {
	for _, gen := range []int{NoiseGenZiggurat, NoiseGenBoxMuller} {
		for _, remanent := range []bool{false, true} {
			spec := kernelTestSpec(512, gen, 42)
			mk := func() *Array {
				a, err := New(spec)
				if err != nil {
					t.Fatal(err)
				}
				imprintSome(t, a, 5)
				if remanent {
					if _, err := a.PowerOn(25); err != nil {
						t.Fatal(err)
					}
					a.PowerOff(false) // retain contents: first capture is free
				}
				return a
			}
			ak, as, ar := mk(), mk(), mk()
			const captures = 9
			vk, err := ak.CaptureVotes(captures, 31)
			if err != nil {
				t.Fatal(err)
			}
			vs, err := as.CaptureVotesScalar(captures, 31)
			if err != nil {
				t.Fatal(err)
			}
			vr, err := ar.CaptureVotesReference(captures, 31)
			if err != nil {
				t.Fatal(err)
			}
			for i := range vk {
				if vk[i] != vr[i] || vs[i] != vr[i] {
					t.Fatalf("gen=%d rem=%v cell %d: kernel %d scalar %d reference %d",
						gen, remanent, i, vk[i], vs[i], vr[i])
				}
			}
			dk, _ := ak.Read()
			ds, _ := as.Read()
			dr, _ := ar.Read()
			for i := range dk {
				if dk[i] != dr[i] || ds[i] != dr[i] {
					t.Fatalf("gen=%d rem=%v data byte %d: kernel %02x scalar %02x reference %02x",
						gen, remanent, i, dk[i], ds[i], dr[i])
				}
			}
			if ak.PowerOnCount() != ar.PowerOnCount() || as.PowerOnCount() != ar.PowerOnCount() {
				t.Fatalf("gen=%d rem=%v counters diverged: %d %d %d",
					gen, remanent, ak.PowerOnCount(), as.PowerOnCount(), ar.PowerOnCount())
			}
		}
	}
}

// TestCaptureIntoNoAllocSteadyState: after the first burst warms the
// kernel's layout and scratch, CaptureVotesInto and CaptureMajorityInto
// allocate nothing.
func TestCaptureIntoNoAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; zero-alloc gate runs in the non-race CI job and in ibbench -quick")
	}
	a, err := New(kernelTestSpec(4096, NoiseGenZiggurat, 11))
	if err != nil {
		t.Fatal(err)
	}
	votes := make([]uint16, a.Cells())
	maj := make([]byte, a.Bytes())
	ctx := context.Background()
	if err := a.CaptureVotesInto(ctx, 5, 25, votes); err != nil {
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(10, func() {
		if err := a.CaptureVotesInto(ctx, 5, 25, votes); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("CaptureVotesInto allocates %.1f objects per steady-state burst", avg)
	}
	if avg := testing.AllocsPerRun(10, func() {
		if err := a.CaptureMajorityInto(ctx, 5, 25, maj); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("CaptureMajorityInto allocates %.1f objects per steady-state burst", avg)
	}
}

// TestMidBurstCancellation: a burst cancelled mid-flight leaves the
// array unpowered (its data plane is unspecified), and the next fresh
// power-on runs a complete race whose output matches an undisturbed
// twin — the consumed counters are not rewound, so the twin replays the
// same consumption.
func TestMidBurstCancellation(t *testing.T) {
	spec := kernelTestSpec(2048, NoiseGenZiggurat, 77)
	a, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the burst dispatches any chunk
	if _, err := a.CaptureVotesContext(ctx, 5, 25); err == nil {
		t.Fatal("cancelled burst reported success")
	}
	if a.Powered() {
		t.Fatal("cancelled burst left the array powered")
	}
	// The cancelled burst consumed its counters (matching the scalar
	// engine's contract): replay the same consumption on a twin, then
	// both must agree on the next full power-on race.
	twin, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	for twin.PowerOnCount() < a.PowerOnCount() {
		if _, err := twin.PowerCycle(25); err != nil {
			t.Fatal(err)
		}
	}
	twin.PowerOff(true)
	got, err := a.PowerOn(25)
	if err != nil {
		t.Fatal(err)
	}
	want, err := twin.PowerOn(25)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("post-cancellation power-on diverged at byte %d: %02x vs %02x", i, got[i], want[i])
		}
	}
}

// TestKernelLayoutInvalidation: stress and recovery move cell biases, so
// a cached packed layout must not survive them — captures after aging
// must match a fresh array replaying the same history.
func TestKernelLayoutInvalidation(t *testing.T) {
	spec := kernelTestSpec(256, NoiseGenZiggurat, 13)
	run := func(a *Array, warm bool) []uint16 {
		if warm {
			// Warm the kernel cache before aging.
			if _, err := a.CaptureVotes(3, 25); err != nil {
				t.Fatal(err)
			}
		} else {
			// Same counter consumption without building a cached layout
			// beforehand.
			if _, err := a.CaptureVotesReference(3, 25); err != nil {
				t.Fatal(err)
			}
		}
		pat := make([]byte, a.Bytes())
		for i := range pat {
			pat[i] = 0x0F
		}
		if err := a.StressWithPattern(pat, analog.Conditions{VoltageV: 3.6, TempC: 105}, 8); err != nil {
			t.Fatal(err)
		}
		a.PowerOff(true)
		v, err := a.CaptureVotes(7, 25)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	a1, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	warm := run(a1, true)
	cold := run(a2, false)
	for i := range warm {
		if warm[i] != cold[i] {
			t.Fatalf("cell %d: cached-layout votes %d, fresh votes %d — stale layout survived aging",
				i, warm[i], cold[i])
		}
	}
}

// BenchmarkCaptureVotesInto64KB is the receiver's steady-state decode
// loop: one array, one reused vote buffer, burst after burst. The
// 0 B/op, 0 allocs/op this reports is part of the kernel's contract —
// layout, scratch and slice planes are cached on the array after the
// first burst (see TestCaptureIntoNoAllocSteadyState for the hard
// assertion).
func BenchmarkCaptureVotesInto64KB(b *testing.B) {
	s := DefaultSpec()
	a, err := New(s)
	if err != nil {
		b.Fatal(err)
	}
	votes := make([]uint16, a.Cells())
	ctx := context.Background()
	if err := a.CaptureVotesInto(ctx, 25, 25, votes); err != nil {
		b.Fatal(err) // warm the kernel layout outside the timed loop
	}
	b.SetBytes(int64(a.Bytes() * 25))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.CaptureVotesInto(ctx, 25, 25, votes); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCaptureMajorityInto64KB is the same loop through the
// hard-decision surface (majority threshold over the counted votes).
func BenchmarkCaptureMajorityInto64KB(b *testing.B) {
	s := DefaultSpec()
	a, err := New(s)
	if err != nil {
		b.Fatal(err)
	}
	out := make([]byte, a.Bytes())
	ctx := context.Background()
	if err := a.CaptureMajorityInto(ctx, 5, 25, out); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(a.Bytes() * 5))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.CaptureMajorityInto(ctx, 5, 25, out); err != nil {
			b.Fatal(err)
		}
	}
}
