package sram

import (
	"math"
	"testing"

	"invisiblebits/internal/rng"
)

func TestNoiseGenDefaultsAndValidation(t *testing.T) {
	a, err := New(equivSpec(31))
	if err != nil {
		t.Fatal(err)
	}
	if got := a.NoiseGen(); got != NoiseGenZiggurat {
		t.Fatalf("default NoiseGen = %d, want ziggurat (%d)", got, NoiseGenZiggurat)
	}
	if got := a.Spec().NoiseGen; got != NoiseGenZiggurat {
		t.Fatalf("Spec() reports NoiseGen %d after normalization", got)
	}
	spec := equivSpec(31)
	spec.NoiseGen = NoiseGenBoxMuller
	b, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.NoiseGen(); got != NoiseGenBoxMuller {
		t.Fatalf("explicit v1 spec built NoiseGen %d", got)
	}
	spec.NoiseGen = 7
	if _, err := New(spec); err == nil {
		t.Fatal("unknown NoiseGen version accepted")
	}
}

// TestNoiseGenV1MatchesLegacyEngine: a v1 array's races must reproduce
// the pre-versioning engine exactly — raw Box–Muller draws against the
// exact float64 bias, modulo the float32 plane (checked to be
// vote-identical here on a clean array whose borderline cells are far
// from the sub-ulp rounding window).
func TestNoiseGenV1MatchesLegacyEngine(t *testing.T) {
	spec := equivSpec(37)
	spec.NoiseGen = NoiseGenBoxMuller
	a, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := a.PowerOn(25)
	if err != nil {
		t.Fatal(err)
	}
	// Replay the race the way the pre-overhaul engine did: exact
	// float64 bias plus Norm(counter, cell).
	stream := rng.NewStream(spec.Seed)
	sigma := a.noiseSigmaAt(25)
	mismatches := 0
	for i := 0; i < a.Cells(); i++ {
		want := a.Bias(i)+sigma*stream.Norm(0, uint64(i)) > 0
		got := snap[i/8]&(1<<(i%8)) != 0
		if got != want {
			mismatches++
		}
	}
	if mismatches != 0 {
		t.Fatalf("%d/%d cells differ from the legacy v1 race", mismatches, a.Cells())
	}
}

// TestPrunedCaptureEquivalence is the tentpole's exactness guarantee:
// on a heavily-imprinted array (most cells deterministic) the pruned
// parallel engine must be bit-identical to the serial engine that draws
// noise for every cell — same votes, same final contents, same counter.
func TestPrunedCaptureEquivalence(t *testing.T) {
	build := func() *Array {
		a, err := New(equivSpec(41))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := a.PowerOn(25); err != nil {
			t.Fatal(err)
		}
		pattern := make([]byte, a.Bytes())
		for i := range pattern {
			pattern[i] = byte(i * 29)
		}
		// A long imprint at the encoding condition: ~45 mV shift against
		// 1.2 mV noise pushes nearly every message cell beyond the 8σ
		// pruning bound.
		if err := a.StressWithPattern(pattern, a.Spec().Aging.Ref, 10); err != nil {
			t.Fatal(err)
		}
		a.PowerOff(true)
		return a
	}

	fast := build()
	frac, err := fast.DeterministicFrac(25)
	if err != nil {
		t.Fatal(err)
	}
	if frac < 0.5 {
		t.Fatalf("imprinted array only %.2f deterministic — pruning not exercised", frac)
	}
	votes, err := fast.CaptureVotes(9, 25)
	if err != nil {
		t.Fatal(err)
	}
	ref := build()
	refVotes, err := ref.CaptureVotesReference(9, 25)
	if err != nil {
		t.Fatal(err)
	}
	for i := range votes {
		if votes[i] != refVotes[i] {
			t.Fatalf("cell %d: pruned votes %d vs reference %d", i, votes[i], refVotes[i])
		}
	}
	fd, _ := fast.Read()
	rd, _ := ref.Read()
	for i := range fd {
		if fd[i] != rd[i] {
			t.Fatalf("final contents differ at byte %d", i)
		}
	}
	if fast.PowerOnCount() != ref.PowerOnCount() {
		t.Fatalf("counter divergence: %d vs %d", fast.PowerOnCount(), ref.PowerOnCount())
	}

	// PowerOn path too.
	s1, err := fast.PowerCycle(25)
	if err != nil {
		t.Fatal(err)
	}
	ref.PowerOff(true)
	s2, err := ref.PowerOnReference(25)
	if err != nil {
		t.Fatal(err)
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("power-on state differs at byte %d", i)
		}
	}
}

// TestStressMatchesReference: the sharded, hoisted-rate, equivalent-time
// Stress must agree with the legacy per-cell GrowShift engine to float
// rounding — including across staged episodes with interleaved decay,
// which exercises the stale-equivalent-time re-derivation.
func TestStressMatchesReference(t *testing.T) {
	pattern := func(a *Array) []byte {
		p := make([]byte, a.Bytes())
		for i := range p {
			p[i] = byte(i*53 + 1)
		}
		return p
	}
	run := func(stress func(*Array, float64) error) *Array {
		a, err := New(equivSpec(43))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := a.PowerOn(25); err != nil {
			t.Fatal(err)
		}
		if err := a.Write(pattern(a)); err != nil {
			t.Fatal(err)
		}
		if err := stress(a, 2); err != nil {
			t.Fatal(err)
		}
		if err := stress(a, 3); err != nil { // same-direction composition
			t.Fatal(err)
		}
		a.PowerOff(true)
		if err := a.Shelve(50); err != nil { // decay → stale equivalent times
			t.Fatal(err)
		}
		if _, err := a.PowerOn(25); err != nil {
			t.Fatal(err)
		}
		if err := a.Write(pattern(a)); err != nil {
			t.Fatal(err)
		}
		if err := stress(a, 1.5); err != nil { // regrowth from stale state
			t.Fatal(err)
		}
		return a
	}
	cond := DefaultSpec().Aging.Ref
	fast := run(func(a *Array, h float64) error { return a.Stress(cond, h) })
	ref := run(func(a *Array, h float64) error { return a.StressReference(cond, h) })

	worst := 0.0
	for i := 0; i < fast.Cells(); i++ {
		fb, rb := fast.Bias(i), ref.Bias(i)
		diff := math.Abs(fb - rb)
		if rel := diff / math.Max(1, math.Abs(rb)); rel > worst {
			worst = rel
		}
	}
	if worst > 1e-5 {
		t.Fatalf("worst relative bias divergence vs reference engine: %v", worst)
	}
}

// TestStateNoiseGenRoundTrip: snapshots record the noise plane version,
// restores adopt it, and pre-versioning snapshots (NoiseGen zero) fall
// back to Box–Muller with bit-identical replay.
func TestStateNoiseGenRoundTrip(t *testing.T) {
	a, err := New(equivSpec(47))
	if err != nil {
		t.Fatal(err)
	}
	ageArray(t, a)
	snap := a.StateSnapshot()
	if snap.NoiseGen != NoiseGenZiggurat {
		t.Fatalf("snapshot NoiseGen = %d, want %d", snap.NoiseGen, NoiseGenZiggurat)
	}
	wantVotes, err := a.CaptureVotes(5, 25)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(equivSpec(47))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.RestoreState(snap); err != nil {
		t.Fatal(err)
	}
	gotVotes, err := b.CaptureVotes(5, 25)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantVotes {
		if wantVotes[i] != gotVotes[i] {
			t.Fatalf("restored v2 array diverged at cell %d", i)
		}
	}

	// A legacy snapshot: same state, NoiseGen field absent (zero).
	legacy := snap
	legacy.NoiseGen = 0
	c, err := New(equivSpec(47))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RestoreState(legacy); err != nil {
		t.Fatal(err)
	}
	if got := c.NoiseGen(); got != NoiseGenBoxMuller {
		t.Fatalf("legacy snapshot restored as NoiseGen %d, want Box–Muller", got)
	}
	// It must replay what a v1 array with the same history would see.
	spec := equivSpec(47)
	spec.NoiseGen = NoiseGenBoxMuller
	d, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.RestoreState(legacy); err != nil {
		t.Fatal(err)
	}
	cv, err := c.CaptureVotes(5, 25)
	if err != nil {
		t.Fatal(err)
	}
	dv, err := d.CaptureVotes(5, 25)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cv {
		if cv[i] != dv[i] {
			t.Fatalf("legacy restore diverged at cell %d", i)
		}
	}
	// And re-snapshotting records the adopted version.
	if got := c.StateSnapshot().NoiseGen; got != NoiseGenBoxMuller {
		t.Fatalf("re-snapshot of legacy restore records NoiseGen %d", got)
	}
	bad := snap
	bad.NoiseGen = 9
	if err := c.RestoreState(bad); err == nil {
		t.Fatal("snapshot with unknown NoiseGen accepted")
	}
}

// TestBiasPlaneTracksMutation: the cached plane is invalidated or
// updated by every pool mutation path, so races never read stale bias.
func TestBiasPlaneTracksMutation(t *testing.T) {
	a, err := New(equivSpec(53))
	if err != nil {
		t.Fatal(err)
	}
	ageArray(t, a) // stress leaves the plane fresh
	for _, i := range []int{0, 1017, a.Cells() - 1} {
		exact := a.Bias(i)
		if got := float64(a.biasPlane[i]); math.Abs(got-exact) > math.Abs(exact)*1e-6+1e-6 {
			t.Fatalf("cell %d: plane %v vs exact bias %v after stress", i, got, exact)
		}
	}
	if err := a.Shelve(10); err != nil {
		t.Fatal(err)
	}
	if !a.biasFresh {
		t.Fatal("shelve should leave the plane fresh (it touches every cell)")
	}
	for _, i := range []int{0, 1017, a.Cells() - 1} {
		exact := a.Bias(i)
		if got := float64(a.biasPlane[i]); math.Abs(got-exact) > math.Abs(exact)*1e-6+1e-6 {
			t.Fatalf("cell %d: plane %v vs exact bias %v after shelve", i, got, exact)
		}
	}
}
