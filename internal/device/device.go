package device

import (
	"context"
	"fmt"

	"invisiblebits/internal/analog"
	"invisiblebits/internal/asm"
	"invisiblebits/internal/cpu"
	"invisiblebits/internal/flash"
	"invisiblebits/internal/rng"
	"invisiblebits/internal/sram"
)

// Memory map (ARM-flavoured): code executes from Flash, data lives in SRAM.
const (
	FlashBase = 0x00000000
	SRAMBase  = 0x20000000
)

// Device is one simulated board: a catalog Model instantiated with a
// serial number that determines its silicon fingerprint.
type Device struct {
	Model  Model
	Serial string

	SRAM  *sram.Array
	Flash *flash.Array

	cpu        *cpu.CPU
	fatal      error          // non-nil once the device has died permanently
	refreshLog []RefreshEvent // maintenance ledger, persisted in the image
}

// RefreshEvent is one entry in the device's maintenance ledger: a
// re-stress that restored imprint margin. The ledger travels with the
// device image so the receiving party can audit how much accelerated
// aging the carrier has absorbed.
type RefreshEvent struct {
	ClockHours   float64 // rig simulated-clock time when the refresh ran
	StressHours  float64 // length of the re-stress soak
	MarginBefore float64 // array mean margin before the refresh
	MarginAfter  float64 // array mean margin after
}

// RecordRefresh appends a maintenance event to the device's ledger.
func (d *Device) RecordRefresh(ev RefreshEvent) {
	d.refreshLog = append(d.refreshLog, ev)
}

// RefreshLog returns a copy of the device's maintenance ledger.
func (d *Device) RefreshLog() []RefreshEvent {
	out := make([]RefreshEvent, len(d.refreshLog))
	copy(out, d.refreshLog)
	return out
}

// Option customizes device construction.
type Option func(*options)

type options struct {
	sramLimitBytes int
	workers        int
}

// WithSRAMLimit caps the instantiated SRAM size (bytes). Large devices
// (the BCM2837's 768 KB of cache) can be sampled at a smaller size for
// experiments — per-cell statistics are i.i.d., so error rates measured
// on a sample transfer to the full array. Capacity math always uses
// Model.SRAMBytes.
func WithSRAMLimit(bytes int) Option {
	return func(o *options) { o.sramLimitBytes = bytes }
}

// WithWorkers gives the device's SRAM capture engine a private worker
// budget instead of the process-wide shared pool. Capture results are
// identical for any worker count (noise is counter-derived per cell);
// only throughput changes.
func WithWorkers(n int) Option {
	return func(o *options) { o.workers = n }
}

// New instantiates a device. The serial number seeds process variation:
// two devices of the same model with different serials have different
// SRAM fingerprints; the same serial reproduces the same silicon.
func New(model Model, serial string, opts ...Option) (*Device, error) {
	if serial == "" {
		return nil, fmt.Errorf("device: serial must be non-empty")
	}
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	sramBytes := model.SRAMBytes
	if o.sramLimitBytes > 0 && o.sramLimitBytes < sramBytes {
		sramBytes = o.sramLimitBytes
	}
	rows, cols := geometry(sramBytes * 8)

	spec := sram.DefaultSpec()
	spec.Rows, spec.Cols = rows, cols
	spec.MismatchSigmaMv = model.MismatchSigmaMv
	spec.Aging = model.AgingParams()
	spec.Seed = rng.HashString(model.Name + "/" + serial)
	spec.Workers = o.workers

	arr, err := sram.New(spec)
	if err != nil {
		return nil, fmt.Errorf("device %s: %w", model.Name, err)
	}

	var fl *flash.Array
	if model.FlashBytes > 0 {
		fspec := flash.DefaultSpec()
		fspec.PageBytes = 512
		fspec.Pages = model.FlashBytes / fspec.PageBytes
		fspec.Seed = rng.HashString(model.Name + "/flash/" + serial)
		fl, err = flash.New(fspec)
		if err != nil {
			return nil, fmt.Errorf("device %s: %w", model.Name, err)
		}
	}

	return &Device{Model: model, Serial: serial, SRAM: arr, Flash: fl}, nil
}

// geometry picks a near-square power-of-two layout for bits cells.
func geometry(bits int) (rows, cols int) {
	cols = 1
	for cols*cols < bits {
		cols <<= 1
	}
	rows = bits / cols
	if rows == 0 {
		rows, cols = 1, bits
	}
	return rows, cols
}

// DeviceID returns the manufacturer device identifier used as the CTR
// nonce (§4.1: "the nonce is the manufacturer's device ID").
func (d *Device) DeviceID() string { return d.Model.Name + ":" + d.Serial }

// --- health -------------------------------------------------------------------

// Kill marks the device permanently dead (latch-up, bond-wire failure,
// overdrive accident). Every active operation afterwards fails with an
// error wrapping cause, so fault classification (faults.IsPermanent)
// survives the device layer. The first cause wins; later Kill calls are
// no-ops.
func (d *Device) Kill(cause error) {
	if d.fatal == nil {
		if cause == nil {
			cause = fmt.Errorf("killed")
		}
		d.fatal = cause
		d.SRAM.PowerOff(true)
		d.cpu = nil
	}
}

// Alive reports whether the device still responds.
func (d *Device) Alive() bool { return d.fatal == nil }

// guard returns the death error for active operations on a dead device.
func (d *Device) guard() error {
	if d.fatal != nil {
		return fmt.Errorf("device %s: %w", d.Model.Name, d.fatal)
	}
	return nil
}

// --- debugger interface ------------------------------------------------------

// LoadProgram writes an assembled image into Flash via the debug port,
// erasing the affected pages first (what a real flasher does). The paper
// "assembles this program and loads it onto the target device using the
// debugger" (§4.2).
func (d *Device) LoadProgram(prog *asm.Program) error {
	if err := d.guard(); err != nil {
		return err
	}
	if d.Flash == nil {
		return fmt.Errorf("device %s: no on-chip flash to program", d.Model.Name)
	}
	if prog.Origin != FlashBase {
		return fmt.Errorf("device: program origin %#x, want flash base %#x", prog.Origin, FlashBase)
	}
	if len(prog.Image) > d.Flash.Bytes() {
		return fmt.Errorf("device: image of %d bytes exceeds %d-byte flash", len(prog.Image), d.Flash.Bytes())
	}
	pageBytes := d.Flash.Spec().PageBytes
	lastPage := (len(prog.Image) + pageBytes - 1) / pageBytes
	for p := 0; p < lastPage; p++ {
		if err := d.Flash.ErasePage(p); err != nil {
			return err
		}
	}
	_, err := d.Flash.Program(0, prog.Image)
	return err
}

// ReadSRAM reads the SRAM contents over the debug port. For cache-SRAM
// devices this models the co-processor reads the paper describes
// ("processor cache access requires co-processor operations", §5).
func (d *Device) ReadSRAM() ([]byte, error) { return d.SRAM.Read() }

// --- power and execution -----------------------------------------------------

// PowerOn ramps the supply at ambient tempC, resolving the SRAM power-on
// state, and resets the CPU to the Flash entry point.
func (d *Device) PowerOn(tempC float64) ([]byte, error) {
	return d.PowerOnContext(context.Background(), tempC)
}

// PowerOnContext is PowerOn with cancellation: a fleet sweep can abandon
// a fingerprint read mid-race. On cancellation the device stays
// unpowered (the CPU is not reset) and the next power-on runs a fresh
// race.
func (d *Device) PowerOnContext(ctx context.Context, tempC float64) ([]byte, error) {
	if err := d.guard(); err != nil {
		return nil, err
	}
	snap, err := d.SRAM.PowerOnContext(ctx, tempC)
	if err != nil {
		return nil, err
	}
	d.cpu = cpu.New(&bus{d: d}, FlashBase)
	return snap, nil
}

// PowerOff drops the supply; dischargeFully selects whether remanence is
// eliminated (§5's measurement methodology) or left in place.
func (d *Device) PowerOff(dischargeFully bool) {
	d.SRAM.PowerOff(dischargeFully)
	d.cpu = nil
}

// PowerCycle discharges fully and powers back on.
func (d *Device) PowerCycle(tempC float64) ([]byte, error) {
	d.PowerOff(true)
	return d.PowerOn(tempC)
}

// Run executes the loaded firmware for at most maxSteps instructions.
func (d *Device) Run(maxSteps uint64) (cpu.StopReason, error) {
	if err := d.guard(); err != nil {
		return cpu.StopFault, err
	}
	if d.cpu == nil {
		return cpu.StopFault, fmt.Errorf("device %s: not powered", d.Model.Name)
	}
	if d.Flash == nil {
		return cpu.StopFault, fmt.Errorf("device %s: no firmware store", d.Model.Name)
	}
	return d.cpu.Run(maxSteps)
}

// CPU exposes the live CPU for inspection (nil when unpowered).
func (d *Device) CPU() *cpu.CPU { return d.cpu }

// Stress ages the device at conditions c for hours with its current SRAM
// contents — the thermal-chamber step (Algorithm 1, lines 5–6).
func (d *Device) Stress(c analog.Conditions, hours float64) error {
	if err := d.guard(); err != nil {
		return err
	}
	if d.Model.RequiresRegulatorBypass && c.VoltageV > d.Model.VNomV*1.05 {
		// §7.2: complex devices regulate the core rail; elevated stress
		// requires bypassing the regulator through its inductor pin. The
		// simulation models this as a required rig capability rather than
		// electronics; the rig package performs the bypass.
		return fmt.Errorf("device %s: core rail is regulated; use rig.BypassRegulator", d.Model.Name)
	}
	return d.SRAM.Stress(c, hours)
}

// StressBypassed is the §7.2 path: the rig has attached to the regulator
// inductor pin and drives the core rail directly.
func (d *Device) StressBypassed(c analog.Conditions, hours float64) error {
	if err := d.guard(); err != nil {
		return err
	}
	return d.SRAM.Stress(c, hours)
}

// Shelve lets the unpowered device recover naturally for hours (§5.1.3).
func (d *Device) Shelve(hours float64) error { return d.SRAM.Shelve(hours) }

// ShelveAt stores the unpowered device at tempC for hours; hot storage
// accelerates recovery (the adversarial "baking attack" surface).
func (d *Device) ShelveAt(hours, tempC float64) error { return d.SRAM.ShelveAt(hours, tempC) }

// --- memory bus ---------------------------------------------------------------

// bus routes CPU accesses: Flash is execute/read-only at runtime, SRAM is
// read/write while powered.
type bus struct{ d *Device }

func (b *bus) route(addr uint32) (inFlash bool, off int, err error) {
	switch {
	case b.d.Flash != nil && addr >= FlashBase && addr < FlashBase+uint32(b.d.Flash.Bytes()):
		return true, int(addr - FlashBase), nil
	case addr >= SRAMBase && addr < SRAMBase+uint32(b.d.SRAM.Bytes()):
		return false, int(addr - SRAMBase), nil
	default:
		return false, 0, fmt.Errorf("bus fault at %#08x", addr)
	}
}

func (b *bus) Load8(addr uint32) (byte, error) {
	inFlash, off, err := b.route(addr)
	if err != nil {
		return 0, err
	}
	if inFlash {
		return b.d.Flash.ByteAt(off)
	}
	return b.d.SRAM.ByteAt(off)
}

func (b *bus) Store8(addr uint32, v byte) error {
	inFlash, off, err := b.route(addr)
	if err != nil {
		return err
	}
	if inFlash {
		return fmt.Errorf("bus: store to flash at %#08x (flash is not writable at runtime)", addr)
	}
	return b.d.SRAM.SetByteAt(off, v)
}

func (b *bus) Load32(addr uint32) (uint32, error) {
	var v uint32
	for k := 0; k < 4; k++ {
		bb, err := b.Load8(addr + uint32(k))
		if err != nil {
			return 0, err
		}
		v |= uint32(bb) << (8 * k)
	}
	return v, nil
}

func (b *bus) Store32(addr uint32, v uint32) error {
	for k := 0; k < 4; k++ {
		if err := b.Store8(addr+uint32(k), byte(v>>(8*k))); err != nil {
			return err
		}
	}
	return nil
}
