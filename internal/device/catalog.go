// Package device provides the catalog of commercial devices the paper
// evaluates (Table 1) and a full simulated device: SRAM array, Flash
// program store, IB32 CPU, debugger access, and power control.
//
// Each catalog entry carries the calibration anchor that pins its
// simulated aging response to the paper's measured Table 4 operating
// point (accelerated voltage, encoding time, achieved bit rate). Devices
// the paper lists but does not characterize in Table 4 get class-typical
// anchors so the whole Table 1 fleet is usable.
package device

import (
	"fmt"

	"invisiblebits/internal/analog"
	"invisiblebits/internal/stats"
)

// SRAMKind describes how the paper reaches the device's SRAM.
type SRAMKind string

// SRAM roles from Table 1/Table 4.
const (
	MainMemory SRAMKind = "main memory"
	Cache      SRAMKind = "cache"
)

// Model is a catalog entry (one row of Table 1).
type Model struct {
	Name         string
	CPUCore      string
	Manufacturer string
	SRAMBytes    int
	FlashBytes   int
	SRAMRole     SRAMKind
	// AccessPowerOn and AcceleratedAging are the two ✓ columns of Table 1.
	AccessPowerOn    bool
	AcceleratedAging bool

	// Operating points.
	VNomV float64 // nominal core voltage
	TNomC float64 // nominal temperature
	VAccV float64 // accelerated encoding voltage (Table 4)
	TAccC float64 // accelerated encoding temperature
	// EncodingHours is the Table 4 stress time.
	EncodingHours float64
	// TargetBitRate is the Table 4 single-copy bit rate the anchor must
	// reproduce at (VAccV, TAccC, EncodingHours).
	TargetBitRate float64
	// RequiresRegulatorBypass marks complex devices whose core rail must
	// be reached through the regulator's inductor pin (§7.2).
	RequiresRegulatorBypass bool
	// MismatchSigmaMv scales process variation (technology dependent).
	MismatchSigmaMv float64
}

// Conditions helpers.

// Nominal returns the device's nominal operating conditions.
func (m Model) Nominal() analog.Conditions {
	return analog.Conditions{VoltageV: m.VNomV, TempC: m.TNomC}
}

// Accelerated returns the device's encoding (stress) conditions.
func (m Model) Accelerated() analog.Conditions {
	return analog.Conditions{VoltageV: m.VAccV, TempC: m.TAccC}
}

// OverdriveSafetyFactor is the headroom above the characterized
// accelerated voltage that the rig will still apply. §7.2 cautions that
// elevating a core rail beyond the stress point the lot was
// characterized at risks destroying the device outright; the rig
// enforces this ceiling rather than trusting every experiment script.
const OverdriveSafetyFactor = 1.25

// SafeVoltageCeiling returns the absolute maximum supply voltage the
// rig may apply to this device: the larger of the nominal and Table 4
// accelerated voltages, with OverdriveSafetyFactor of headroom.
func (m Model) SafeVoltageCeiling() float64 {
	v := m.VNomV
	if m.VAccV > v {
		v = m.VAccV
	}
	return v * OverdriveSafetyFactor
}

// AgingParams derives the device's calibrated NBTI parameter set: the
// prefactor is anchored so that EncodingHours of stress at the
// accelerated condition produce exactly the threshold shift that yields
// TargetBitRate against the device's Gaussian mismatch population
// (shift = σ_m · Φ⁻¹(bit rate); see DESIGN.md §3.2).
func (m Model) AgingParams() analog.Params {
	targetShift := m.MismatchSigmaMv * stats.NormalQuantile(m.TargetBitRate)
	const n = 0.66 // fitted to Fig. 6's error decay
	return analog.Params{
		A0MvPerHourN:    analog.CalibrateA0(n, targetShift, m.EncodingHours),
		TimeExponent:    n,
		GammaPerVolt:    1.6,
		ActivationEV:    0.19,
		Ref:             m.Accelerated(),
		RecFastFrac:     0.12,
		RecSlowFrac:     0.16,
		TauFastHours:    100,
		TauSlowHours:    1350,
		RecActivationEV: 0.30,
		RecTRefC:        25,
	}
}

// Catalog reproduces Table 1. Table 4 rows carry their measured anchors;
// the remaining devices get class-typical anchors (93 % at 10 h, 3.3 V).
var Catalog = []Model{
	{
		Name: "MSP430G2553", CPUCore: "MSP430 single cycle", Manufacturer: "Texas Instruments",
		SRAMBytes: 512, FlashBytes: 16 << 10, SRAMRole: MainMemory,
		AccessPowerOn: true, AcceleratedAging: true,
		VNomV: 1.8, TNomC: 25, VAccV: 3.6, TAccC: 85,
		EncodingHours: 10, TargetBitRate: 0.93, MismatchSigmaMv: 30,
	},
	{
		Name: "MSP432P401", CPUCore: "ARM Cortex-M4", Manufacturer: "Texas Instruments",
		SRAMBytes: 64 << 10, FlashBytes: 256 << 10, SRAMRole: MainMemory,
		AccessPowerOn: true, AcceleratedAging: true,
		VNomV: 1.2, TNomC: 25, VAccV: 3.3, TAccC: 85,
		EncodingHours: 10, TargetBitRate: 0.935, MismatchSigmaMv: 30,
	},
	{
		Name: "EFM32WG990F256", CPUCore: "ARM Cortex-M4", Manufacturer: "Silicon Labs",
		SRAMBytes: 32 << 10, FlashBytes: 256 << 10, SRAMRole: MainMemory,
		AccessPowerOn: true, AcceleratedAging: true,
		VNomV: 1.2, TNomC: 25, VAccV: 3.6, TAccC: 85,
		EncodingHours: 10, TargetBitRate: 0.93, MismatchSigmaMv: 30,
	},
	{
		Name: "ATSAML11E16A", CPUCore: "ARM Cortex-M23", Manufacturer: "Microchip",
		SRAMBytes: 16 << 10, FlashBytes: 64 << 10, SRAMRole: MainMemory,
		AccessPowerOn: true, AcceleratedAging: true,
		VNomV: 1.2, TNomC: 25, VAccV: 4.8, TAccC: 85,
		EncodingHours: 16, TargetBitRate: 0.972, MismatchSigmaMv: 28,
	},
	{
		Name: "M263KIAAE", CPUCore: "ARM Cortex-M23", Manufacturer: "Nuvoton",
		SRAMBytes: 96 << 10, FlashBytes: 512 << 10, SRAMRole: MainMemory,
		AccessPowerOn: true, AcceleratedAging: true,
		VNomV: 1.2, TNomC: 25, VAccV: 3.6, TAccC: 85,
		EncodingHours: 12, TargetBitRate: 0.93, MismatchSigmaMv: 30,
	},
	{
		Name: "M2351SFSIAAP", CPUCore: "ARM Cortex-M23", Manufacturer: "Nuvoton",
		SRAMBytes: 96 << 10, FlashBytes: 512 << 10, SRAMRole: MainMemory,
		AccessPowerOn: true, AcceleratedAging: true,
		VNomV: 1.2, TNomC: 25, VAccV: 3.6, TAccC: 85,
		EncodingHours: 12, TargetBitRate: 0.93, MismatchSigmaMv: 30,
	},
	{
		Name: "M252KG6AE", CPUCore: "ARM Cortex-M23", Manufacturer: "Nuvoton",
		SRAMBytes: 32 << 10, FlashBytes: 256 << 10, SRAMRole: MainMemory,
		AccessPowerOn: true, AcceleratedAging: true,
		VNomV: 1.2, TNomC: 25, VAccV: 3.6, TAccC: 85,
		EncodingHours: 12, TargetBitRate: 0.93, MismatchSigmaMv: 30,
	},
	{
		Name: "M251SD2AE", CPUCore: "ARM Cortex-M23", Manufacturer: "Nuvoton",
		SRAMBytes: 12 << 10, FlashBytes: 64 << 10, SRAMRole: MainMemory,
		AccessPowerOn: true, AcceleratedAging: true,
		VNomV: 1.2, TNomC: 25, VAccV: 3.6, TAccC: 85,
		EncodingHours: 12, TargetBitRate: 0.93, MismatchSigmaMv: 30,
	},
	{
		Name: "R7FS1JA783A01CFM", CPUCore: "ARM Cortex-M23", Manufacturer: "Renesas Electronics",
		SRAMBytes: 32 << 10, FlashBytes: 256 << 10, SRAMRole: MainMemory,
		AccessPowerOn: true, AcceleratedAging: true,
		VNomV: 1.2, TNomC: 25, VAccV: 3.6, TAccC: 85,
		EncodingHours: 12, TargetBitRate: 0.93, MismatchSigmaMv: 30,
	},
	{
		Name: "STM32L562", CPUCore: "ARM Cortex-M33", Manufacturer: "STMicroelectronics",
		SRAMBytes: 40 << 10, FlashBytes: 256 << 10, SRAMRole: MainMemory,
		AccessPowerOn: true, AcceleratedAging: true,
		VNomV: 1.2, TNomC: 25, VAccV: 3.6, TAccC: 85,
		EncodingHours: 12, TargetBitRate: 0.93, MismatchSigmaMv: 30,
	},
	{
		Name: "LPC55S69JBD100", CPUCore: "Dual-core ARM Cortex-M33", Manufacturer: "NXP Semiconductors",
		SRAMBytes: 320 << 10, FlashBytes: 640 << 10, SRAMRole: MainMemory,
		AccessPowerOn: true, AcceleratedAging: true,
		VNomV: 1.2, TNomC: 25, VAccV: 5.5, TAccC: 85,
		EncodingHours: 24, TargetBitRate: 0.885, MismatchSigmaMv: 32,
	},
	{
		Name: "BCM2837", CPUCore: "Quad-core ARM Cortex-A53", Manufacturer: "Broadcom",
		SRAMBytes: 768 << 10, FlashBytes: 0, SRAMRole: Cache,
		AccessPowerOn: true, AcceleratedAging: true,
		VNomV: 1.2, TNomC: 25, VAccV: 2.2, TAccC: 85,
		EncodingHours: 120, TargetBitRate: 0.792, MismatchSigmaMv: 34,
		RequiresRegulatorBypass: true,
	},
}

// ByName finds a catalog entry.
func ByName(name string) (Model, error) {
	for _, m := range Catalog {
		if m.Name == name {
			return m, nil
		}
	}
	return Model{}, fmt.Errorf("device: unknown model %q", name)
}

// Table4Models returns the four devices the paper fully characterizes.
func Table4Models() []Model {
	names := []string{"ATSAML11E16A", "MSP432P401", "LPC55S69JBD100", "BCM2837"}
	out := make([]Model, 0, len(names))
	for _, n := range names {
		m, err := ByName(n)
		if err != nil {
			panic(err) // catalog and list are both compiled in; a miss is a programming error
		}
		out = append(out, m)
	}
	return out
}
