package device

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"invisiblebits/internal/ioatomic"
)

// TestSaveFileSealedRoundTrip: SaveFile writes a sealed image, LoadFile
// verifies it, and one flipped byte at rest surfaces as ErrCorruptImage
// instead of a silently wrong device.
func TestSaveFileSealedRoundTrip(t *testing.T) {
	d := mustDevice(t, "MSP430G2553", "seal-1", WithSRAMLimit(1<<10))
	path := filepath.Join(t.TempDir(), "dev.img")
	if err := d.SaveFile(path); err != nil {
		t.Fatal(err)
	}

	// The footer is present and verifies.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, sealed, err := ioatomic.Unseal(raw); err != nil || !sealed {
		t.Fatalf("image not sealed: sealed=%v err=%v", sealed, err)
	}

	d2, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Model.Name != d.Model.Name || d2.Serial != d.Serial {
		t.Fatalf("identity lost: %s/%s", d2.Model.Name, d2.Serial)
	}

	// Rot a payload byte: the seal must catch it.
	raw[len(raw)/3] ^= 0x20
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path); !errors.Is(err, ErrCorruptImage) {
		t.Fatalf("rotted image load = %v, want ErrCorruptImage", err)
	}
}

// TestLoadFilePreFooterCompat: images written before the seal footer
// existed (a bare gob stream) still load — the footer is optional on
// read, mandatory only on new writes.
func TestLoadFilePreFooterCompat(t *testing.T) {
	d := mustDevice(t, "MSP430G2553", "legacy-1", WithSRAMLimit(1<<10))
	path := filepath.Join(t.TempDir(), "legacy.img")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Save(f); err != nil { // bare stream, no footer
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := LoadFile(path)
	if err != nil {
		t.Fatalf("pre-footer image rejected: %v", err)
	}
	if d2.Model.Name != d.Model.Name || d2.Serial != d.Serial {
		t.Fatalf("identity lost: %s/%s", d2.Model.Name, d2.Serial)
	}
}
