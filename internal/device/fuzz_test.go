package device

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"invisiblebits/internal/sram"
)

// imageV1 mirrors the version-1 wire layout (no RefreshLog field). gob
// matches struct fields by name, so encoding this type produces exactly
// what a pre-ledger build would have written.
type imageV1 struct {
	Version   int
	ModelName string
	Serial    string
	SRAMBytes int
	SRAM      sram.State
	FlashData []byte
}

// imageBytes builds a real device image at the requested version.
func imageBytes(t testing.TB, version int) []byte {
	t.Helper()
	d := mustDeviceTB(t, "MSP430G2553", "fuzz-seed")
	if _, err := d.PowerOn(25); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	switch version {
	case 1:
		img := imageV1{
			Version:   1,
			ModelName: d.Model.Name,
			Serial:    d.Serial,
			SRAMBytes: d.SRAM.Bytes(),
			SRAM:      d.SRAM.StateSnapshot(),
		}
		if err := gob.NewEncoder(&buf).Encode(img); err != nil {
			t.Fatal(err)
		}
	default:
		if err := d.Save(&buf); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func mustDeviceTB(t testing.TB, model, serial string, opts ...Option) *Device {
	t.Helper()
	m, err := ByName(model)
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(m, serial, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// imageSeeds returns the seed corpus: genuine v1 and v2 images, their
// truncations and single-byte corruptions (the highest-value starting
// points for gob-stream mutation), and plain garbage. Checked in under
// testdata/fuzz/FuzzImageLoad (regenerate with IB_REGEN_FUZZ=1).
func imageSeeds(t testing.TB) [][]byte {
	v1 := imageBytes(t, 1)
	v2 := imageBytes(t, 2)
	flipped := append([]byte(nil), v2...)
	flipped[len(flipped)/3] ^= 0x40
	return [][]byte{
		v1,
		v2,
		v2[:len(v2)/2],
		v2[:7],
		flipped,
		[]byte("not a device image"),
		{},
	}
}

// FuzzImageLoad hammers the device-image loader with mutated gob
// streams. The contract: Load either returns a working device — whose
// image must survive a re-Save — or an error. Never a panic, regardless
// of what the bytes claim about version, geometry, or flash size.
func FuzzImageLoad(f *testing.F) {
	for _, seed := range imageSeeds(f) {
		f.Add(seed)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A load that succeeds must hand back a coherent device.
		if d.SRAM == nil || d.SRAM.Bytes() <= 0 {
			t.Fatal("Load returned a device with no SRAM")
		}
		var buf bytes.Buffer
		if err := d.Save(&buf); err != nil {
			t.Fatalf("re-save of loaded image failed: %v", err)
		}
	})
}

// TestLoadV1Image pins backward compatibility outside the fuzzer: a
// version-1 stream (no RefreshLog) loads, reports an empty ledger, and
// reproduces the saved silicon.
func TestLoadV1Image(t *testing.T) {
	d, err := Load(bytes.NewReader(imageBytes(t, 1)))
	if err != nil {
		t.Fatalf("v1 image rejected: %v", err)
	}
	if d.Model.Name != "MSP430G2553" || d.Serial != "fuzz-seed" {
		t.Fatalf("identity lost: %s/%s", d.Model.Name, d.Serial)
	}
	if len(d.RefreshLog()) != 0 {
		t.Fatalf("v1 image produced %d ledger entries", len(d.RefreshLog()))
	}
}

// TestRegenFuzzCorpus rewrites the checked-in seed corpus from
// imageSeeds. Gated so normal runs never touch testdata; run with
// IB_REGEN_FUZZ=1 after changing the image format or seed set.
func TestRegenFuzzCorpus(t *testing.T) {
	if os.Getenv("IB_REGEN_FUZZ") == "" {
		t.Skip("set IB_REGEN_FUZZ=1 to regenerate testdata/fuzz seed corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzImageLoad")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, seed := range imageSeeds(t) {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", seed)
		name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
