package device

import (
	"bytes"
	"testing"

	"invisiblebits/internal/rng"
	"invisiblebits/internal/stats"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	d := mustDevice(t, "MSP432P401", "save1", WithSRAMLimit(4<<10))
	if _, err := d.PowerOn(25); err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, d.SRAM.Bytes())
	rng.NewSource(1).Bytes(payload)
	if err := d.SRAM.Write(payload); err != nil {
		t.Fatal(err)
	}
	if err := d.StressBypassed(d.Model.Accelerated(), 10); err != nil {
		t.Fatal(err)
	}
	majBefore, err := d.SRAM.CaptureMajority(5, 25)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Model.Name != "MSP432P401" || d2.Serial != "save1" {
		t.Fatalf("identity lost: %s/%s", d2.Model.Name, d2.Serial)
	}
	if d2.SRAM.Bytes() != 4<<10 {
		t.Fatalf("SRAM size = %d", d2.SRAM.Bytes())
	}
	majAfter, err := d2.SRAM.CaptureMajority(5, 25)
	if err != nil {
		t.Fatal(err)
	}
	// The aging state survived: the decoded payload matches across the
	// save/load boundary (small majority-churn tolerance).
	if ber := stats.BitErrorRate(majBefore, majAfter); ber > 0.01 {
		t.Fatalf("aging state lost across save/load: ber=%v", ber)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a device image"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestRestoreStateRejectsForeignSnapshot(t *testing.T) {
	a := mustDevice(t, "MSP432P401", "s1", WithSRAMLimit(4<<10))
	b := mustDevice(t, "MSP432P401", "s2", WithSRAMLimit(4<<10))
	if err := b.SRAM.RestoreState(a.SRAM.StateSnapshot()); err == nil {
		t.Fatal("foreign snapshot accepted")
	}
	c := mustDevice(t, "MSP432P401", "s1", WithSRAMLimit(8<<10))
	if err := c.SRAM.RestoreState(a.SRAM.StateSnapshot()); err == nil {
		t.Fatal("geometry mismatch accepted")
	}
}

func TestSaveLoadPreservesDigitalContents(t *testing.T) {
	d := mustDevice(t, "ATSAML11E16A", "dig", WithSRAMLimit(4<<10))
	if _, err := d.PowerOn(25); err != nil {
		t.Fatal(err)
	}
	want := []byte{0xAB, 0xCD}
	if err := d.SRAM.WriteAt(10, want); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !d2.SRAM.Powered() {
		t.Fatal("powered flag lost")
	}
	got, err := d2.SRAM.Read()
	if err != nil {
		t.Fatal(err)
	}
	if got[10] != 0xAB || got[11] != 0xCD {
		t.Fatal("digital contents lost")
	}
}
