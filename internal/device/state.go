package device

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"

	"invisiblebits/internal/ioatomic"
	"invisiblebits/internal/sram"
	"invisiblebits/internal/storage"
)

// ErrTruncatedImage marks a device image whose byte stream ended before
// the serialized state was complete — the signature of a torn write or
// an interrupted copy. Check with errors.Is; a truncated image is not a
// version problem and not corruption of a whole stream, it is simply
// *missing its tail*, and callers (campaign resume in particular) treat
// it as "this checkpoint never durably existed".
var ErrTruncatedImage = errors.New("device: image truncated")

// ErrCorruptImage marks a device image file whose sha256 seal footer no
// longer matches its contents — the bytes changed at rest. Unlike
// ErrTruncatedImage (a clean missing tail) this is positive evidence of
// corruption; callers must treat the whole file as untrustworthy. Check
// with errors.Is; it also matches ioatomic.ErrSealMismatch.
var ErrCorruptImage = fmt.Errorf("device: image corrupt: %w", ioatomic.ErrSealMismatch)

// imageVersion guards the on-disk format. Version 2 added the refresh
// maintenance ledger; version 3 records the SRAM noise-plane version
// (sram.State.NoiseGen). Older images still load: a missing NoiseGen
// decodes as zero, which RestoreState maps to Box–Muller — the only
// sampler that existed when those images were written — so v1/v2
// archives keep replaying bit-identical captures under the v2 engine.
const imageVersion = 3

// image is the gob-serialized form of a device: enough to reconstruct
// the silicon (model + serial regenerate the fingerprint) plus the
// mutable aging/digital state. This is what lets the cmd tools hand a
// simulated device from the encoding party to the receiving party as a
// single file.
type image struct {
	Version   int
	ModelName string
	Serial    string
	SRAMBytes int // instantiated size (may be a sample of the model size)
	SRAM      sram.State
	// FlashData is the digital Flash contents (the firmware travels with
	// the chip). Flash *analog* state (wear, Vt levels) is not part of
	// the image — the steganographic channel under study is the SRAM.
	FlashData []byte
	// RefreshLog is the maintenance ledger (since version 2). Absent in
	// version-1 images.
	RefreshLog []RefreshEvent
}

// Save serializes the device to w. The CPU is not part of the image —
// firmware is reloaded by whoever receives the device, exactly as in the
// paper's workflow.
func (d *Device) Save(w io.Writer) error {
	img := image{
		Version:    imageVersion,
		ModelName:  d.Model.Name,
		Serial:     d.Serial,
		SRAMBytes:  d.SRAM.Bytes(),
		SRAM:       d.SRAM.StateSnapshot(),
		RefreshLog: d.RefreshLog(),
	}
	if d.Flash != nil {
		data, err := d.Flash.Read(0, d.Flash.Bytes())
		if err != nil {
			return fmt.Errorf("device: save flash: %w", err)
		}
		img.FlashData = data
	}
	if err := gob.NewEncoder(w).Encode(img); err != nil {
		return fmt.Errorf("device: save: %w", err)
	}
	return nil
}

// SaveFile writes the device image to path atomically and sealed: the
// previous image (if any) is replaced only after the new bytes are
// durable, so a crash mid-save can never leave a torn image under the
// final name, and a sha256 footer (ioatomic.Seal) lets every later load
// prove the disk returned the bytes that were stored. The gob stream
// itself is unchanged — Save(w) output is byte-identical to earlier
// releases, and old readers skip the footer because gob decodes exactly
// one value and ignores trailing bytes.
func (d *Device) SaveFile(path string) error {
	return d.SaveFileFS(nil, path)
}

// SaveFileFS is SaveFile over an explicit filesystem seam.
func (d *Device) SaveFileFS(fsys storage.FS, path string) error {
	return ioatomic.WriteToSealed(fsys, path, 0o644, d.Save)
}

// LoadFile reconstructs a device from an image file written by SaveFile
// (or any complete Save stream on disk). Sealed images are verified
// against their sha256 footer (failure → ErrCorruptImage); pre-footer
// images load as before.
func LoadFile(path string) (*Device, error) {
	return LoadFileFS(nil, path)
}

// LoadFileFS is LoadFile over an explicit filesystem seam.
func LoadFileFS(fsys storage.FS, path string) (*Device, error) {
	payload, _, err := ioatomic.ReadFileSealed(fsys, path)
	if err != nil {
		if errors.Is(err, ioatomic.ErrSealMismatch) {
			return nil, fmt.Errorf("%w: %s", ErrCorruptImage, path)
		}
		if errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("device: load: %w", err)
		}
		return nil, fmt.Errorf("device: load: %w", err)
	}
	return Load(bytes.NewReader(payload))
}

// Load reconstructs a device from an image produced by Save.
func Load(r io.Reader) (*Device, error) {
	var img image
	if err := gob.NewDecoder(r).Decode(&img); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, fmt.Errorf("device: load: %w", ErrTruncatedImage)
		}
		return nil, fmt.Errorf("device: load: %w", err)
	}
	if img.Version < 1 || img.Version > imageVersion {
		return nil, fmt.Errorf("device: image version %d unsupported", img.Version)
	}
	model, err := ByName(img.ModelName)
	if err != nil {
		return nil, err
	}
	var opts []Option
	if img.SRAMBytes < model.SRAMBytes {
		opts = append(opts, WithSRAMLimit(img.SRAMBytes))
	}
	d, err := New(model, img.Serial, opts...)
	if err != nil {
		return nil, err
	}
	if err := d.SRAM.RestoreState(img.SRAM); err != nil {
		return nil, err
	}
	d.refreshLog = append(d.refreshLog, img.RefreshLog...)
	if d.Flash != nil && img.FlashData != nil {
		if len(img.FlashData) != d.Flash.Bytes() {
			return nil, fmt.Errorf("device: image flash is %d bytes, device has %d",
				len(img.FlashData), d.Flash.Bytes())
		}
		// A fresh array is fully erased, so programming reproduces the
		// digital contents exactly (NOR 1→0 transitions only).
		if _, err := d.Flash.Program(0, img.FlashData); err != nil {
			return nil, err
		}
	}
	return d, nil
}
