package device

import (
	"math"
	"strings"
	"testing"

	"invisiblebits/internal/asm"
	"invisiblebits/internal/cpu"
	"invisiblebits/internal/stats"
)

func TestCatalogMatchesTable1(t *testing.T) {
	if len(Catalog) != 12 {
		t.Fatalf("catalog has %d devices, Table 1 lists 12", len(Catalog))
	}
	for _, m := range Catalog {
		if !m.AccessPowerOn || !m.AcceleratedAging {
			t.Errorf("%s: Table 1 shows ✓ for both capability columns", m.Name)
		}
		if m.SRAMBytes <= 0 {
			t.Errorf("%s: bad SRAM size", m.Name)
		}
		if m.SRAMRole != Cache && m.FlashBytes <= 0 {
			t.Errorf("%s: MCU without flash", m.Name)
		}
		if err := m.AgingParams().Validate(); err != nil {
			t.Errorf("%s: invalid aging params: %v", m.Name, err)
		}
	}
	// Spot-check Table 1 rows.
	msp, err := ByName("MSP432P401")
	if err != nil {
		t.Fatal(err)
	}
	if msp.SRAMBytes != 64<<10 || msp.FlashBytes != 256<<10 {
		t.Errorf("MSP432 sizes wrong: %+v", msp)
	}
	rpi, _ := ByName("BCM2837")
	if rpi.SRAMRole != Cache || rpi.SRAMBytes != 768<<10 || !rpi.RequiresRegulatorBypass {
		t.Errorf("BCM2837 row wrong: %+v", rpi)
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("Z80"); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestTable4Models(t *testing.T) {
	ms := Table4Models()
	if len(ms) != 4 {
		t.Fatalf("got %d models", len(ms))
	}
	// Table 4 values.
	want := map[string]struct {
		v     float64
		hours float64
		rate  float64
	}{
		"ATSAML11E16A":   {4.8, 16, 0.972},
		"MSP432P401":     {3.3, 10, 0.935},
		"LPC55S69JBD100": {5.5, 24, 0.885},
		"BCM2837":        {2.2, 120, 0.792},
	}
	for _, m := range ms {
		w := want[m.Name]
		if m.VAccV != w.v || m.EncodingHours != w.hours || m.TargetBitRate != w.rate {
			t.Errorf("%s anchor = (%v V, %v h, %v), want %+v", m.Name, m.VAccV, m.EncodingHours, m.TargetBitRate, w)
		}
		if m.TAccC != 85 {
			t.Errorf("%s: T_acc = %v, Table 4 uses 85°C", m.Name, m.TAccC)
		}
	}
}

func TestAgingParamsAnchored(t *testing.T) {
	// The anchor property: shift at (V_acc, T_acc, EncodingHours) equals
	// σ_m · Φ⁻¹(bit rate).
	for _, m := range Table4Models() {
		p := m.AgingParams()
		got := p.ShiftAfter(m.Accelerated(), m.EncodingHours)
		want := m.MismatchSigmaMv * stats.NormalQuantile(m.TargetBitRate)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("%s: anchored shift %v, want %v", m.Name, got, want)
		}
	}
}

func mustDevice(t *testing.T, model, serial string, opts ...Option) *Device {
	t.Helper()
	m, err := ByName(model)
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(m, serial, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestSerialDeterminesFingerprint(t *testing.T) {
	a := mustDevice(t, "ATSAML11E16A", "0001")
	b := mustDevice(t, "ATSAML11E16A", "0001")
	c := mustDevice(t, "ATSAML11E16A", "0002")
	sa, err := a.PowerOn(25)
	if err != nil {
		t.Fatal(err)
	}
	sb, _ := b.PowerOn(25)
	sc, _ := c.PowerOn(25)
	if ber := stats.BitErrorRate(sa, sb); ber > 0.05 {
		t.Errorf("same serial differs by %v", ber)
	}
	if ber := stats.BitErrorRate(sa, sc); ber < 0.4 {
		t.Errorf("different serials differ by only %v", ber)
	}
}

func TestNewValidation(t *testing.T) {
	m, _ := ByName("MSP432P401")
	if _, err := New(m, ""); err == nil {
		t.Fatal("empty serial accepted")
	}
}

func TestSRAMLimitOption(t *testing.T) {
	d := mustDevice(t, "BCM2837", "rpi3", WithSRAMLimit(16<<10))
	if d.SRAM.Bytes() != 16<<10 {
		t.Fatalf("limited SRAM = %d bytes", d.SRAM.Bytes())
	}
	if d.Model.SRAMBytes != 768<<10 {
		t.Fatal("model capacity must stay at the full size")
	}
	// A limit above the model size is ignored.
	d2 := mustDevice(t, "ATSAML11E16A", "x", WithSRAMLimit(1<<30))
	if d2.SRAM.Bytes() != 16<<10 {
		t.Fatalf("oversize limit changed SRAM to %d", d2.SRAM.Bytes())
	}
}

func TestGeometryShapes(t *testing.T) {
	cases := []struct{ bits, rows, cols int }{
		{4096, 64, 64},
		{512 << 10, 512, 1024},
		{8, 2, 4},
	}
	for _, c := range cases {
		r, col := geometry(c.bits)
		if r*col != c.bits {
			t.Errorf("geometry(%d) = %dx%d does not cover", c.bits, r, col)
		}
		if r != c.rows || col != c.cols {
			t.Errorf("geometry(%d) = %dx%d, want %dx%d", c.bits, r, col, c.rows, c.cols)
		}
	}
}

func TestDeviceID(t *testing.T) {
	d := mustDevice(t, "MSP432P401", "A7")
	if d.DeviceID() != "MSP432P401:A7" {
		t.Errorf("DeviceID = %q", d.DeviceID())
	}
}

// firmware assembles a program that writes two known words into SRAM and
// busy-waits — the minimal shape of the paper's payload writer.
const firmware = `
        movi r1, #0x0000
        movt r1, #0x2000      ; SRAM base
        la   r2, data
        ldr  r3, [r2, #0]
        str  r3, [r1, #0]
        ldr  r3, [r2, #4]
        str  r3, [r1, #4]
wait:   b    wait
data:   .word 0xCAFEBABE, 0x8BADF00D
`

func TestLoadAndRunFirmware(t *testing.T) {
	d := mustDevice(t, "MSP432P401", "fw1")
	prog, err := asm.Assemble(firmware, FlashBase)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	if _, err := d.PowerOn(25); err != nil {
		t.Fatal(err)
	}
	reason, err := d.Run(10000)
	if err != nil {
		t.Fatal(err)
	}
	if reason != cpu.StopBusyWait {
		t.Fatalf("stop reason = %v", reason)
	}
	mem, err := d.ReadSRAM()
	if err != nil {
		t.Fatal(err)
	}
	got := uint32(mem[0]) | uint32(mem[1])<<8 | uint32(mem[2])<<16 | uint32(mem[3])<<24
	if got != 0xCAFEBABE {
		t.Errorf("SRAM[0] = %#x", got)
	}
	got = uint32(mem[4]) | uint32(mem[5])<<8 | uint32(mem[6])<<16 | uint32(mem[7])<<24
	if got != 0x8BADF00D {
		t.Errorf("SRAM[4] = %#x", got)
	}
}

func TestRunRequiresPower(t *testing.T) {
	d := mustDevice(t, "MSP432P401", "p")
	if _, err := d.Run(10); err == nil {
		t.Fatal("Run on unpowered device accepted")
	}
}

func TestFlashNotWritableAtRuntime(t *testing.T) {
	d := mustDevice(t, "MSP432P401", "w")
	prog, err := asm.Assemble(`
        movi r1, #0x100       ; flash address
        movi r2, #1
        str  r2, [r1, #0]
        halt
`, FlashBase)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	if _, err := d.PowerOn(25); err != nil {
		t.Fatal(err)
	}
	reason, err := d.Run(100)
	if reason != cpu.StopFault || err == nil {
		t.Fatalf("reason=%v err=%v", reason, err)
	}
	if !strings.Contains(err.Error(), "flash") {
		t.Errorf("fault message: %v", err)
	}
}

func TestBusFaultOutsideMap(t *testing.T) {
	d := mustDevice(t, "MSP432P401", "bf")
	prog, _ := asm.Assemble(`
        movi r1, #0
        movt r1, #0x4000      ; unmapped peripheral space
        ldr  r2, [r1, #0]
        halt
`, FlashBase)
	if err := d.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	if _, err := d.PowerOn(25); err != nil {
		t.Fatal(err)
	}
	reason, err := d.Run(100)
	if reason != cpu.StopFault || err == nil {
		t.Fatalf("reason=%v err=%v", reason, err)
	}
}

func TestLoadProgramValidation(t *testing.T) {
	d := mustDevice(t, "MSP432P401", "lv")
	if err := d.LoadProgram(&asm.Program{Origin: 0x1000}); err == nil {
		t.Error("wrong-origin program accepted")
	}
	big := &asm.Program{Origin: FlashBase, Image: make([]byte, d.Flash.Bytes()+1)}
	if err := d.LoadProgram(big); err == nil {
		t.Error("oversized image accepted")
	}
	rpi := mustDevice(t, "BCM2837", "r", WithSRAMLimit(4<<10))
	if err := rpi.LoadProgram(&asm.Program{Origin: FlashBase}); err == nil {
		t.Error("flashless device accepted a program")
	}
}

func TestRegulatorBypassRequired(t *testing.T) {
	// §7.2: the BCM2837's core rail is regulated — direct high-voltage
	// stress must be refused, the bypass path must work.
	d := mustDevice(t, "BCM2837", "rb", WithSRAMLimit(4<<10))
	if _, err := d.PowerOn(25); err != nil {
		t.Fatal(err)
	}
	acc := d.Model.Accelerated()
	if err := d.Stress(acc, 1); err == nil {
		t.Fatal("regulated device accepted direct overvoltage")
	}
	if err := d.StressBypassed(acc, 1); err != nil {
		t.Fatalf("bypassed stress failed: %v", err)
	}
	// Nominal-voltage stress does not need the bypass.
	if err := d.Stress(d.Model.Nominal(), 1); err != nil {
		t.Fatalf("nominal stress refused: %v", err)
	}
}

func TestTable4BitRatesEmerge(t *testing.T) {
	// End-to-end: encode a random payload on each Table 4 device at its
	// own operating point and check the achieved bit rate is within
	// ±1.5 pp of the paper's (acceptance criterion 2 of DESIGN.md).
	for _, m := range Table4Models() {
		d := mustDevice(t, m.Name, "t4", WithSRAMLimit(8<<10))
		if _, err := d.PowerOn(25); err != nil {
			t.Fatal(err)
		}
		payload := make([]byte, d.SRAM.Bytes())
		for i := range payload {
			payload[i] = byte(i*31 + 7)
		}
		if err := d.SRAM.Write(payload); err != nil {
			t.Fatal(err)
		}
		if err := d.StressBypassed(m.Accelerated(), m.EncodingHours); err != nil {
			t.Fatal(err)
		}
		maj, err := d.SRAM.CaptureMajority(5, 25)
		if err != nil {
			t.Fatal(err)
		}
		inv := make([]byte, len(maj))
		for i, b := range maj {
			inv[i] = ^b
		}
		rate := 1 - stats.BitErrorRate(inv, payload)
		if math.Abs(rate-m.TargetBitRate) > 0.015 {
			t.Errorf("%s: bit rate %.4f, paper %.4f", m.Name, rate, m.TargetBitRate)
		}
	}
}
