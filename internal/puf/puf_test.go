package puf

import (
	"testing"

	"invisiblebits/internal/device"
)

func newDev(t *testing.T, serial string) *device.Device {
	t.Helper()
	m, err := device.ByName("ATSAML11E16A")
	if err != nil {
		t.Fatal(err)
	}
	d, err := device.New(m, serial, device.WithSRAMLimit(4<<10))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestEnrollAuthenticateSameDevice(t *testing.T) {
	dev := newDev(t, "puf-1")
	fp, err := Enroll(dev, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fp.Authenticate(dev, DefaultThreshold)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Match {
		t.Fatalf("same device rejected: distance %v", res.Distance)
	}
	if res.Distance > 0.05 {
		t.Errorf("re-measurement distance %v, want ≲0.03", res.Distance)
	}
}

func TestAuthenticateRejectsStranger(t *testing.T) {
	victim := newDev(t, "puf-2")
	stranger := newDev(t, "puf-3")
	fp, err := Enroll(victim, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fp.Authenticate(stranger, DefaultThreshold)
	if err != nil {
		t.Fatal(err)
	}
	if res.Match {
		t.Fatalf("stranger accepted at distance %v", res.Distance)
	}
	if res.Distance < 0.4 {
		t.Errorf("stranger distance %v, want ≈0.5", res.Distance)
	}
}

func TestEnrollValidation(t *testing.T) {
	dev := newDev(t, "puf-4")
	if _, err := Enroll(dev, 4); err == nil {
		t.Error("even capture count accepted")
	}
	fp, err := Enroll(dev, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fp.Authenticate(dev, 0); err == nil {
		t.Error("zero threshold accepted")
	}
	if _, err := fp.Authenticate(dev, 0.6); err == nil {
		t.Error("threshold above 0.5 accepted")
	}
}

func TestDoSAttackBreaksAuthentication(t *testing.T) {
	dev := newDev(t, "puf-5")
	fp, err := Enroll(dev, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Sanity: authenticates before the attack.
	pre, err := fp.Authenticate(dev, DefaultThreshold)
	if err != nil {
		t.Fatal(err)
	}
	if !pre.Match {
		t.Fatal("precondition failed")
	}
	if err := DoSAttack(dev, dev.Model.Accelerated(), 6); err != nil {
		t.Fatal(err)
	}
	post, err := fp.Authenticate(dev, DefaultThreshold)
	if err != nil {
		t.Fatal(err)
	}
	if post.Match {
		t.Fatalf("device still authenticates after DoS (distance %v)", post.Distance)
	}
	if post.Distance <= pre.Distance {
		t.Errorf("DoS did not increase distance: %v -> %v", pre.Distance, post.Distance)
	}
}

func TestCloneOntoPassesAuthentication(t *testing.T) {
	victim := newDev(t, "puf-6")
	blank := newDev(t, "puf-7")
	fp, err := Enroll(victim, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Blank device is rejected before the attack.
	pre, err := fp.Authenticate(blank, DefaultThreshold)
	if err != nil {
		t.Fatal(err)
	}
	if pre.Match {
		t.Fatal("blank device already matched")
	}
	if err := CloneOnto(blank, fp, blank.Model.Accelerated(), blank.Model.EncodingHours); err != nil {
		t.Fatal(err)
	}
	post, err := fp.Authenticate(blank, DefaultThreshold)
	if err != nil {
		t.Fatal(err)
	}
	if !post.Match {
		t.Fatalf("clone rejected at distance %v", post.Distance)
	}
	// The clone's response still looks statistically healthy — the attack
	// is invisible to entropy checks.
	cloneFP, err := Enroll(blank, 5)
	if err != nil {
		t.Fatal(err)
	}
	if h := cloneFP.ResponseEntropy(); h < 7.5 {
		t.Errorf("clone response entropy %v — detectable, unexpectedly", h)
	}
}

func TestCloneOntoSizeCheck(t *testing.T) {
	victim := newDev(t, "puf-8")
	fp, err := Enroll(victim, 3)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := device.ByName("ATSAML11E16A")
	small, err := device.New(m, "tiny", device.WithSRAMLimit(1<<10))
	if err != nil {
		t.Fatal(err)
	}
	if err := CloneOnto(small, fp, m.Accelerated(), 1); err == nil {
		t.Error("undersized target accepted")
	}
}
