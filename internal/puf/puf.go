// Package puf implements SRAM physical-unclonable-function primitives on
// top of the simulated arrays, plus the two aging attacks that footnote 2
// of the Invisible Bits paper warns about: "modest aging has been used as
// a denial-of-service attack on SRAM PUFs … the results of our
// extreme/controlled aging suggest that it is possible to clone SRAM
// PUFs."
//
// The PUF here is the classic power-on-state fingerprint (Holcomb et al.,
// cited by the paper as [17]): enroll a majority-voted reference,
// authenticate by fractional Hamming distance. Directed aging breaks both
// directions of its security argument:
//
//   - DoS: holding a device's own power-on state under stress pushes
//     every cell toward flipping; the marginal cells the fingerprint's
//     noise budget relies on flip first, driving the distance past the
//     matching threshold.
//   - Cloning: holding the *complement* of a victim's fingerprint biases
//     a blank device's power-on state toward that fingerprint.
package puf

import (
	"errors"
	"fmt"

	"invisiblebits/internal/analog"
	"invisiblebits/internal/device"
	"invisiblebits/internal/stats"
)

// DefaultThreshold is a typical SRAM-PUF matching threshold: fractional
// Hamming distance below it authenticates. Clean re-measurements sit
// around 1–3 %; unrelated devices around 50 %.
const DefaultThreshold = 0.15

// Fingerprint is an enrolled PUF reference.
type Fingerprint struct {
	DeviceID string
	Captures int
	Bits     []byte
}

// Enroll captures a majority-voted power-on fingerprint.
func Enroll(dev *device.Device, captures int) (*Fingerprint, error) {
	if captures < 1 || captures%2 == 0 {
		return nil, fmt.Errorf("puf: enrollment needs an odd capture count, got %d", captures)
	}
	bits, err := dev.SRAM.CaptureMajority(captures, 25)
	if err != nil {
		return nil, err
	}
	return &Fingerprint{DeviceID: dev.DeviceID(), Captures: captures, Bits: bits}, nil
}

// AuthResult reports an authentication attempt.
type AuthResult struct {
	Distance  float64
	Threshold float64
	Match     bool
}

// Authenticate re-measures the device and compares against the reference.
func (f *Fingerprint) Authenticate(dev *device.Device, threshold float64) (AuthResult, error) {
	if threshold <= 0 || threshold >= 0.5 {
		return AuthResult{}, errors.New("puf: threshold must be in (0, 0.5)")
	}
	probe, err := dev.SRAM.CaptureMajority(f.Captures, 25)
	if err != nil {
		return AuthResult{}, err
	}
	if len(probe) != len(f.Bits) {
		return AuthResult{}, errors.New("puf: device size does not match enrollment")
	}
	d := stats.BitErrorRate(probe, f.Bits)
	return AuthResult{Distance: d, Threshold: threshold, Match: d < threshold}, nil
}

// DoSAttack ages the victim with its own power-on state for hours at the
// given conditions (the Roelke & Stan attack the paper cites as [37]).
// Holding the power-on state stresses every cell toward its complement;
// marginal cells flip, inflating the authentication distance.
func DoSAttack(dev *device.Device, cond analog.Conditions, hours float64) error {
	snap, err := dev.SRAM.PowerCycle(25)
	if err != nil {
		return err
	}
	if err := dev.SRAM.Write(snap); err != nil {
		return err
	}
	return dev.SRAM.Stress(cond, hours)
}

// CloneOnto drives target's power-on state toward the victim fingerprint
// by holding its complement under accelerated stress — the footnote 2
// cloning construction. target must be at least as large as the
// fingerprint.
func CloneOnto(target *device.Device, f *Fingerprint, cond analog.Conditions, hours float64) error {
	if target.SRAM.Bytes() < len(f.Bits) {
		return fmt.Errorf("puf: target SRAM %d bytes < fingerprint %d bytes",
			target.SRAM.Bytes(), len(f.Bits))
	}
	complement := make([]byte, len(f.Bits))
	for i, b := range f.Bits {
		complement[i] = ^b
	}
	if !target.SRAM.Powered() {
		if _, err := target.PowerOn(25); err != nil {
			return err
		}
	}
	if err := target.SRAM.WriteAt(0, complement); err != nil {
		return err
	}
	return target.SRAM.Stress(cond, hours)
}

// ResponseEntropy estimates the fingerprint's byte entropy — clean PUFs
// should be near 8 bits/byte; a cloned or heavily aged device still
// passes this test, which is exactly why aging attacks are insidious.
func (f *Fingerprint) ResponseEntropy() float64 { return stats.ByteEntropy(f.Bits) }
