package progen

import (
	"bytes"
	"testing"

	"invisiblebits/internal/cpu"
	"invisiblebits/internal/device"
	"invisiblebits/internal/rng"
)

func newDevice(t *testing.T) *device.Device {
	t.Helper()
	m, err := device.ByName("MSP432P401")
	if err != nil {
		t.Fatal(err)
	}
	d, err := device.New(m, "progen-test", device.WithSRAMLimit(4<<10))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// loadAndRun assembles src, loads it, powers on, and runs to busy-wait.
func loadAndRun(t *testing.T, d *device.Device, src string, maxSteps uint64) cpu.StopReason {
	t.Helper()
	prog, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	if _, err := d.PowerOn(25); err != nil {
		t.Fatal(err)
	}
	reason, err := d.Run(maxSteps)
	if err != nil {
		t.Fatal(err)
	}
	return reason
}

func TestWriterProgramWritesExactPayload(t *testing.T) {
	d := newDevice(t)
	payload := make([]byte, d.SRAM.Bytes())
	rng.NewSource(42).Bytes(payload)

	src, err := WriterProgram(payload)
	if err != nil {
		t.Fatal(err)
	}
	reason := loadAndRun(t, d, src, 10_000_000)
	if reason != cpu.StopBusyWait {
		t.Fatalf("stop reason = %v, want busy-wait", reason)
	}
	mem, err := d.ReadSRAM()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mem, payload) {
		t.Fatal("SRAM contents differ from payload after writer ran")
	}
}

func TestWriterProgramPartialPayload(t *testing.T) {
	// A payload smaller than SRAM writes only its own extent.
	d := newDevice(t)
	payload := []byte{0xDE, 0xAD, 0xBE, 0xEF, 0x01, 0x02, 0x03, 0x04}
	src, err := WriterProgram(payload)
	if err != nil {
		t.Fatal(err)
	}
	if reason := loadAndRun(t, d, src, 100000); reason != cpu.StopBusyWait {
		t.Fatalf("reason = %v", reason)
	}
	mem, _ := d.ReadSRAM()
	if !bytes.Equal(mem[:8], payload) {
		t.Fatalf("prefix = % x", mem[:8])
	}
}

func TestWriterProgramValidation(t *testing.T) {
	if _, err := WriterProgram(nil); err == nil {
		t.Error("empty payload accepted")
	}
	if _, err := WriterProgram([]byte{1, 2, 3}); err == nil {
		t.Error("unaligned payload accepted")
	}
}

func TestRetainerProgramDoesNotTouchSRAM(t *testing.T) {
	d := newDevice(t)
	prog, err := Assemble(RetainerProgram())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	snap, err := d.PowerOn(25)
	if err != nil {
		t.Fatal(err)
	}
	reason, err := d.Run(1000)
	if err != nil {
		t.Fatal(err)
	}
	if reason != cpu.StopBusyWait {
		t.Fatalf("reason = %v", reason)
	}
	mem, _ := d.ReadSRAM()
	if !bytes.Equal(mem, snap) {
		t.Fatal("retainer modified the power-on state")
	}
}

func TestCamouflageProgramRuns(t *testing.T) {
	d := newDevice(t)
	prog, err := Assemble(CamouflageProgram())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	if _, err := d.PowerOn(25); err != nil {
		t.Fatal(err)
	}
	reason, err := d.Run(5000)
	if err != nil {
		t.Fatal(err)
	}
	if reason != cpu.StopStepLimit {
		t.Fatalf("camouflage should run forever; got %v", reason)
	}
	// It must have published ticks into SRAM (functional device).
	mem, _ := d.ReadSRAM()
	if mem[0] == 0 && mem[1] == 0 && mem[2] == 0 && mem[3] == 0 {
		t.Error("camouflage never wrote its tick counter")
	}
}

func TestWorkloadProgramMatchesSoftwareLFSR(t *testing.T) {
	// The assembly LFSR must produce exactly the same stream as the Go
	// reference (internal/rng.LFSR32 seeded with 1).
	d := newDevice(t)
	src, err := WorkloadProgram(d.SRAM.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	if _, err := d.PowerOn(25); err != nil {
		t.Fatal(err)
	}
	// Enough steps for at least one full SRAM sweep (7 instr per word).
	words := d.SRAM.Bytes() / 4
	if reason, err := d.Run(uint64(words*8 + 100)); err != nil || reason != cpu.StopStepLimit {
		t.Fatalf("reason=%v err=%v", reason, err)
	}
	mem, _ := d.ReadSRAM()
	ref := rng.NewLFSR32(1)
	for i := 0; i < 16; i++ {
		want := ref.Next()
		got := uint32(mem[4*i]) | uint32(mem[4*i+1])<<8 |
			uint32(mem[4*i+2])<<16 | uint32(mem[4*i+3])<<24
		if got != want {
			t.Fatalf("word %d = %#x, want %#x", i, got, want)
		}
	}
}

func TestWorkloadProgramValidation(t *testing.T) {
	if _, err := WorkloadProgram(0); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := WorkloadProgram(5); err == nil {
		t.Error("unaligned size accepted")
	}
}

func TestWriterProgramFitsInFlash(t *testing.T) {
	// A full 64 KB payload writer must fit in the MSP432's 256 KB flash.
	m, _ := device.ByName("MSP432P401")
	d, err := device.New(m, "full")
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, d.SRAM.Bytes())
	rng.NewSource(1).Bytes(payload)
	src, err := WriterProgram(payload)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Image) > m.FlashBytes {
		t.Fatalf("writer image %d bytes exceeds flash %d", len(prog.Image), m.FlashBytes)
	}
	if err := d.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWriterProgramGeneration64KB(b *testing.B) {
	payload := make([]byte, 64<<10)
	rng.NewSource(1).Bytes(payload)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := WriterProgram(payload); err != nil {
			b.Fatal(err)
		}
	}
}
