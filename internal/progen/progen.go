// Package progen generates the IB32 assembly programs Invisible Bits
// loads onto target devices. It reproduces the paper's tooling:
//
//   - WriterProgram — "a tool that takes a payload expressed as a binary
//     file, and returns an assembly program that writes that payload to
//     the SRAM. After the program initializes SRAM's state, it busy waits
//     in an infinite loop. The instructions ... run from non-volatile
//     memory on the device, i.e., not the SRAM." (§4.2)
//   - RetainerProgram — the receiver's "program crafted to retain SRAM's
//     power-on state ... a program that boots to an infinite loop, that
//     runs entirely out of Flash memory" (§4.3).
//   - CamouflageProgram — the innocuous firmware loaded after encoding
//     ("the device is removed from the thermal chamber, and a camouflage
//     program is loaded onto the device", §4.2).
//   - WorkloadProgram — the §5.1.4 stress firmware: an in-assembly Galois
//     LFSR that continuously fills SRAM with pseudo-random words.
package progen

import (
	"fmt"
	"strings"

	"invisiblebits/internal/asm"
	"invisiblebits/internal/device"
)

// WriterProgram emits an assembly program that copies payload into SRAM
// at SRAMBase and then busy-waits. The payload is embedded in the
// program's flash image as .word data. Payload length must be a multiple
// of 4 (the device word size); callers pad with zeros if needed.
func WriterProgram(payload []byte) (string, error) {
	if len(payload) == 0 {
		return "", fmt.Errorf("progen: empty payload")
	}
	if len(payload)%4 != 0 {
		return "", fmt.Errorf("progen: payload length %d not word-aligned", len(payload))
	}
	var sb strings.Builder
	sb.WriteString("; Invisible Bits payload writer (auto-generated)\n")
	sb.WriteString("; copies the embedded payload into SRAM, then busy-waits (§4.2)\n")
	fmt.Fprintf(&sb, `
        la   r1, payload       ; source (flash)
        la   r3, payload_end
        movi r2, #0x0000       ; destination (SRAM base)
        movt r2, #0x%04X
copy:   cmp  r1, r3
        beq  done
        ldr  r4, [r1, #0]
        str  r4, [r2, #0]
        addi r1, r1, #4
        addi r2, r2, #4
        b    copy
done:
wait:   b    wait
payload:
`, device.SRAMBase>>16)
	writeWords(&sb, payload)
	sb.WriteString("payload_end:\n")
	return sb.String(), nil
}

func writeWords(sb *strings.Builder, payload []byte) {
	const perLine = 8
	for i := 0; i < len(payload); i += 4 * perLine {
		sb.WriteString("        .word ")
		for j := 0; j < perLine && i+4*j < len(payload); j++ {
			if j > 0 {
				sb.WriteString(", ")
			}
			off := i + 4*j
			w := uint32(payload[off]) | uint32(payload[off+1])<<8 |
				uint32(payload[off+2])<<16 | uint32(payload[off+3])<<24
			fmt.Fprintf(sb, "0x%08X", w)
		}
		sb.WriteByte('\n')
	}
}

// RetainerProgram returns firmware that never touches SRAM, preserving
// the power-on state for debugger readout (§4.3).
func RetainerProgram() string {
	return `; Invisible Bits power-on state retainer (§4.3)
; boots straight into an infinite loop; never reads or writes SRAM
wait:   b    wait
`
}

// CamouflageProgram returns a plausible-looking application: a duty-cycle
// counter that keeps a few loop variables in SRAM. It makes the device
// look like an ordinary product and demonstrates that ordinary firmware
// activity coexists with the analog-domain message (digital plausible
// deniability + erase/write tolerance, §1).
func CamouflageProgram() string {
	return fmt.Sprintf(`; camouflage firmware: periodic activity counter
        movi r1, #0x0000       ; SRAM scratch area
        movt r1, #0x%04X
        movi r2, #0            ; tick counter
        movi r3, #100          ; duty period
        movi r6, #0
loop:   addi r2, r2, #1
        str  r2, [r1, #0]      ; publish tick
        cmp  r2, r3
        blt  loop
        str  r6, [r1, #4]      ; roll over; blink state
        movi r2, #0
        b    loop
`, device.SRAMBase>>16)
}

// WorkloadProgram returns the §5.1.4 normal-operation firmware: a 32-bit
// Galois LFSR (taps 0xA3000000, matching internal/rng.LFSR32) that
// streams pseudo-random words across the whole SRAM forever.
func WorkloadProgram(sramBytes int) (string, error) {
	if sramBytes <= 0 || sramBytes%4 != 0 {
		return "", fmt.Errorf("progen: bad SRAM size %d", sramBytes)
	}
	end := uint32(device.SRAMBase) + uint32(sramBytes)
	return fmt.Sprintf(`; normal-operation workload (§5.1.4): LFSR writes over all of SRAM
        movi r1, #1            ; lfsr state
        movi r5, #1            ; constant 1
        movi r6, #0x0000       ; taps 0xA3000000
        movt r6, #0xA300
outer:  movi r2, #0x0000       ; dst = SRAM base
        movt r2, #0x%04X
        movi r3, #0x%04X       ; dst end
        movt r3, #0x%04X
fill:   and  r7, r1, r5        ; lsb
        lsr  r1, r1, r5        ; state >>= 1
        cmp  r7, r5
        bne  nofb
        xor  r1, r1, r6        ; state ^= taps
nofb:   str  r1, [r2, #0]
        addi r2, r2, #4
        cmp  r2, r3
        bne  fill
        b    outer
`, device.SRAMBase>>16, end&0xFFFF, end>>16), nil
}

// Assemble is a convenience that assembles generated source at the flash
// base.
func Assemble(source string) (*asm.Program, error) {
	return asm.Assemble(source, device.FlashBase)
}
