package asm

import (
	"fmt"
	"strconv"
	"strings"

	"invisiblebits/internal/isa"
)

var mnemonicOps = map[string]isa.Opcode{
	"nop": isa.OpNOP, "halt": isa.OpHALT, "movi": isa.OpMOVI,
	"movt": isa.OpMOVT, "mov": isa.OpMOV, "add": isa.OpADD,
	"sub": isa.OpSUB, "and": isa.OpAND, "orr": isa.OpORR,
	"xor": isa.OpXOR, "lsl": isa.OpLSL, "lsr": isa.OpLSR,
	"addi": isa.OpADDI, "ldr": isa.OpLDR, "str": isa.OpSTR,
	"ldrb": isa.OpLDRB, "strb": isa.OpSTRB, "cmp": isa.OpCMP,
	"b": isa.OpB, "beq": isa.OpBEQ, "bne": isa.OpBNE,
	"blt": isa.OpBLT, "bge": isa.OpBGE, "bl": isa.OpBL, "ret": isa.OpRET,
}

func parseReg(tok string, line int) (uint8, error) {
	t := strings.ToLower(strings.TrimSpace(tok))
	if !strings.HasPrefix(t, "r") {
		return 0, errf(line, "expected register, got %q", tok)
	}
	n, err := strconv.Atoi(t[1:])
	if err != nil || n < 0 || n >= isa.NumRegisters {
		return 0, errf(line, "bad register %q", tok)
	}
	return uint8(n), nil
}

// parseNumber accepts decimal, hex (0x), binary (0b), optional leading '#'
// and sign, and character literals 'c'.
func parseNumber(tok string, line int) (int64, error) {
	t := strings.TrimSpace(tok)
	t = strings.TrimPrefix(t, "#")
	if len(t) >= 3 && t[0] == '\'' && t[len(t)-1] == '\'' {
		un, err := strconv.Unquote(t)
		if err != nil || len(un) != 1 {
			return 0, errf(line, "bad character literal %q", tok)
		}
		return int64(un[0]), nil
	}
	neg := false
	if strings.HasPrefix(t, "-") {
		neg, t = true, t[1:]
	} else if strings.HasPrefix(t, "+") {
		t = t[1:]
	}
	base := 10
	switch {
	case strings.HasPrefix(strings.ToLower(t), "0x"):
		base, t = 16, t[2:]
	case strings.HasPrefix(strings.ToLower(t), "0b"):
		base, t = 2, t[2:]
	}
	v, err := strconv.ParseUint(t, base, 64)
	if err != nil {
		return 0, errf(line, "bad number %q", tok)
	}
	n := int64(v)
	if neg {
		n = -n
	}
	return n, nil
}

// resolveValue resolves a token that may be a label or a number to a
// 32-bit value.
func resolveValue(tok string, symbols map[string]uint32, line int) (uint32, error) {
	t := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(tok), "#"))
	if addr, ok := symbols[t]; ok {
		return addr, nil
	}
	n, err := parseNumber(tok, line)
	if err != nil {
		return 0, errf(line, "unknown symbol or bad number %q", tok)
	}
	return uint32(n), nil
}

// parseMem parses "[rN, #off]" or "[rN]".
func parseMem(tok string, line int) (uint8, int32, error) {
	t := strings.TrimSpace(tok)
	if !strings.HasPrefix(t, "[") || !strings.HasSuffix(t, "]") {
		return 0, 0, errf(line, "expected memory operand, got %q", tok)
	}
	inner := strings.TrimSpace(t[1 : len(t)-1])
	parts := strings.SplitN(inner, ",", 2)
	reg, err := parseReg(parts[0], line)
	if err != nil {
		return 0, 0, err
	}
	var off int64
	if len(parts) == 2 {
		off, err = parseNumber(parts[1], line)
		if err != nil {
			return 0, 0, err
		}
	}
	return reg, int32(off), nil
}

func parseInstruction(mnem string, args []string, addr uint32,
	symbols map[string]uint32, line int) (isa.Instruction, error) {
	op, ok := mnemonicOps[mnem]
	if !ok {
		return isa.Instruction{}, errf(line, "unknown mnemonic %q", mnem)
	}
	ins := isa.Instruction{Op: op}
	need := func(n int) error {
		if len(args) != n {
			return errf(line, "%s expects %d operands, got %d", mnem, n, len(args))
		}
		return nil
	}
	var err error
	switch op {
	case isa.OpNOP, isa.OpHALT, isa.OpRET:
		return ins, need(0)

	case isa.OpMOVI, isa.OpMOVT:
		if err = need(2); err != nil {
			return ins, err
		}
		if ins.Rd, err = parseReg(args[0], line); err != nil {
			return ins, err
		}
		n, err := parseNumber(args[1], line)
		if err != nil {
			return ins, err
		}
		ins.Imm = int32(n)
		return ins, nil

	case isa.OpMOV:
		if err = need(2); err != nil {
			return ins, err
		}
		if ins.Rd, err = parseReg(args[0], line); err != nil {
			return ins, err
		}
		ins.Rs, err = parseReg(args[1], line)
		return ins, err

	case isa.OpADD, isa.OpSUB, isa.OpAND, isa.OpORR, isa.OpXOR, isa.OpLSL, isa.OpLSR:
		if err = need(3); err != nil {
			return ins, err
		}
		if ins.Rd, err = parseReg(args[0], line); err != nil {
			return ins, err
		}
		if ins.Rs, err = parseReg(args[1], line); err != nil {
			return ins, err
		}
		ins.Rt, err = parseReg(args[2], line)
		return ins, err

	case isa.OpADDI:
		if err = need(3); err != nil {
			return ins, err
		}
		if ins.Rd, err = parseReg(args[0], line); err != nil {
			return ins, err
		}
		if ins.Rs, err = parseReg(args[1], line); err != nil {
			return ins, err
		}
		n, err := parseNumber(args[2], line)
		if err != nil {
			return ins, err
		}
		ins.Imm = int32(n)
		return ins, nil

	case isa.OpLDR, isa.OpLDRB:
		if err = need(2); err != nil {
			return ins, err
		}
		if ins.Rd, err = parseReg(args[0], line); err != nil {
			return ins, err
		}
		ins.Rs, ins.Imm, err = parseMem(args[1], line)
		return ins, err

	case isa.OpSTR, isa.OpSTRB:
		if err = need(2); err != nil {
			return ins, err
		}
		if ins.Rt, err = parseReg(args[0], line); err != nil {
			return ins, err
		}
		ins.Rs, ins.Imm, err = parseMem(args[1], line)
		return ins, err

	case isa.OpCMP:
		if err = need(2); err != nil {
			return ins, err
		}
		if ins.Rs, err = parseReg(args[0], line); err != nil {
			return ins, err
		}
		ins.Rt, err = parseReg(args[1], line)
		return ins, err

	case isa.OpB, isa.OpBEQ, isa.OpBNE, isa.OpBLT, isa.OpBGE, isa.OpBL:
		if err = need(1); err != nil {
			return ins, err
		}
		target, ok := symbols[strings.TrimSpace(args[0])]
		if !ok {
			n, err := parseNumber(args[0], line)
			if err != nil {
				return ins, errf(line, "unknown branch target %q", args[0])
			}
			ins.Imm = int32(n) // raw word offset
			return ins, nil
		}
		delta := int64(target) - int64(addr) - 4
		if delta%4 != 0 {
			return ins, errf(line, "misaligned branch target %q", args[0])
		}
		ins.Imm = int32(delta / 4)
		return ins, nil
	}
	return ins, errf(line, "unhandled mnemonic %q", mnem)
}

// dataSize computes the byte size of a data directive in pass 1 and
// returns pending .word tokens (labels resolve in pass 2) or final bytes.
func dataSize(mnem, rest string, pc uint32, line int) (size uint32, words []string, data []byte, err error) {
	switch mnem {
	case ".word":
		words = splitArgs(rest)
		if len(words) == 0 {
			return 0, nil, nil, errf(line, ".word needs at least one value")
		}
		return uint32(4 * len(words)), words, nil, nil
	case ".byte":
		toks := splitArgs(rest)
		if len(toks) == 0 {
			return 0, nil, nil, errf(line, ".byte needs at least one value")
		}
		for _, tk := range toks {
			n, err := parseNumber(tk, line)
			if err != nil {
				return 0, nil, nil, err
			}
			if n < -128 || n > 255 {
				return 0, nil, nil, errf(line, "byte value %d out of range", n)
			}
			data = append(data, byte(n))
		}
		return uint32(len(data)), nil, data, nil
	case ".ascii", ".asciz":
		s, err := strconv.Unquote(strings.TrimSpace(rest))
		if err != nil {
			return 0, nil, nil, errf(line, "bad string %q", rest)
		}
		data = []byte(s)
		if mnem == ".asciz" {
			data = append(data, 0)
		}
		return uint32(len(data)), nil, data, nil
	case ".align":
		n, err := parseNumber(rest, line)
		if err != nil || n <= 0 || (n&(n-1)) != 0 {
			return 0, nil, nil, errf(line, ".align needs a positive power of two")
		}
		pad := (uint32(n) - pc%uint32(n)) % uint32(n)
		return pad, nil, make([]byte, pad), nil
	case ".space":
		n, err := parseNumber(rest, line)
		if err != nil || n < 0 {
			return 0, nil, nil, errf(line, ".space needs a non-negative size")
		}
		return uint32(n), nil, make([]byte, n), nil
	default:
		return 0, nil, nil, errf(line, "unknown directive %q", mnem)
	}
}

// Disassemble renders an image back to one instruction per line, best
// effort: undecodable words render as .word literals.
func Disassemble(image []byte, origin uint32) string {
	var sb strings.Builder
	for i := 0; i+4 <= len(image); i += 4 {
		w := uint32(image[i]) | uint32(image[i+1])<<8 |
			uint32(image[i+2])<<16 | uint32(image[i+3])<<24
		fmt.Fprintf(&sb, "%08x:  ", origin+uint32(i))
		if ins, err := isa.Decode(w); err == nil {
			sb.WriteString(ins.String())
		} else {
			fmt.Fprintf(&sb, ".word 0x%08x", w)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
