package asm

import (
	"strings"
	"testing"

	"invisiblebits/internal/isa"
)

func mustAssemble(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Assemble(src, 0)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func word(p *Program, i int) uint32 {
	off := i * 4
	return uint32(p.Image[off]) | uint32(p.Image[off+1])<<8 |
		uint32(p.Image[off+2])<<16 | uint32(p.Image[off+3])<<24
}

func TestAssembleBasicInstructions(t *testing.T) {
	p := mustAssemble(t, `
        movi r1, #0x1234
        movt r1, #0x2000
        add  r2, r1, r1
        nop
        halt
`)
	if len(p.Image) != 20 {
		t.Fatalf("image size = %d", len(p.Image))
	}
	ins, err := isa.Decode(word(p, 0))
	if err != nil {
		t.Fatal(err)
	}
	if ins.Op != isa.OpMOVI || ins.Rd != 1 || ins.Imm != 0x1234 {
		t.Errorf("first instruction = %v", ins)
	}
	ins, _ = isa.Decode(word(p, 4))
	if ins.Op != isa.OpHALT {
		t.Errorf("last instruction = %v", ins)
	}
}

func TestLabelsAndBranches(t *testing.T) {
	p := mustAssemble(t, `
start:  movi r0, #0
loop:   addi r0, r0, #1
        cmp  r0, r1
        bne  loop
        b    done
done:   halt
`)
	// bne loop: at address 12, target 4 → offset (4-12-4)/4 = -3.
	ins, _ := isa.Decode(word(p, 3))
	if ins.Op != isa.OpBNE || ins.Imm != -3 {
		t.Errorf("bne = %v", ins)
	}
	// b done: at address 16, target 20 → offset 0.
	ins, _ = isa.Decode(word(p, 4))
	if ins.Op != isa.OpB || ins.Imm != 0 {
		t.Errorf("b = %v", ins)
	}
	if p.Symbols["start"] != 0 || p.Symbols["loop"] != 4 || p.Symbols["done"] != 20 {
		t.Errorf("symbols = %v", p.Symbols)
	}
}

func TestBusyWaitSelfBranch(t *testing.T) {
	p := mustAssemble(t, "wait: b wait\n")
	ins, _ := isa.Decode(word(p, 0))
	if ins.Op != isa.OpB || ins.Imm != -1 {
		t.Errorf("self branch = %v, want offset -1", ins)
	}
}

func TestLAPseudoInstruction(t *testing.T) {
	p := mustAssemble(t, `
        la   r2, payload
        halt
payload:
        .word 0xdeadbeef
`)
	lo, _ := isa.Decode(word(p, 0))
	hi, _ := isa.Decode(word(p, 1))
	addr := p.Symbols["payload"]
	if lo.Op != isa.OpMOVI || uint32(lo.Imm) != addr&0xFFFF {
		t.Errorf("la low = %v", lo)
	}
	if hi.Op != isa.OpMOVT || uint32(hi.Imm) != addr>>16 {
		t.Errorf("la high = %v", hi)
	}
	if word(p, 3) != 0xdeadbeef {
		t.Errorf("payload word = %#x", word(p, 3))
	}
}

func TestDataDirectives(t *testing.T) {
	p := mustAssemble(t, `
        .word 1, 2, 0xFFFF0000
        .byte 1, 2, 255
        .ascii "hi"
        .asciz "x"
        .align 4
        .space 3
end:
`)
	if word(p, 0) != 1 || word(p, 1) != 2 || word(p, 2) != 0xFFFF0000 {
		t.Error("words wrong")
	}
	if p.Image[12] != 1 || p.Image[14] != 255 {
		t.Error("bytes wrong")
	}
	if string(p.Image[15:17]) != "hi" {
		t.Error("ascii wrong")
	}
	if string(p.Image[17:19]) != "x\x00" {
		t.Error("asciz wrong")
	}
	// After 19 bytes, .align 4 pads to 20, .space 3 → end at 23.
	if p.Symbols["end"] != 23 {
		t.Errorf("end = %d", p.Symbols["end"])
	}
}

func TestWordWithLabelReference(t *testing.T) {
	p := mustAssemble(t, `
        .word target
target: .word 42
`)
	if word(p, 0) != 4 {
		t.Errorf("label word = %d, want 4", word(p, 0))
	}
}

func TestMemoryOperands(t *testing.T) {
	p := mustAssemble(t, `
        ldr  r3, [r2]
        ldr  r4, [r2, #8]
        str  r3, [r1, #-4]
        strb r3, [r1, #1]
`)
	ins, _ := isa.Decode(word(p, 0))
	if ins.Op != isa.OpLDR || ins.Rd != 3 || ins.Rs != 2 || ins.Imm != 0 {
		t.Errorf("ldr[0] = %v", ins)
	}
	ins, _ = isa.Decode(word(p, 2))
	if ins.Op != isa.OpSTR || ins.Rt != 3 || ins.Rs != 1 || ins.Imm != -4 {
		t.Errorf("str = %v", ins)
	}
}

func TestCommentsAndCase(t *testing.T) {
	p := mustAssemble(t, `
        MOVI R1, #1   ; trailing comment
        nop           // c++ style
        nop           # shell style
`)
	if len(p.Image) != 12 {
		t.Fatalf("image size = %d", len(p.Image))
	}
}

func TestNumberFormats(t *testing.T) {
	p := mustAssemble(t, `
        movi r0, #10
        movi r1, #0x0A
        movi r2, #0b1010
        movi r3, 10
        addi r4, r4, #-10
        movi r5, #'A'
`)
	for i := 0; i < 4; i++ {
		ins, _ := isa.Decode(word(p, i))
		if ins.Imm != 10 {
			t.Errorf("instruction %d imm = %d", i, ins.Imm)
		}
	}
	ins, _ := isa.Decode(word(p, 4))
	if ins.Imm != -10 {
		t.Errorf("addi imm = %d", ins.Imm)
	}
	ins, _ = isa.Decode(word(p, 5))
	if ins.Imm != 'A' {
		t.Errorf("char imm = %d", ins.Imm)
	}
}

func TestOriginAffectsSymbols(t *testing.T) {
	p, err := Assemble("start: nop\n", 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	if p.Symbols["start"] != 0x1000 {
		t.Errorf("start = %#x", p.Symbols["start"])
	}
}

func TestAssemblyErrors(t *testing.T) {
	cases := map[string]string{
		"unknown mnemonic":  "frob r1, r2\n",
		"bad register":      "mov r1, r99\n",
		"missing operand":   "add r1, r2\n",
		"unknown target":    "b nowhere\n",
		"duplicate label":   "x: nop\nx: nop\n",
		"bad number":        "movi r1, #zzz\n",
		"imm out of range":  "movi r1, #0x10000\n",
		"bad directive":     ".frob 3\n",
		"byte range":        ".byte 256\n",
		"align not pow2":    ".align 3\n",
		"bad string":        ".ascii hello\n",
		"word no values":    ".word\n",
		"empty label chain": ":\n",
	}
	for name, src := range cases {
		if _, err := Assemble(src, 0); err == nil {
			t.Errorf("%s: assembled without error", name)
		} else if aerr, ok := err.(*Error); !ok || aerr.Line == 0 {
			t.Errorf("%s: error lacks line info: %v", name, err)
		}
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	src := `
        movi r1, #4660
        movt r1, #8192
        add  r2, r1, r1
loop:   b    loop
`
	p := mustAssemble(t, src)
	dis := Disassemble(p.Image, 0)
	for _, want := range []string{"movi r1, #4660", "movt r1, #8192", "add r2, r1, r1", "b -1"} {
		if !strings.Contains(dis, want) {
			t.Errorf("disassembly missing %q:\n%s", want, dis)
		}
	}
}

func TestDisassembleUndecodableWord(t *testing.T) {
	dis := Disassemble([]byte{0xFF, 0xFF, 0xFF, 0xFF}, 0)
	if !strings.Contains(dis, ".word 0xffffffff") {
		t.Errorf("disassembly = %q", dis)
	}
}

func BenchmarkAssemblePayloadWriterSized(b *testing.B) {
	var sb strings.Builder
	sb.WriteString("start: la r1, data\n")
	for i := 0; i < 1000; i++ {
		sb.WriteString("  ldr r2, [r1, #0]\n  str r2, [r1, #4]\n")
	}
	sb.WriteString("wait: b wait\ndata: .word 1,2,3,4\n")
	src := sb.String()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Assemble(src, 0); err != nil {
			b.Fatal(err)
		}
	}
}
