// Package asm is a two-pass assembler (and disassembler) for the IB32
// instruction set. It consumes the assembly text produced by
// internal/progen — the reproduction of the paper's payload-program
// generator (§4.2) — and emits the flash image the simulated CPU executes.
//
// # Syntax
//
//	; comment, # comment, // comment
//	label:            ; labels may share a line with an instruction
//	    movi  r1, #0x1234
//	    movt  r1, #0x2000
//	    la    r2, payload      ; pseudo: movi+movt of a label address
//	    ldr   r3, [r2, #4]
//	    str   r3, [r1, #0]
//	    addi  r2, r2, #4
//	    cmp   r2, r4
//	    bne   copy
//	wait:
//	    b     wait             ; busy wait (§4.2)
//	payload:
//	    .word 0xdeadbeef, 42
//	    .byte 1, 2, 3
//	    .ascii "hello"
//	    .align 4
//	    .space 16
//
// Numbers accept decimal, 0x hex, and 0b binary; '#' before immediates is
// optional. Mnemonics and registers are case-insensitive.
package asm

import (
	"fmt"
	"strings"

	"invisiblebits/internal/isa"
)

// Program is an assembled flash image.
type Program struct {
	// Image is the little-endian byte image, starting at Origin.
	Image []byte
	// Origin is the load address of Image[0].
	Origin uint32
	// Symbols maps labels to absolute addresses.
	Symbols map[string]uint32
}

// Error is an assembly diagnostic with source position.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

func errf(line int, format string, args ...any) *Error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// Assemble translates source into a Program loaded at origin.
func Assemble(source string, origin uint32) (*Program, error) {
	lines := strings.Split(source, "\n")

	type item struct {
		line  int
		kind  int // 0 instruction, 1 data
		mnem  string
		args  []string
		data  []byte // for data directives, resolved in pass 1 except .word labels
		words []string
		addr  uint32
	}
	const (
		kindIns  = 0
		kindData = 1
	)

	symbols := make(map[string]uint32)
	var items []item
	pc := origin

	// Pass 1: tokenize, record label addresses, compute sizes.
	for ln, raw := range lines {
		line := stripComment(raw)
		for {
			line = strings.TrimSpace(line)
			idx := strings.Index(line, ":")
			if idx < 0 || strings.ContainsAny(line[:idx], " \t\",") {
				break
			}
			label := strings.TrimSpace(line[:idx])
			if label == "" {
				return nil, errf(ln+1, "empty label")
			}
			if !validLabel(label) {
				return nil, errf(ln+1, "invalid label %q", label)
			}
			if _, dup := symbols[label]; dup {
				return nil, errf(ln+1, "duplicate label %q", label)
			}
			symbols[label] = pc
			line = line[idx+1:]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}

		mnem, rest := splitMnemonic(line)
		mnem = strings.ToLower(mnem)
		it := item{line: ln + 1, mnem: mnem, addr: pc}
		switch {
		case strings.HasPrefix(mnem, "."):
			it.kind = kindData
			size, words, data, err := dataSize(mnem, rest, pc, ln+1)
			if err != nil {
				return nil, err
			}
			it.words = words
			it.data = data
			pc += size
		case mnem == "la":
			// Pseudo-instruction: movi+movt, 8 bytes.
			it.kind = kindIns
			it.args = splitArgs(rest)
			pc += 8
		default:
			it.kind = kindIns
			it.args = splitArgs(rest)
			pc += 4
		}
		items = append(items, it)
	}

	// Pass 2: encode.
	image := make([]byte, 0, pc-origin)
	emit32 := func(w uint32) {
		image = append(image, byte(w), byte(w>>8), byte(w>>16), byte(w>>24))
	}
	for _, it := range items {
		// Pad to the item's address (alignment directives create gaps).
		for uint32(len(image))+origin < it.addr {
			image = append(image, 0)
		}
		switch {
		case it.kind == kindData && it.mnem == ".word":
			for _, w := range it.words {
				v, err := resolveValue(w, symbols, it.line)
				if err != nil {
					return nil, err
				}
				emit32(v)
			}
		case it.kind == kindData:
			image = append(image, it.data...)
		case it.mnem == "la":
			if len(it.args) != 2 {
				return nil, errf(it.line, "la needs rd, symbol")
			}
			rd, err := parseReg(it.args[0], it.line)
			if err != nil {
				return nil, err
			}
			v, err := resolveValue(it.args[1], symbols, it.line)
			if err != nil {
				return nil, err
			}
			lo := isa.Instruction{Op: isa.OpMOVI, Rd: rd, Imm: int32(v & 0xFFFF)}
			hi := isa.Instruction{Op: isa.OpMOVT, Rd: rd, Imm: int32(v >> 16)}
			for _, ins := range []isa.Instruction{lo, hi} {
				w, err := ins.Encode()
				if err != nil {
					return nil, errf(it.line, "%v", err)
				}
				emit32(w)
			}
		default:
			ins, err := parseInstruction(it.mnem, it.args, it.addr, symbols, it.line)
			if err != nil {
				return nil, err
			}
			w, err := ins.Encode()
			if err != nil {
				return nil, errf(it.line, "%v", err)
			}
			emit32(w)
		}
	}

	return &Program{Image: image, Origin: origin, Symbols: symbols}, nil
}

func stripComment(line string) string {
	for _, marker := range []string{";", "#!", "//"} {
		if i := strings.Index(line, marker); i >= 0 {
			line = line[:i]
		}
	}
	// '#' starts a comment only when not an immediate prefix (#5, #-2, #0x..).
	for i := 0; i < len(line); i++ {
		if line[i] != '#' {
			continue
		}
		rest := line[i+1:]
		if len(rest) > 0 && (rest[0] == '-' || rest[0] == '+' || rest[0] == '\'' ||
			(rest[0] >= '0' && rest[0] <= '9')) {
			continue
		}
		return line[:i]
	}
	return line
}

func validLabel(s string) bool {
	for i, r := range s {
		ok := r == '_' || r == '.' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return len(s) > 0
}

func splitMnemonic(line string) (string, string) {
	i := strings.IndexAny(line, " \t")
	if i < 0 {
		return line, ""
	}
	return line[:i], strings.TrimSpace(line[i+1:])
}

// splitArgs splits on commas outside brackets and strings.
func splitArgs(rest string) []string {
	if strings.TrimSpace(rest) == "" {
		return nil
	}
	var args []string
	depth := 0
	start := 0
	for i := 0; i < len(rest); i++ {
		switch rest[i] {
		case '[':
			depth++
		case ']':
			depth--
		case ',':
			if depth == 0 {
				args = append(args, strings.TrimSpace(rest[start:i]))
				start = i + 1
			}
		}
	}
	args = append(args, strings.TrimSpace(rest[start:]))
	return args
}
