package experiments

import (
	"fmt"

	"invisiblebits/internal/core"
	"invisiblebits/internal/ecc"
	"invisiblebits/internal/rng"
	"invisiblebits/internal/stats"
	"invisiblebits/internal/stegocrypt"
	"invisiblebits/internal/textplot"
)

func init() {
	register("abl-captures", "Ablation: majority-vote capture count", "§4.3", runAblCaptures)
	register("abl-eccorder", "Ablation: repetition∘Hamming vs Hamming∘repetition", "footnote 7", runAblECCOrder)
	register("abl-cipher", "Ablation: AES-CTR vs AES-CBC error propagation", "§4.1", runAblCipher)
	register("abl-soft", "Ablation: hard majority vs soft-decision decoding", "extension", runAblSoft)
}

// --- capture count --------------------------------------------------------------

// AblCapturesResult sweeps the §4.3 capture count.
type AblCapturesResult struct {
	Captures []int
	Errors   []float64
}

// ID implements Result.
func (r *AblCapturesResult) ID() string { return "abl-captures" }

// Summary implements Result.
func (r *AblCapturesResult) Summary() string {
	return fmt.Sprintf("channel error %.2f%%→%.2f%% from %d to %d captures — §4.3's 'five is sufficient' holds",
		100*r.Errors[0], 100*r.Errors[len(r.Errors)-1], r.Captures[0], r.Captures[len(r.Captures)-1])
}

// Render implements Result.
func (r *AblCapturesResult) Render() string {
	rows := make([][]string, len(r.Captures))
	for i := range r.Captures {
		rows[i] = []string{fmt.Sprintf("%d", r.Captures[i]), textplot.Percent(r.Errors[i])}
	}
	return "Ablation — majority-vote capture count (§4.3)\n\n" +
		textplot.Table([]string{"captures", "channel error"}, rows)
}

func runAblCaptures(cfg Config) (Result, error) {
	res := &AblCapturesResult{Captures: []int{1, 3, 5, 7, 9}}
	// One encode; re-sample with different capture counts.
	r, err := cfg.newRig("MSP432P401", "abl-cap")
	if err != nil {
		return nil, err
	}
	dev := r.Device()
	if _, err := dev.PowerOn(25); err != nil {
		return nil, err
	}
	payload := make([]byte, dev.SRAM.Bytes())
	rng.NewSource(0xAB1).Bytes(payload)
	if err := dev.SRAM.Write(payload); err != nil {
		return nil, err
	}
	if err := dev.Stress(dev.Model.Accelerated(), dev.Model.EncodingHours); err != nil {
		return nil, err
	}
	for _, n := range res.Captures {
		maj, err := dev.SRAM.CaptureMajority(n, 25)
		if err != nil {
			return nil, err
		}
		res.Errors = append(res.Errors, stats.BitErrorRate(invert(maj), payload))
		dev.PowerOff(true)
	}
	return res, nil
}

// --- ECC order ------------------------------------------------------------------

// AblECCOrderResult compares codec compositions on a synthetic channel.
type AblECCOrderResult struct {
	HamThenRep float64
	RepThenHam float64
}

// ID implements Result.
func (r *AblECCOrderResult) ID() string { return "abl-eccorder" }

// Summary implements Result.
func (r *AblECCOrderResult) Summary() string {
	return fmt.Sprintf("residuals %.4g%% vs %.4g%% — order immaterial at system level (footnote 7)",
		100*r.HamThenRep, 100*r.RepThenHam)
}

// Render implements Result.
func (r *AblECCOrderResult) Render() string {
	return "Ablation — ECC composition order on a 6.5% channel (footnote 7)\n\n" +
		textplot.Table([]string{"composition", "residual error"}, [][]string{
			{"hamming(7,4) outer, repetition(5) inner", textplot.Percent(r.HamThenRep)},
			{"repetition(5) outer, hamming(7,4) inner", textplot.Percent(r.RepThenHam)},
		})
}

func runAblECCOrder(Config) (Result, error) {
	measure := func(codec ecc.Codec, seed uint64) (float64, error) {
		msg := make([]byte, 4<<10)
		rng.NewSource(7).Bytes(msg)
		enc, err := codec.Encode(msg)
		if err != nil {
			return 0, err
		}
		src := rng.NewSource(seed)
		for i := 0; i < len(enc)*8; i++ {
			if src.Float64() < 0.065 {
				enc[i/8] ^= 1 << (i % 8)
			}
		}
		dec, err := codec.Decode(enc, len(msg))
		if err != nil {
			return 0, err
		}
		return stats.BitErrorRate(dec, msg), nil
	}
	rep, err := ecc.NewRepetition(5)
	if err != nil {
		return nil, err
	}
	a, err := measure(ecc.Composite{Outer: ecc.Hamming74{}, Inner: rep}, 8)
	if err != nil {
		return nil, err
	}
	b, err := measure(ecc.Composite{Outer: rep, Inner: ecc.Hamming74{}}, 9)
	if err != nil {
		return nil, err
	}
	return &AblECCOrderResult{HamThenRep: a, RepThenHam: b}, nil
}

// --- cipher choice ---------------------------------------------------------------

// AblCipherResult is the §4.1 CTR-vs-CBC comparison.
type AblCipherResult struct {
	ChannelBER float64
	CTRError   float64
	CBCError   float64
}

// ID implements Result.
func (r *AblCipherResult) ID() string { return "abl-cipher" }

// Summary implements Result.
func (r *AblCipherResult) Summary() string {
	return fmt.Sprintf("on a %.1f%% channel: CTR %.2f%% (neutral) vs CBC %.0f%% (%.0fx blow-up) — §4.1's stream-cipher mandate",
		100*r.ChannelBER, 100*r.CTRError, 100*r.CBCError, r.CBCError/r.ChannelBER)
}

// Render implements Result.
func (r *AblCipherResult) Render() string {
	return "Ablation — cipher error propagation (§4.1)\n\n" +
		textplot.Table([]string{"cipher", "plaintext error"}, [][]string{
			{"AES-CTR (stream)", textplot.Percent(r.CTRError)},
			{"AES-CBC (block-chained)", textplot.Percent(r.CBCError)},
		}) + fmt.Sprintf("\nchannel BER: %s\n", textplot.Percent(r.ChannelBER))
}

func runAblCipher(Config) (Result, error) {
	const channelBER = 0.008
	key := stegocrypt.KeyFromPassphrase("abl")
	msg := make([]byte, 32<<10)
	rng.NewSource(4).Bytes(msg)

	corrupt := func(ct []byte) []byte {
		src := rng.NewSource(5)
		out := make([]byte, len(ct))
		copy(out, ct)
		for i := 0; i < len(out)*8; i++ {
			if src.Float64() < channelBER {
				out[i/8] ^= 1 << (i % 8)
			}
		}
		return out
	}

	ctCTR, err := stegocrypt.StreamXOR(key, "dev", msg)
	if err != nil {
		return nil, err
	}
	ptCTR, err := stegocrypt.StreamXOR(key, "dev", corrupt(ctCTR))
	if err != nil {
		return nil, err
	}
	ctCBC, err := stegocrypt.EncryptCBC(key, "dev", msg)
	if err != nil {
		return nil, err
	}
	ptCBC, err := stegocrypt.DecryptCBC(key, "dev", corrupt(ctCBC), len(msg))
	if err != nil {
		return nil, err
	}
	return &AblCipherResult{
		ChannelBER: channelBER,
		CTRError:   stats.BitErrorRate(ptCTR, msg),
		CBCError:   stats.BitErrorRate(ptCBC, msg),
	}, nil
}

// --- soft decoding ---------------------------------------------------------------

// AblSoftResult compares hard and soft decoding on a weak encoding.
type AblSoftResult struct {
	HardError float64
	SoftError float64
}

// ID implements Result.
func (r *AblSoftResult) ID() string { return "abl-soft" }

// Summary implements Result.
func (r *AblSoftResult) Summary() string {
	return fmt.Sprintf("weak 2h/3-copy encoding: hard %.2f%% vs soft %.2f%% — small gain (error cells here are biased, not noisy)",
		100*r.HardError, 100*r.SoftError)
}

// Render implements Result.
func (r *AblSoftResult) Render() string {
	return "Ablation — hard majority vs soft-decision decoding (extension)\n\n" +
		textplot.Table([]string{"decoder", "residual error"}, [][]string{
			{"hard per-copy majority", textplot.Percent(r.HardError)},
			{"soft confidence combining", textplot.Percent(r.SoftError)},
		})
}

func runAblSoft(cfg Config) (Result, error) {
	r, err := cfg.newRig("MSP432P401", "abl-soft")
	if err != nil {
		return nil, err
	}
	rep, err := ecc.NewRepetition(3)
	if err != nil {
		return nil, err
	}
	opts := core.Options{Codec: rep, StressHours: 2}
	msg := make([]byte, 1<<10)
	rng.NewSource(88).Bytes(msg)
	rec, err := core.Encode(r, msg, opts)
	if err != nil {
		return nil, err
	}
	hard, err := core.Decode(r, rec, opts)
	if err != nil {
		return nil, err
	}
	softOpts := opts
	softOpts.Soft = true
	soft, err := core.Decode(r, rec, softOpts)
	if err != nil {
		return nil, err
	}
	return &AblSoftResult{
		HardError: stats.BitErrorRate(hard, msg),
		SoftError: stats.BitErrorRate(soft, msg),
	}, nil
}
