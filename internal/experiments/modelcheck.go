package experiments

import (
	"fmt"

	"invisiblebits/internal/rng"
	"invisiblebits/internal/spice"
	"invisiblebits/internal/textplot"
)

func init() {
	register("modelcheck", "Reduced-order cell model vs transistor-level transient", "DESIGN.md §1/§5", runModelCheck)
}

// ModelCheckResult validates the chain of trust: the array-scale
// simulator reduces each cell to sign(PMOS mismatch + aging); the
// transistor-level solver runs the actual power-on race. The two must
// agree on (a) the race winner for asymmetric cells and (b) the
// aging-induced flip direction.
type ModelCheckResult struct {
	CellsTested     int
	RaceAgreement   float64 // fraction of asymmetric cells where winner matches
	FlipAgreement   float64 // fraction of aged cells whose flip matches prediction
	MetastableSkips int     // near-symmetric cells excluded (noise-decided)
}

// ID implements Result.
func (r *ModelCheckResult) ID() string { return "modelcheck" }

// Summary implements Result.
func (r *ModelCheckResult) Summary() string {
	return fmt.Sprintf("transient solver agrees with reduced-order model on %.1f%% of races and %.1f%% of aging flips (%d cells)",
		100*r.RaceAgreement, 100*r.FlipAgreement, r.CellsTested)
}

// Render implements Result.
func (r *ModelCheckResult) Render() string {
	return "Model validation — transistor-level transient vs reduced-order array model\n\n" +
		textplot.Table([]string{"check", "agreement"}, [][]string{
			{"power-on race winner (|Δvth| > 5 mV)", fmt.Sprintf("%.2f%%", 100*r.RaceAgreement)},
			{"aging-induced flip direction", fmt.Sprintf("%.2f%%", 100*r.FlipAgreement)},
			{"metastable cells excluded", fmt.Sprintf("%d", r.MetastableSkips)},
		}) + fmt.Sprintf("\n%d cells sampled; the array model is the reduced form the paper itself uses (§2.1)\n", r.CellsTested)
}

func runModelCheck(Config) (Result, error) {
	src := rng.NewSource(0x5B1CE)
	res := &ModelCheckResult{}
	raceAgree, raceTotal := 0, 0
	flipAgree, flipTotal := 0, 0

	for i := 0; i < 40; i++ {
		cell := spice.NewCell()
		cell.M2.VthV += src.NormScaled(0, 0.03)
		cell.M4.VthV += src.NormScaled(0, 0.03)
		mismatch := cell.PMOSMismatchV()
		if mismatch > -0.005 && mismatch < 0.005 {
			res.MetastableSkips++
			continue
		}
		pre, err := cell.PowerOn(spice.DefaultRamp())
		if err != nil {
			return nil, err
		}
		raceTotal++
		if pre.State == (mismatch > 0) {
			raceAgree++
		}

		// Age the active PMOS past the mismatch and check the flip.
		shift := mismatch
		if shift < 0 {
			shift = -shift
		}
		cell.AgePMOS(pre.State, shift+0.02)
		post, err := cell.PowerOn(spice.DefaultRamp())
		if err != nil {
			return nil, err
		}
		flipTotal++
		if post.State == !pre.State {
			flipAgree++
		}
	}
	res.CellsTested = raceTotal
	if raceTotal > 0 {
		res.RaceAgreement = float64(raceAgree) / float64(raceTotal)
	}
	if flipTotal > 0 {
		res.FlipAgreement = float64(flipAgree) / float64(flipTotal)
	}
	return res, nil
}
