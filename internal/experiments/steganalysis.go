package experiments

import (
	"fmt"
	"strings"

	"invisiblebits/internal/imaging"
	"invisiblebits/internal/stats"
	"invisiblebits/internal/stegocrypt"
	"invisiblebits/internal/textplot"
)

func init() {
	register("fig11", "Hamming-weight density: none / plain / encrypted", "Fig. 11", runFig11)
	register("fig12", "Per-symbol Shannon entropy of power-on states", "Fig. 12", runFig12)
	register("tab5", "Moran's I and mean bias across 11 chips", "Table 5", runTable5)
	register("sec6", "Welch's t-test: encoded-encrypted vs clean", "§6", runWelch)
	register("fig14", "Multi-snapshot adversary across recovery times", "§7.1 / Fig. 14", runFig14)
}

// stegoPayloadKind selects what (if anything) is hidden in a device.
type stegoPayloadKind int

const (
	kindClean stegoPayloadKind = iota
	kindPlain
	kindEncrypted
)

// plaintextUnit builds the structured secret the steganalysis
// experiments hide: an ASCII message padded to exactly one physical SRAM
// row, so the tiled payload forms vertical stripes (like the image of
// Fig. 1) and carries ASCII's inherent bit bias. This is what makes
// unencrypted encodings detectable (Table 5: Moran's I 0.4–0.5, bias
// 0.535).
func plaintextUnit(rowBytes int) []byte {
	const msg = "MEET AT THE SAFE HOUSE AT MIDNIGHT - BRING THE DOCUMENTS. "
	return tile([]byte(msg), rowBytes)
}

// prepareDevice returns a powered-off device in the given condition and
// its final single-capture power-on snapshot. Plain-text devices hide a
// structured ASCII payload (see plaintextUnit); encrypted devices hide
// the same payload behind AES-CTR.
func (c Config) prepareDevice(serial string, kind stegoPayloadKind) ([]byte, int, int, error) {
	r, err := c.newRig("MSP432P401", serial)
	if err != nil {
		return nil, 0, 0, err
	}
	dev := r.Device()
	if _, err := dev.PowerOn(25); err != nil {
		return nil, 0, 0, err
	}
	if kind != kindClean {
		payload := tile(plaintextUnit(dev.SRAM.Cols()/8), dev.SRAM.Bytes())
		if kind == kindEncrypted {
			key := stegocrypt.KeyFromPassphrase("tab5")
			payload, err = stegocrypt.StreamXOR(key, dev.DeviceID(), payload)
			if err != nil {
				return nil, 0, 0, err
			}
		}
		if err := dev.SRAM.Write(payload); err != nil {
			return nil, 0, 0, err
		}
		if err := dev.Stress(dev.Model.Accelerated(), dev.Model.EncodingHours); err != nil {
			return nil, 0, 0, err
		}
	}
	snap, err := dev.SRAM.PowerCycle(25)
	if err != nil {
		return nil, 0, 0, err
	}
	return snap, dev.SRAM.Rows(), dev.SRAM.Cols(), nil
}

// --- Fig. 11 ------------------------------------------------------------------

// Fig11Result holds 128-bit-block Hamming-weight densities.
type Fig11Result struct {
	BlockBits int
	Centers   []float64
	None      []float64
	Plain     []float64
	Encrypted []float64

	MeanNone, MeanPlain, MeanEncrypted float64
}

// ID implements Result.
func (r *Fig11Result) ID() string { return "fig11" }

// Summary implements Result.
func (r *Fig11Result) Summary() string {
	return fmt.Sprintf("mean block weight: clean %.1f, plain %.1f (shifted ⇒ detectable), encrypted %.1f (matches clean)",
		r.MeanNone, r.MeanPlain, r.MeanEncrypted)
}

// Render implements Result.
func (r *Fig11Result) Render() string {
	return "Fig. 11 — Hamming-weight density of 128-bit blocks\n\n" +
		textplot.Chart("density", "Hamming weight", "density", []textplot.Series{
			{Name: "no hidden message", X: r.Centers, Y: r.None},
			{Name: "plain-text", X: r.Centers, Y: r.Plain},
			{Name: "encrypted", X: r.Centers, Y: r.Encrypted},
		}, 64, 14) +
		fmt.Sprintf("\nmeans: clean %.2f, plain %.2f, encrypted %.2f (of %d)\n",
			r.MeanNone, r.MeanPlain, r.MeanEncrypted, r.BlockBits)
}

func blockDensity(snap []byte, blockBytes, bins int) ([]float64, []float64, float64) {
	ws := stats.BlockHammingWeights(snap, blockBytes)
	f := stats.IntsToFloats(ws)
	h := stats.NewHistogram(f, 0, float64(blockBytes*8), bins)
	return h.BinCenters(), h.Density(), stats.Summarize(f).Mean
}

func runFig11(cfg Config) (Result, error) {
	const blockBytes = 16 // 128-bit blocks
	const bins = 32
	res := &Fig11Result{BlockBits: blockBytes * 8}
	for _, tc := range []struct {
		kind stegoPayloadKind
		dst  *[]float64
		mean *float64
	}{
		{kindClean, &res.None, &res.MeanNone},
		{kindPlain, &res.Plain, &res.MeanPlain},
		{kindEncrypted, &res.Encrypted, &res.MeanEncrypted},
	} {
		snap, _, _, err := cfg.prepareDevice(fmt.Sprintf("fig11-%d", tc.kind), tc.kind)
		if err != nil {
			return nil, err
		}
		centers, dens, mean := blockDensity(snap, blockBytes, bins)
		res.Centers = centers
		*tc.dst = dens
		*tc.mean = mean
	}
	return res, nil
}

// --- Fig. 12 ------------------------------------------------------------------

// Fig12Result carries per-symbol entropy contributions, sorted
// descending, for the three device conditions.
type Fig12Result struct {
	None      []float64
	Plain     []float64
	Encrypted []float64

	NormNone, NormPlain, NormEncrypted float64 // paper: 0.0312 / 0.0195 / 0.0312
}

// ID implements Result.
func (r *Fig12Result) ID() string { return "fig12" }

// Summary implements Result.
func (r *Fig12Result) Summary() string {
	return fmt.Sprintf("normalized entropy: clean %.4f, plain %.4f, encrypted %.4f (paper: 0.0312 / 0.0195 / 0.0312)",
		r.NormNone, r.NormPlain, r.NormEncrypted)
}

// Render implements Result.
func (r *Fig12Result) Render() string {
	xs := make([]float64, 256)
	for i := range xs {
		xs[i] = float64(i)
	}
	return "Fig. 12 — Shannon entropy of power-on state byte symbols (sorted)\n\n" +
		textplot.Chart("per-symbol entropy contribution", "symbol rank", "-P·log2(P)",
			[]textplot.Series{
				{Name: "no hidden message", X: xs, Y: r.None},
				{Name: "plain-text", X: xs, Y: r.Plain},
				{Name: "encrypted", X: xs, Y: r.Encrypted},
			}, 64, 14) +
		fmt.Sprintf("\nnormalized entropies: clean %.4f, plain %.4f, encrypted %.4f\n",
			r.NormNone, r.NormPlain, r.NormEncrypted)
}

func runFig12(cfg Config) (Result, error) {
	res := &Fig12Result{}
	for _, tc := range []struct {
		kind stegoPayloadKind
		dst  *[]float64
		norm *float64
	}{
		{kindClean, &res.None, &res.NormNone},
		{kindPlain, &res.Plain, &res.NormPlain},
		{kindEncrypted, &res.Encrypted, &res.NormEncrypted},
	} {
		snap, _, _, err := cfg.prepareDevice(fmt.Sprintf("fig12-%d", tc.kind), tc.kind)
		if err != nil {
			return nil, err
		}
		per := stats.PerSymbolEntropy(snap)
		sorted := append([]float64(nil), per[:]...)
		sortDescending(sorted)
		*tc.dst = sorted
		*tc.norm = stats.NormalizedByteEntropy(snap)
	}
	return res, nil
}

func sortDescending(v []float64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] > v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

// --- Table 5 ------------------------------------------------------------------

// Table5Row is one chip's steganalysis measurements.
type Table5Row struct {
	Condition string
	MoranI    float64
	MeanBias  float64
}

// Table5Result reproduces Table 5's 11 chips.
type Table5Result struct {
	Rows []Table5Row
}

// ID implements Result.
func (r *Table5Result) ID() string { return "tab5" }

// Summary implements Result.
func (r *Table5Result) Summary() string {
	var plainI, encI float64
	var nEnc int
	for _, row := range r.Rows {
		if strings.Contains(row.Condition, "no encryption") && row.MoranI > plainI {
			plainI = row.MoranI
		}
		if strings.Contains(row.Condition, "encrypted") {
			encI += row.MoranI
			nEnc++
		}
	}
	return fmt.Sprintf("plain-text encodings reach Moran's I %.2f (paper 0.4–0.5); encrypted average %.3f — indistinguishable from clean",
		plainI, encI/float64(nEnc))
}

// Render implements Result.
func (r *Table5Result) Render() string {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{row.Condition, fmt.Sprintf("%.3f", row.MoranI), fmt.Sprintf("%.3f", row.MeanBias)}
	}
	return "Table 5 — spatial autocorrelation and mean power-on bias (MSP432 fleet)\n\n" +
		textplot.Table([]string{"condition", "Moran's I", "mean power-on bias"}, rows)
}

func runTable5(cfg Config) (Result, error) {
	res := &Table5Result{}
	add := func(serial, label string, kind stegoPayloadKind) error {
		snap, rows, cols, err := cfg.prepareDevice(serial, kind)
		if err != nil {
			return err
		}
		m, err := moranOfSnapshot(snap, rows, cols)
		if err != nil {
			return err
		}
		res.Rows = append(res.Rows, Table5Row{
			Condition: label, MoranI: m.I, MeanBias: stats.MeanBias(snap),
		})
		return nil
	}
	for i := 1; i <= 2; i++ {
		if err := add(fmt.Sprintf("tab5-plain%d", i), "Hidden message (no encryption)", kindPlain); err != nil {
			return nil, err
		}
	}
	for i := 1; i <= 5; i++ {
		if err := add(fmt.Sprintf("tab5-clean%d", i), "No hidden message", kindClean); err != nil {
			return nil, err
		}
	}
	for i := 1; i <= 4; i++ {
		if err := add(fmt.Sprintf("tab5-enc%d", i), "Hidden message (encrypted)", kindEncrypted); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// --- §6 Welch -----------------------------------------------------------------

// WelchResult is the §6 hypothesis test.
type WelchResult struct {
	Test          stats.WelchResult
	DevicesPerArm int
	RejectNull    bool
}

// ID implements Result.
func (r *WelchResult) ID() string { return "sec6" }

// Summary implements Result.
func (r *WelchResult) Summary() string {
	verdict := "cannot reject the null ⇒ adversary cannot distinguish (paper: p = 0.071)"
	if r.RejectNull {
		verdict = "REJECTED the null — deniability violated"
	}
	return fmt.Sprintf("one-tailed p = %.3f: %s", r.Test.POneTailed, verdict)
}

// Render implements Result.
func (r *WelchResult) Render() string {
	return "§6 — Welch's t-test on mean block Hamming weights\n\n" + textplot.Table(
		[]string{"quantity", "value"},
		[][]string{
			{"devices per class", fmt.Sprintf("%d", r.DevicesPerArm)},
			{"mean HW (encrypted-encoded)", fmt.Sprintf("%.3f", r.Test.MeanA)},
			{"mean HW (clean)", fmt.Sprintf("%.3f", r.Test.MeanB)},
			{"t statistic", fmt.Sprintf("%.3f", r.Test.T)},
			{"Welch df", fmt.Sprintf("%.1f", r.Test.DF)},
			{"p (one-tailed)", fmt.Sprintf("%.4f", r.Test.POneTailed)},
			{"null rejected at 0.05", fmt.Sprintf("%v", r.RejectNull)},
		})
}

func runWelch(cfg Config) (Result, error) {
	const perArm = 8
	const blockBytes = 16
	meanHW := func(serial string, kind stegoPayloadKind) (float64, error) {
		snap, _, _, err := cfg.prepareDevice(serial, kind)
		if err != nil {
			return 0, err
		}
		ws := stats.BlockHammingWeights(snap, blockBytes)
		return stats.Summarize(stats.IntsToFloats(ws)).Mean, nil
	}
	var enc, clean []float64
	for i := 0; i < perArm; i++ {
		e, err := meanHW(fmt.Sprintf("sec6-enc%d", i), kindEncrypted)
		if err != nil {
			return nil, err
		}
		c, err := meanHW(fmt.Sprintf("sec6-clean%d", i), kindClean)
		if err != nil {
			return nil, err
		}
		enc = append(enc, e)
		clean = append(clean, c)
	}
	test, err := stats.WelchTTest(enc, clean)
	if err != nil {
		return nil, err
	}
	return &WelchResult{Test: test, DevicesPerArm: perArm, RejectNull: test.POneTailed < 0.05}, nil
}

// --- Fig. 14 ------------------------------------------------------------------

// Fig14Snapshot is one capture in the multi-snapshot timeline.
type Fig14Snapshot struct {
	Label    string
	Centers  []float64
	Density  []float64
	MoranI   float64
	MeanHW   float64
	DiffBits float64 // fraction of bits changed vs the m1 snapshot
}

// Fig14Result is the §7.1 multi-snapshot adversary analysis.
type Fig14Result struct {
	Snapshots []Fig14Snapshot
	MaxMoranI float64
}

// ID implements Result.
func (r *Fig14Result) ID() string { return "fig14" }

// Summary implements Result.
func (r *Fig14Result) Summary() string {
	maxDrift := 0.0
	for _, s := range r.Snapshots[1:] {
		if s.DiffBits > maxDrift {
			maxDrift = s.DiffBits
		}
	}
	return fmt.Sprintf("max snapshot drift %.2f%% of bits, all Moran's I ≤ %.3f — temporal differences look like measurement noise",
		100*maxDrift, r.MaxMoranI)
}

// Render implements Result.
func (r *Fig14Result) Render() string {
	series := make([]textplot.Series, 0, len(r.Snapshots))
	rows := make([][]string, 0, len(r.Snapshots))
	for _, s := range r.Snapshots {
		series = append(series, textplot.Series{Name: s.Label, X: s.Centers, Y: s.Density})
		rows = append(rows, []string{s.Label, fmt.Sprintf("%.2f", s.MeanHW),
			fmt.Sprintf("%.4f", s.MoranI), fmt.Sprintf("%.3f%%", 100*s.DiffBits)})
	}
	return "Fig. 14 — Hamming-weight distributions across a covert communication\n\n" +
		textplot.Table([]string{"snapshot", "mean block HW", "Moran's I", "bits changed vs m1"}, rows) +
		"\n" + textplot.Chart("density", "Hamming weight", "density", series, 64, 14)
}

func runFig14(cfg Config) (Result, error) {
	r, err := cfg.newRig("MSP432P401", "fig14")
	if err != nil {
		return nil, err
	}
	dev := r.Device()
	if _, err := dev.PowerOn(25); err != nil {
		return nil, err
	}
	key := stegocrypt.KeyFromPassphrase("fig14")
	payload := tile(imaging.Glyph().Pack(), dev.SRAM.Bytes())
	payload, err = stegocrypt.StreamXOR(key, dev.DeviceID(), payload)
	if err != nil {
		return nil, err
	}
	if err := dev.SRAM.Write(payload); err != nil {
		return nil, err
	}

	res := &Fig14Result{}
	const blockBytes = 16
	var ref []byte // the m1 snapshot; drift is measured against it
	snapAndRecord := func(label string, isRef bool) error {
		snap, err := dev.SRAM.PowerCycle(25)
		if err != nil {
			return err
		}
		dev.PowerOff(true)
		if isRef {
			ref = snap
		}
		centers, dens, mean := blockDensity(snap, blockBytes, 32)
		m, err := moranOfSnapshot(snap, dev.SRAM.Rows(), dev.SRAM.Cols())
		if err != nil {
			return err
		}
		drift := 0.0
		if ref != nil {
			drift = stats.BitErrorRate(snap, ref)
		}
		res.Snapshots = append(res.Snapshots, Fig14Snapshot{
			Label: label, Centers: centers, Density: dens,
			MoranI: m.I, MeanHW: mean,
			DiffBits: drift,
		})
		if m.I > res.MaxMoranI {
			res.MaxMoranI = m.I
		}
		return nil
	}

	// Pre-encoding snapshot (the adversary's first visit). Drift for this
	// row is reported as 0 (no reference yet).
	if err := snapAndRecord("pre-encoding", false); err != nil {
		return nil, err
	}

	// Encode.
	if _, err := dev.PowerOn(25); err != nil {
		return nil, err
	}
	if err := dev.SRAM.Write(payload); err != nil {
		return nil, err
	}
	if err := dev.Stress(dev.Model.Accelerated(), dev.Model.EncodingHours); err != nil {
		return nil, err
	}
	dev.PowerOff(true)

	// Back-to-back measurements m1/m2, then recovery checkpoints.
	if err := snapAndRecord("encoded (m1)", true); err != nil {
		return nil, err
	}
	if err := snapAndRecord("encoded (m2)", false); err != nil {
		return nil, err
	}
	for _, span := range []struct {
		label string
		hours float64
	}{
		{"one hour recovery", 1},
		{"one day recovery", 23},
		{"one week recovery", 6 * 24},
	} {
		if err := dev.Shelve(span.hours); err != nil {
			return nil, err
		}
		if err := snapAndRecord(span.label, false); err != nil {
			return nil, err
		}
	}
	return res, nil
}
