package experiments

import (
	"fmt"
	"strings"

	"invisiblebits/internal/analog"
	"invisiblebits/internal/imaging"
	"invisiblebits/internal/spice"
	"invisiblebits/internal/stats"
	"invisiblebits/internal/stegocrypt"
	"invisiblebits/internal/textplot"
)

func init() {
	register("fig1", "Visual encoding pipeline on an MSP432", "Fig. 1", runFig1)
	register("fig2", "6T cell startup transient, pre/post NBTI aging", "Fig. 2b", runFig2)
	register("fig3", "Startup bias distributions and acceleration knobs", "Fig. 3", runFig3)
}

// --- Fig. 1 -------------------------------------------------------------------

// Fig1Result reproduces the five panels of Fig. 1: the original power-on
// state, the message image, the post-encoding power-on state (raw), the
// error-corrected received image, and the encrypted-encoding power-on
// state.
type Fig1Result struct {
	Original  *imaging.Bitmap // pre-encoding power-on state window
	Message   *imaging.Bitmap // the secret image
	Encoded   *imaging.Bitmap // power-on state after raw encoding
	Received  *imaging.Bitmap // after majority vote + inversion
	Encrypted *imaging.Bitmap // power-on state after encrypted encoding

	RawError      float64 // pixel error of Encoded vs inverted message
	ReceivedError float64 // pixel error after decoding
	EncBias       float64 // mean bias of the encrypted window
}

// ID implements Result.
func (r *Fig1Result) ID() string { return "fig1" }

// Summary implements Result.
func (r *Fig1Result) Summary() string {
	return fmt.Sprintf("image visible in power-on state (%.1f%% pixel error); encrypted window bias %.3f (≈0.5 ⇒ hidden)",
		100*r.ReceivedError, r.EncBias)
}

// Render implements Result.
func (r *Fig1Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Fig. 1 — Invisible Bits visual pipeline (32x32 window)\n\n")
	sb.WriteString("(a) original power-on state:\n" + r.Original.ASCII())
	sb.WriteString("\n(b) secret message:\n" + r.Message.ASCII())
	sb.WriteString("\n(c) power-on state after encoding (inverted message + noise):\n" + r.Encoded.ASCII())
	sb.WriteString("\n(d) received after majority vote + inversion:\n" + r.Received.ASCII())
	sb.WriteString("\n(e) power-on state after *encrypted* encoding:\n" + r.Encrypted.ASCII())
	fmt.Fprintf(&sb, "\nraw pixel error %.2f%%, received %.2f%%, encrypted-window bias %.3f\n",
		100*r.RawError, 100*r.ReceivedError, r.EncBias)
	return sb.String()
}

func runFig1(cfg Config) (Result, error) {
	glyph := imaging.Glyph()
	packed := glyph.Pack() // 128 bytes

	// Raw encoding.
	r, err := cfg.newRig("MSP432P401", "fig1-raw")
	if err != nil {
		return nil, err
	}
	dev := r.Device()
	pre, err := dev.PowerOn(25)
	if err != nil {
		return nil, err
	}
	original, err := imaging.Unpack(pre, 32, 32)
	if err != nil {
		return nil, err
	}
	payload := tile(packed, dev.SRAM.Bytes())
	if err := dev.SRAM.Write(payload); err != nil {
		return nil, err
	}
	if err := dev.Stress(dev.Model.Accelerated(), dev.Model.EncodingHours); err != nil {
		return nil, err
	}
	single, err := dev.SRAM.PowerCycle(25)
	if err != nil {
		return nil, err
	}
	encoded, err := imaging.Unpack(single[:len(packed)], 32, 32)
	if err != nil {
		return nil, err
	}
	maj, err := dev.SRAM.CaptureMajority(cfg.captures(), 25)
	if err != nil {
		return nil, err
	}
	// Fig. 1d applies error correction: the tiled payload is a repetition
	// code, so vote across the copies that fit in SRAM.
	copies := dev.SRAM.Bytes() / len(packed)
	if copies%2 == 0 {
		copies--
	}
	voted := majorityAcrossCopies(invert(maj), len(packed), copies)
	received, err := imaging.Unpack(voted, 32, 32)
	if err != nil {
		return nil, err
	}

	// Encrypted encoding on a second device.
	r2, err := cfg.newRig("MSP432P401", "fig1-enc")
	if err != nil {
		return nil, err
	}
	dev2 := r2.Device()
	if _, err := dev2.PowerOn(25); err != nil {
		return nil, err
	}
	key := stegocrypt.KeyFromPassphrase("fig1")
	ct, err := stegocrypt.StreamXOR(key, dev2.DeviceID(), tile(packed, dev2.SRAM.Bytes()))
	if err != nil {
		return nil, err
	}
	if err := dev2.SRAM.Write(ct); err != nil {
		return nil, err
	}
	if err := dev2.Stress(dev2.Model.Accelerated(), dev2.Model.EncodingHours); err != nil {
		return nil, err
	}
	encSnap, err := dev2.SRAM.PowerCycle(25)
	if err != nil {
		return nil, err
	}
	encrypted, err := imaging.Unpack(encSnap[:len(packed)], 32, 32)
	if err != nil {
		return nil, err
	}

	invMsg, err := imaging.Unpack(invert(packed), 32, 32)
	if err != nil {
		return nil, err
	}
	rawErr, err := imaging.ErrorRate(encoded, invMsg)
	if err != nil {
		return nil, err
	}
	recErr, err := imaging.ErrorRate(received, glyph)
	if err != nil {
		return nil, err
	}
	return &Fig1Result{
		Original: original, Message: glyph, Encoded: encoded,
		Received: received, Encrypted: encrypted,
		RawError: rawErr, ReceivedError: recErr,
		EncBias: stats.MeanBias(encSnap),
	}, nil
}

// --- Fig. 2 -------------------------------------------------------------------

// Fig2Result holds the pre- and post-aging power-on transients.
type Fig2Result struct {
	Pre, Post       spice.Result
	PreState        bool
	PostState       bool
	AppliedShiftV   float64
	SettlePreNanos  float64
	SettlePostNanos float64
}

// ID implements Result.
func (r *Fig2Result) ID() string { return "fig2" }

// Summary implements Result.
func (r *Fig2Result) Summary() string {
	return fmt.Sprintf("power-on race flips %v→%v after %.0f mV NBTI shift on M4 (settle ≈%.1f ns)",
		b2i(r.PreState), b2i(r.PostState), 1000*r.AppliedShiftV, r.SettlePostNanos)
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Render implements Result.
func (r *Fig2Result) Render() string {
	toSeries := func(res spice.Result, name string) []textplot.Series {
		n := len(res.Waveform.TimeS)
		x := make([]float64, n)
		for i, t := range res.Waveform.TimeS {
			x[i] = t * 1e9
		}
		return []textplot.Series{
			{Name: name + " VA", X: x, Y: res.Waveform.VAV},
			{Name: name + " VB", X: x, Y: res.Waveform.VBV},
			{Name: "Vdd", X: x, Y: res.Waveform.VddV},
		}
	}
	var sb strings.Builder
	sb.WriteString("Fig. 2b — startup waveforms (node A and B vs supply ramp)\n\n")
	sb.WriteString(textplot.Chart("pre-aging (cell biased to 1: A→Vdd, B→0)", "t [ns]", "V",
		toSeries(r.Pre, "pre"), 64, 12))
	sb.WriteByte('\n')
	sb.WriteString(textplot.Chart(
		fmt.Sprintf("post-aging (+%.0f mV on |vth4|: race winner flips)", 1000*r.AppliedShiftV),
		"t [ns]", "V", toSeries(r.Post, "post"), 64, 12))
	return sb.String()
}

func runFig2(Config) (Result, error) {
	cell := spice.NewCell()
	cell.M4.VthV -= 0.015 // manufacturing bias toward 1 (|vth4| < |vth2|)
	pre, err := cell.PowerOn(spice.DefaultRamp())
	if err != nil {
		return nil, err
	}
	const shift = 0.05
	cell.AgePMOS(true, shift) // cell held 1 → NBTI on M4
	post, err := cell.PowerOn(spice.DefaultRamp())
	if err != nil {
		return nil, err
	}
	return &Fig2Result{
		Pre: pre, Post: post,
		PreState: pre.State, PostState: post.State,
		AppliedShiftV:   shift,
		SettlePreNanos:  pre.SettleS * 1e9,
		SettlePostNanos: post.SettleS * 1e9,
	}, nil
}

// --- Fig. 3 -------------------------------------------------------------------

// Fig3Result carries the three bias histograms (a–c) and the
// acceleration-knob curves (d).
type Fig3Result struct {
	BinCenters []float64
	HistUnaged []float64 // (a) fraction of cells per bias bin
	HistAfter0 []float64 // (b) after all-0 stress
	HistAfter1 []float64 // (c) after all-1 stress

	// (d): percentage of 1s vs stress time per condition.
	Conditions []analog.Conditions
	StressHrs  []float64
	PctOnes    [][]float64 // [condition][time]
}

// ID implements Result.
func (r *Fig3Result) ID() string { return "fig3" }

// Summary implements Result.
func (r *Fig3Result) Summary() string {
	last := len(r.StressHrs) - 1
	return fmt.Sprintf("data-directed aging confirmed; at 4h: %%1s = %.0f/%.0f/%.0f/%.0f for %v/%v/%v/%v (voltage dominates)",
		r.PctOnes[0][last], r.PctOnes[1][last], r.PctOnes[2][last], r.PctOnes[3][last],
		r.Conditions[0], r.Conditions[1], r.Conditions[2], r.Conditions[3])
}

// Render implements Result.
func (r *Fig3Result) Render() string {
	var sb strings.Builder
	labels := make([]string, len(r.BinCenters))
	for i, c := range r.BinCenters {
		labels[i] = fmt.Sprintf("%.2f", c)
	}
	sb.WriteString("Fig. 3 — power-on state bias and accelerated aging\n\n")
	sb.WriteString(textplot.Histogram("(a) unaged bias distribution", labels, r.HistUnaged, 40))
	sb.WriteString(textplot.Histogram("(b) after stressing with all-0s (biases toward 1)", labels, r.HistAfter0, 40))
	sb.WriteString(textplot.Histogram("(c) after stressing with all-1s (biases toward 0)", labels, r.HistAfter1, 40))
	series := make([]textplot.Series, len(r.Conditions))
	for i, c := range r.Conditions {
		series[i] = textplot.Series{Name: c.String(), X: r.StressHrs, Y: r.PctOnes[i]}
	}
	sb.WriteString("\n")
	sb.WriteString(textplot.Chart("(d) % of 1s vs stress time (all-1s written)", "stress [h]", "% 1s", series, 60, 14))
	return sb.String()
}

func runFig3(cfg Config) (Result, error) {
	const bins = 10
	histOf := func(serial string, fill byte, stressHours float64) ([]float64, []float64, error) {
		r, err := cfg.newRig("MSP432P401", serial)
		if err != nil {
			return nil, nil, err
		}
		dev := r.Device()
		if _, err := dev.PowerOn(25); err != nil {
			return nil, nil, err
		}
		if stressHours > 0 {
			if err := dev.SRAM.Fill(fill); err != nil {
				return nil, nil, err
			}
			if err := dev.Stress(dev.Model.Accelerated(), stressHours); err != nil {
				return nil, nil, err
			}
		}
		dev.PowerOff(true)
		bm, err := dev.SRAM.BiasMap(20, 25)
		if err != nil {
			return nil, nil, err
		}
		h := stats.NewHistogram(bm, 0, 1, bins)
		return h.Density(), h.BinCenters(), nil
	}

	unaged, centers, err := histOf("fig3-a", 0, 0)
	if err != nil {
		return nil, err
	}
	after0, _, err := histOf("fig3-b", 0x00, 4)
	if err != nil {
		return nil, err
	}
	after1, _, err := histOf("fig3-c", 0xFF, 4)
	if err != nil {
		return nil, err
	}

	conds := []analog.Conditions{
		{VoltageV: 1.2, TempC: 25},
		{VoltageV: 1.2, TempC: 85},
		{VoltageV: 3.3, TempC: 25},
		{VoltageV: 3.3, TempC: 85},
	}
	times := []float64{0, 0.5, 1, 1.5, 2, 2.5, 3, 3.5, 4}
	pct := make([][]float64, len(conds))
	for ci, cond := range conds {
		pct[ci] = make([]float64, len(times))
		r, err := cfg.newRig("MSP432P401", fmt.Sprintf("fig3-d%d", ci))
		if err != nil {
			return nil, err
		}
		dev := r.Device()
		if _, err := dev.PowerOn(25); err != nil {
			return nil, err
		}
		if err := dev.SRAM.Fill(0xFF); err != nil {
			return nil, err
		}
		prev := 0.0
		for ti, tHours := range times {
			if dt := tHours - prev; dt > 0 {
				// Refill before each increment: the paper holds all-1s for
				// the whole soak.
				if err := dev.SRAM.Fill(0xFF); err != nil {
					return nil, err
				}
				if err := dev.Stress(cond, dt); err != nil {
					return nil, err
				}
				prev = tHours
			}
			snap, err := dev.SRAM.PowerCycle(25)
			if err != nil {
				return nil, err
			}
			pct[ci][ti] = 100 * stats.MeanBias(snap)
			// Restore held pattern for the next increment.
			if err := dev.SRAM.Fill(0xFF); err != nil {
				return nil, err
			}
		}
	}

	return &Fig3Result{
		BinCenters: centers,
		HistUnaged: unaged, HistAfter0: after0, HistAfter1: after1,
		Conditions: conds, StressHrs: times, PctOnes: pct,
	}, nil
}
