// Package experiments regenerates every table and figure of the paper's
// evaluation (§5–§7) against the simulated device fleet. Each experiment
// is a named harness that returns a typed result carrying both the
// measured series and the paper's reference values, plus a text rendering
// for the cmd/ibexperiments tool. EXPERIMENTS.md records the
// paper-vs-measured comparison produced by these harnesses.
package experiments

import (
	"fmt"
	"sort"

	"invisiblebits/internal/device"
	"invisiblebits/internal/rig"
)

// Config controls experiment scale. The defaults trade a little
// statistical tightness for speed; Full() uses the devices' real sizes.
type Config struct {
	// SRAMLimitBytes caps instantiated SRAM per device (0 = model size).
	// Error rates are per-cell i.i.d., so a sample of the array measures
	// the same rates as the full device.
	SRAMLimitBytes int
	// Captures is the majority-vote sample count (paper default 5).
	Captures int
	// FleetSeed namespaces device serials so runs are reproducible but
	// experiments don't share silicon.
	FleetSeed string
}

// Default returns the fast configuration used by tests and benches.
func Default() Config {
	return Config{SRAMLimitBytes: 16 << 10, Captures: 5, FleetSeed: "exp"}
}

// Full returns the full-scale configuration (real SRAM sizes).
func Full() Config {
	return Config{SRAMLimitBytes: 0, Captures: 5, FleetSeed: "exp"}
}

func (c Config) captures() int {
	if c.Captures <= 0 {
		return 5
	}
	return c.Captures
}

// newRig instantiates a model with a config-scoped serial.
func (c Config) newRig(modelName, serial string) (*rig.Rig, error) {
	m, err := device.ByName(modelName)
	if err != nil {
		return nil, err
	}
	var opts []device.Option
	if c.SRAMLimitBytes > 0 {
		opts = append(opts, device.WithSRAMLimit(c.SRAMLimitBytes))
	}
	d, err := device.New(m, c.FleetSeed+"/"+serial, opts...)
	if err != nil {
		return nil, err
	}
	return rig.New(d), nil
}

// Result is what every experiment returns.
type Result interface {
	// ID is the experiment identifier (e.g. "fig6").
	ID() string
	// Summary is a one-line paper-vs-measured verdict.
	Summary() string
	// Render is the full text report (tables/ASCII charts).
	Render() string
}

// Runner executes one experiment.
type Runner func(Config) (Result, error)

// registration couples an ID with its runner and description.
type registration struct {
	id, title, paperRef string
	run                 Runner
}

var registry []registration

func register(id, title, paperRef string, run Runner) {
	registry = append(registry, registration{id: id, title: title, paperRef: paperRef, run: run})
}

// Info describes a registered experiment.
type Info struct {
	ID, Title, PaperRef string
}

// List returns all registered experiments sorted by ID.
func List() []Info {
	out := make([]Info, 0, len(registry))
	for _, r := range registry {
		out = append(out, Info{ID: r.id, Title: r.title, PaperRef: r.paperRef})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Run executes the experiment with the given ID.
func Run(id string, cfg Config) (Result, error) {
	for _, r := range registry {
		if r.id == id {
			return r.run(cfg)
		}
	}
	return nil, fmt.Errorf("experiments: unknown experiment %q", id)
}

// RunAll executes every registered experiment in ID order.
func RunAll(cfg Config) ([]Result, error) {
	infos := List()
	out := make([]Result, 0, len(infos))
	for _, info := range infos {
		res, err := Run(info.ID, cfg)
		if err != nil {
			return out, fmt.Errorf("experiments: %s: %w", info.ID, err)
		}
		out = append(out, res)
	}
	return out, nil
}

// invert returns the bitwise complement (payload ↔ power-on state).
func invert(p []byte) []byte {
	out := make([]byte, len(p))
	for i, b := range p {
		out[i] = ^b
	}
	return out
}

// tile repeats pattern until it fills n bytes.
func tile(pattern []byte, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = pattern[i%len(pattern)]
	}
	return out
}
