package experiments

import (
	"fmt"
	"math"
	"strings"

	"invisiblebits/internal/device"
	"invisiblebits/internal/ecc"
	"invisiblebits/internal/imaging"
	"invisiblebits/internal/rng"
	"invisiblebits/internal/stats"
	"invisiblebits/internal/textplot"
)

func init() {
	register("fig8", "Repetition code cleaning a decoded image", "Fig. 8", runFig8)
	register("fig9", "Error vs payload copies and stress time", "Fig. 9", runFig9)
	register("fig10", "Repetition + Hamming(7,4) vs Bernoulli theory", "Fig. 10", runFig10)
	register("fig15", "Error–capacity trade-off across device classes", "Fig. 15", runFig15)
}

// encodeCopies writes `copies` tiled copies of unit into a device, soaks
// it for stressHours at accelerated conditions, and returns the majority
// power-on capture (inverted, i.e. payload-domain).
func (c Config) encodeCopies(serial string, unit []byte, copies int, stressHours float64) ([]byte, error) {
	r, err := c.newRig("MSP432P401", serial)
	if err != nil {
		return nil, err
	}
	dev := r.Device()
	if _, err := dev.PowerOn(25); err != nil {
		return nil, err
	}
	if len(unit)*copies > dev.SRAM.Bytes() {
		return nil, fmt.Errorf("experiments: %d copies of %d bytes exceed SRAM", copies, len(unit))
	}
	payload := make([]byte, 0, len(unit)*copies)
	for i := 0; i < copies; i++ {
		payload = append(payload, unit...)
	}
	// Fill the remainder with random cover so the whole array is driven.
	full := make([]byte, dev.SRAM.Bytes())
	rng.NewSource(rng.HashString(serial)).Bytes(full)
	copy(full, payload)
	if err := dev.SRAM.Write(full); err != nil {
		return nil, err
	}
	if err := dev.Stress(dev.Model.Accelerated(), stressHours); err != nil {
		return nil, err
	}
	maj, err := dev.SRAM.CaptureMajority(c.captures(), 25)
	if err != nil {
		return nil, err
	}
	return invert(maj)[:len(payload)], nil
}

// majorityAcrossCopies votes bit-wise across the first n copies.
func majorityAcrossCopies(recovered []byte, unitBytes, n int) []byte {
	out := make([]byte, unitBytes)
	for bit := 0; bit < unitBytes*8; bit++ {
		votes := 0
		for c := 0; c < n; c++ {
			idx := c*unitBytes*8 + bit
			if recovered[idx/8]&(1<<(idx%8)) != 0 {
				votes++
			}
		}
		if votes >= n/2+1 {
			out[bit/8] |= 1 << (bit % 8)
		}
	}
	return out
}

// --- Fig. 8 -------------------------------------------------------------------

// Fig8Result holds decoded images at increasing copy counts.
type Fig8Result struct {
	Copies []int
	Images []*imaging.Bitmap
	Errors []float64 // pixel error vs the original
}

// ID implements Result.
func (r *Fig8Result) ID() string { return "fig8" }

// Summary implements Result.
func (r *Fig8Result) Summary() string {
	return fmt.Sprintf("image pixel error %.1f%%→%.2f%% as copies go %d→%d",
		100*r.Errors[0], 100*r.Errors[len(r.Errors)-1], r.Copies[0], r.Copies[len(r.Copies)-1])
}

// Render implements Result.
func (r *Fig8Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Fig. 8 — repetition code removing error from a decoded image\n")
	for i, n := range r.Copies {
		fmt.Fprintf(&sb, "\n%d cop%s (pixel error %.2f%%):\n", n, plural(n, "y", "ies"), 100*r.Errors[i])
		sb.WriteString(r.Images[i].ASCII())
	}
	return sb.String()
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

func runFig8(cfg Config) (Result, error) {
	glyph := imaging.Glyph()
	unit := glyph.Pack()
	const maxCopies = 7
	recovered, err := cfg.encodeCopies("fig8", unit, maxCopies, 6) // short soak → visible single-copy noise
	if err != nil {
		return nil, err
	}
	res := &Fig8Result{}
	for _, n := range []int{1, 3, 5, 7} {
		voted := majorityAcrossCopies(recovered, len(unit), n)
		img, err := imaging.Unpack(voted, 32, 32)
		if err != nil {
			return nil, err
		}
		e, err := imaging.ErrorRate(img, glyph)
		if err != nil {
			return nil, err
		}
		res.Copies = append(res.Copies, n)
		res.Images = append(res.Images, img)
		res.Errors = append(res.Errors, e)
	}
	return res, nil
}

// --- Fig. 9 -------------------------------------------------------------------

// Fig9Result sweeps copies × stress time.
type Fig9Result struct {
	Copies []int
	Hours  []float64
	Errors [][]float64 // [hour][copyIdx]
}

// ID implements Result.
func (r *Fig9Result) ID() string { return "fig9" }

// Summary implements Result.
func (r *Fig9Result) Summary() string {
	h0 := r.Errors[0]
	hl := r.Errors[len(r.Errors)-1]
	return fmt.Sprintf("both knobs reduce error: %gh/%d copies %.1f%% → %gh/%d copies %.2f%%",
		r.Hours[0], r.Copies[0], 100*h0[0],
		r.Hours[len(r.Hours)-1], r.Copies[len(r.Copies)-1], 100*hl[len(hl)-1])
}

// Render implements Result.
func (r *Fig9Result) Render() string {
	header := []string{"copies"}
	for _, h := range r.Hours {
		header = append(header, fmt.Sprintf("%g hours", h))
	}
	rows := make([][]string, len(r.Copies))
	for ci, n := range r.Copies {
		row := []string{fmt.Sprintf("%d", n)}
		for hi := range r.Hours {
			row = append(row, textplot.Percent(r.Errors[hi][ci]))
		}
		rows[ci] = row
	}
	series := make([]textplot.Series, len(r.Hours))
	for hi, h := range r.Hours {
		xs := make([]float64, len(r.Copies))
		for i, n := range r.Copies {
			xs[i] = float64(n)
		}
		series[hi] = textplot.Series{Name: fmt.Sprintf("%gh", h), X: xs, Y: r.Errors[hi]}
	}
	return "Fig. 9 — error vs copies and stress time\n\n" +
		textplot.Table(header, rows) + "\n" +
		textplot.Chart("error vs copies", "copies", "error", series, 60, 12)
}

func runFig9(cfg Config) (Result, error) {
	res := &Fig9Result{
		Copies: []int{1, 3, 5, 7, 9, 11, 13, 15, 17, 19},
		Hours:  []float64{2, 4, 6},
	}
	for _, h := range res.Hours {
		// One device per stress time, 19 copies of a unit message.
		r, err := cfg.newRig("MSP432P401", fmt.Sprintf("fig9-%gh", h))
		if err != nil {
			return nil, err
		}
		sramBytes := r.Device().SRAM.Bytes()
		unitBytes := sramBytes / 19
		unitBytes -= unitBytes % 4
		unit := make([]byte, unitBytes)
		rng.NewSource(9).Bytes(unit)

		recovered, err := cfg.encodeCopies(fmt.Sprintf("fig9-%gh", h), unit, 19, h)
		if err != nil {
			return nil, err
		}
		errs := make([]float64, len(res.Copies))
		for ci, n := range res.Copies {
			voted := majorityAcrossCopies(recovered, unitBytes, n)
			errs[ci] = stats.BitErrorRate(voted, unit)
		}
		res.Errors = append(res.Errors, errs)
	}
	return res, nil
}

// --- Fig. 10 ------------------------------------------------------------------

// Fig10Result compares measured repetition decoding against Eq. 1 theory
// and against repetition+Hamming(7,4).
type Fig10Result struct {
	Copies          []int
	Theory          []float64 // Eq. 1 with the measured single-copy error
	Repetition      []float64
	RepetitionHam74 []float64
	SingleCopyMean  float64
	SingleCopyStd   float64
	ZeroErrorAt     int // first copy count where repetition measured 0
}

// ID implements Result.
func (r *Fig10Result) ID() string { return "fig10" }

// Summary implements Result.
func (r *Fig10Result) Summary() string {
	return fmt.Sprintf("single-copy error %.2f%%±%.2f%% (paper 6.5%%±0.68%%); repetition hits 0 at %d copies (paper 13); +Hamming(7,4) reaches it sooner",
		100*r.SingleCopyMean, 100*r.SingleCopyStd, r.ZeroErrorAt)
}

// Render implements Result.
func (r *Fig10Result) Render() string {
	rows := make([][]string, len(r.Copies))
	for i, n := range r.Copies {
		rows[i] = []string{
			fmt.Sprintf("%d", n),
			textplot.Percent(r.Theory[i]),
			textplot.Percent(r.Repetition[i]),
			textplot.Percent(r.RepetitionHam74[i]),
		}
	}
	xs := make([]float64, len(r.Copies))
	for i, n := range r.Copies {
		xs[i] = float64(n)
	}
	return "Fig. 10 — repetition and Hamming(7,4) error performance\n\n" +
		textplot.Table([]string{"copies", "theoretical (Eq. 1)", "repetition", "repetition+(7,4)"}, rows) +
		"\n" + textplot.Chart("error vs copies", "copies", "error", []textplot.Series{
		{Name: "theory", X: xs, Y: r.Theory},
		{Name: "repetition", X: xs, Y: r.Repetition},
		{Name: "rep+ham", X: xs, Y: r.RepetitionHam74},
	}, 60, 12)
}

func runFig10(cfg Config) (Result, error) {
	res := &Fig10Result{Copies: []int{1, 3, 5, 7, 9, 11, 13, 15, 17}}
	const maxCopies = 17

	r0, err := cfg.newRig("MSP432P401", "fig10")
	if err != nil {
		return nil, err
	}
	sramBytes := r0.Device().SRAM.Bytes()
	unitBytes := sramBytes / maxCopies
	unitBytes -= unitBytes % 4

	// Plain message unit and its Hamming(7,4)-expanded counterpart share
	// the channel; encode both interleaved on two devices for fairness.
	msg := make([]byte, unitBytes)
	rng.NewSource(10).Bytes(msg)
	recovered, err := cfg.encodeCopies("fig10", msg, maxCopies, 10)
	if err != nil {
		return nil, err
	}

	ham := ecc.Hamming74{}
	hamMsgBytes := unitBytes * 4 / 7
	hamMsgBytes -= hamMsgBytes % 4
	hamMsg := make([]byte, hamMsgBytes)
	rng.NewSource(11).Bytes(hamMsg)
	hamUnit, err := ham.Encode(hamMsg)
	if err != nil {
		return nil, err
	}
	if pad := (4 - len(hamUnit)%4) % 4; pad > 0 {
		hamUnit = append(hamUnit, make([]byte, pad)...)
	}
	recoveredHam, err := cfg.encodeCopies("fig10-ham", hamUnit, maxCopies, 10)
	if err != nil {
		return nil, err
	}

	// Per-copy error statistics (the paper's 6.5% ± 0.68%).
	var mean, m2 float64
	for c := 0; c < maxCopies; c++ {
		e := stats.BitErrorRate(recovered[c*unitBytes:(c+1)*unitBytes], msg)
		delta := e - mean
		mean += delta / float64(c+1)
		m2 += delta * (e - mean)
	}
	res.SingleCopyMean = mean
	if maxCopies > 1 {
		res.SingleCopyStd = math.Sqrt(m2 / float64(maxCopies-1))
	}

	res.ZeroErrorAt = -1
	for _, n := range res.Copies {
		res.Theory = append(res.Theory, stats.RepetitionErrorRate(1-mean, n))

		voted := majorityAcrossCopies(recovered, unitBytes, n)
		repErr := stats.BitErrorRate(voted, msg)
		res.Repetition = append(res.Repetition, repErr)
		if repErr == 0 && res.ZeroErrorAt < 0 {
			res.ZeroErrorAt = n
		}

		votedHam := majorityAcrossCopies(recoveredHam, len(hamUnit), n)
		dec, err := ham.Decode(votedHam[:ham.EncodedLen(hamMsgBytes)], hamMsgBytes)
		if err != nil {
			return nil, err
		}
		res.RepetitionHam74 = append(res.RepetitionHam74, stats.BitErrorRate(dec, hamMsg))
	}
	return res, nil
}

// --- Fig. 15 ------------------------------------------------------------------

// Fig15Point is one (capacity, error) point for one device class.
type Fig15Point struct {
	Copies      int
	WithHamming bool
	CapacityPct float64
	Error       float64
}

// Fig15Result is the per-device error–capacity frontier.
type Fig15Result struct {
	Devices      []string
	SingleErrors []float64
	Points       [][]Fig15Point
}

// ID implements Result.
func (r *Fig15Result) ID() string { return "fig15" }

// Summary implements Result.
func (r *Fig15Result) Summary() string {
	return fmt.Sprintf("frontiers computed for %d devices from measured single-copy errors %v",
		len(r.Devices), formatPcts(r.SingleErrors))
}

func formatPcts(v []float64) string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = fmt.Sprintf("%.1f%%", 100*x)
	}
	return strings.Join(parts, "/")
}

// Render implements Result.
func (r *Fig15Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Fig. 15 — error and capacity trade-off (repetition copies × Hamming(7,4), Eq. 1)\n")
	series := make([]textplot.Series, len(r.Devices))
	for di, name := range r.Devices {
		fmt.Fprintf(&sb, "\n%s (measured single-copy error %.2f%%):\n", name, 100*r.SingleErrors[di])
		rows := make([][]string, 0, len(r.Points[di]))
		var xs, ys []float64
		for _, p := range r.Points[di] {
			code := fmt.Sprintf("rep(%d)", p.Copies)
			if p.WithHamming {
				code += "+(7,4)"
			}
			rows = append(rows, []string{code,
				fmt.Sprintf("%.1f%%", p.CapacityPct), textplot.Percent(p.Error)})
			xs = append(xs, p.CapacityPct)
			ys = append(ys, p.Error)
		}
		sb.WriteString(textplot.Table([]string{"code", "capacity", "error"}, rows))
		series[di] = textplot.Series{Name: r.Devices[di], X: xs, Y: ys}
	}
	sb.WriteByte('\n')
	sb.WriteString(textplot.Chart("error vs capacity", "capacity [%]", "error", series, 60, 14))
	return sb.String()
}

func runFig15(cfg Config) (Result, error) {
	res := &Fig15Result{}
	for _, m := range device.Table4Models() {
		// Measure the single-copy error at the device's own operating point.
		r, err := cfg.newRig(m.Name, "fig15")
		if err != nil {
			return nil, err
		}
		dev := r.Device()
		if _, err := dev.PowerOn(25); err != nil {
			return nil, err
		}
		payload := make([]byte, dev.SRAM.Bytes())
		rng.NewSource(15).Bytes(payload)
		if err := dev.SRAM.Write(payload); err != nil {
			return nil, err
		}
		if err := dev.StressBypassed(m.Accelerated(), m.EncodingHours); err != nil {
			return nil, err
		}
		maj, err := dev.SRAM.CaptureMajority(cfg.captures(), 25)
		if err != nil {
			return nil, err
		}
		p := stats.BitErrorRate(invert(maj), payload)

		// Bernoulli-trial frontier (the paper "simulate[s] Bernoulli trials
		// for different payload copies and Hamming(7,4)").
		var pts []Fig15Point
		for _, n := range []int{1, 3, 5, 7, 9, 11} {
			e := stats.RepetitionErrorRate(1-p, n)
			pts = append(pts, Fig15Point{Copies: n, CapacityPct: 100.0 / float64(n), Error: e})
			pts = append(pts, Fig15Point{
				Copies: n, WithHamming: true,
				CapacityPct: 100.0 * 4 / 7 / float64(n),
				Error:       stats.HammingResidual74(e),
			})
		}
		res.Devices = append(res.Devices, m.Name)
		res.SingleErrors = append(res.SingleErrors, p)
		res.Points = append(res.Points, pts)
	}
	return res, nil
}
