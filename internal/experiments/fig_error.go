package experiments

import (
	"fmt"
	"strings"

	"invisiblebits/internal/analog"
	"invisiblebits/internal/rng"
	"invisiblebits/internal/stats"
	"invisiblebits/internal/textplot"
)

func init() {
	register("fig6", "Encoding error vs stress time across five devices", "Fig. 6", runFig6)
	register("tab2", "Spatial autocorrelation before/after stress", "Table 2", runTable2)
	register("fig7", "Natural recovery over 14 shelved weeks", "Fig. 7", runFig7)
	register("sec514", "Message retention under a week of random writes", "§5.1.4", runSec514)
}

// encodeAndError encodes a random payload for stressHours and returns
// (payload, measured error).
func (c Config) encodeAndError(modelName, serial string, stressHours float64) ([]byte, float64, error) {
	r, err := c.newRig(modelName, serial)
	if err != nil {
		return nil, 0, err
	}
	dev := r.Device()
	if _, err := dev.PowerOn(25); err != nil {
		return nil, 0, err
	}
	payload := make([]byte, dev.SRAM.Bytes())
	rng.NewSource(rng.HashString(serial)).Bytes(payload)
	if err := dev.SRAM.Write(payload); err != nil {
		return nil, 0, err
	}
	if err := dev.StressBypassed(dev.Model.Accelerated(), stressHours); err != nil {
		return nil, 0, err
	}
	maj, err := dev.SRAM.CaptureMajority(c.captures(), 25)
	if err != nil {
		return nil, 0, err
	}
	return payload, stats.BitErrorRate(invert(maj), payload), nil
}

// --- Fig. 6 -------------------------------------------------------------------

// Fig6Result is the error-vs-stress-time sweep over five devices.
type Fig6Result struct {
	Hours    []float64
	Mean     []float64 // mean error across devices
	Min, Max []float64
	// PaperAnchor10h is the §5.2 reference: 6.5% at 10 h.
	PaperAnchor10h float64
}

// ID implements Result.
func (r *Fig6Result) ID() string { return "fig6" }

// Summary implements Result.
func (r *Fig6Result) Summary() string {
	last := len(r.Hours) - 1
	return fmt.Sprintf("error falls %.1f%%→%.1f%% from %gh to %gh (paper: ~33%%→6.5%%), logarithmic in time",
		100*r.Mean[0], 100*r.Mean[last], r.Hours[0], r.Hours[last])
}

// Render implements Result.
func (r *Fig6Result) Render() string {
	rows := make([][]string, len(r.Hours))
	for i := range r.Hours {
		rows[i] = []string{
			fmt.Sprintf("%g", r.Hours[i]),
			textplot.Percent(r.Mean[i]),
			textplot.Percent(r.Min[i]),
			textplot.Percent(r.Max[i]),
		}
	}
	var sb strings.Builder
	sb.WriteString("Fig. 6 — influence of stress time on error (5 MSP432 devices)\n\n")
	sb.WriteString(textplot.Table([]string{"stress [h]", "mean", "min", "max"}, rows))
	sb.WriteByte('\n')
	sb.WriteString(textplot.Chart("error vs stress time", "stress [h]", "error",
		[]textplot.Series{{Name: "mean", X: r.Hours, Y: r.Mean}}, 60, 12))
	return sb.String()
}

func runFig6(cfg Config) (Result, error) {
	hours := []float64{2, 3, 4, 5, 6, 7, 8, 9, 10}
	const devices = 5
	res := &Fig6Result{Hours: hours, PaperAnchor10h: 0.065}
	res.Mean = make([]float64, len(hours))
	res.Min = make([]float64, len(hours))
	res.Max = make([]float64, len(hours))
	for i := range res.Min {
		res.Min[i] = 1
	}

	for d := 0; d < devices; d++ {
		r, err := cfg.newRig("MSP432P401", fmt.Sprintf("fig6-%d", d))
		if err != nil {
			return nil, err
		}
		dev := r.Device()
		if _, err := dev.PowerOn(25); err != nil {
			return nil, err
		}
		payload := make([]byte, dev.SRAM.Bytes())
		rng.NewSource(uint64(1000 + d)).Bytes(payload)
		if err := dev.SRAM.Write(payload); err != nil {
			return nil, err
		}
		prev := 0.0
		for hi, h := range hours {
			// Incremental soak: stress composes (see analog tests), so one
			// device sweeps the whole time axis like the paper's.
			if err := dev.SRAM.Write(payload); err != nil {
				return nil, err
			}
			if err := dev.Stress(dev.Model.Accelerated(), h-prev); err != nil {
				return nil, err
			}
			prev = h
			maj, err := dev.SRAM.CaptureMajority(cfg.captures(), 25)
			if err != nil {
				return nil, err
			}
			e := stats.BitErrorRate(invert(maj), payload)
			res.Mean[hi] += e / devices
			if e < res.Min[hi] {
				res.Min[hi] = e
			}
			if e > res.Max[hi] {
				res.Max[hi] = e
			}
		}
	}
	return res, nil
}

// --- Table 2 ------------------------------------------------------------------

// Table2Row is one measurement of spatial autocorrelation.
type Table2Row struct {
	Condition string
	SRAM      int
	MoranI    float64
	PValue    float64
	Expected  float64
}

// Table2Result reproduces Table 2.
type Table2Result struct {
	Rows []Table2Row
}

// ID implements Result.
func (r *Table2Result) ID() string { return "tab2" }

// Summary implements Result.
func (r *Table2Result) Summary() string {
	maxI := 0.0
	for _, row := range r.Rows {
		if row.MoranI > maxI {
			maxI = row.MoranI
		}
	}
	return fmt.Sprintf("all Moran's I ≤ %.3f — power-on states and stress errors are spatially random (paper: 0.004–0.011)", maxI)
}

// Render implements Result.
func (r *Table2Result) Render() string {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{
			row.Condition, fmt.Sprintf("%d", row.SRAM),
			fmt.Sprintf("%.4f", row.MoranI), fmt.Sprintf("%.3g", row.PValue),
		}
	}
	return "Table 2 — spatial autocorrelation of power-on states / stress errors\n\n" +
		textplot.Table([]string{"condition", "SRAM", "Moran's I", "p-value"}, rows)
}

func runTable2(cfg Config) (Result, error) {
	res := &Table2Result{}

	// Unstressed devices: Moran's I of the raw power-on state.
	for i := 1; i <= 2; i++ {
		r, err := cfg.newRig("MSP432P401", fmt.Sprintf("tab2-clean%d", i))
		if err != nil {
			return nil, err
		}
		dev := r.Device()
		snap, err := dev.PowerOn(25)
		if err != nil {
			return nil, err
		}
		m, err := moranOfSnapshot(snap, dev.SRAM.Rows(), dev.SRAM.Cols())
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Table2Row{
			Condition: "Unstressed", SRAM: i, MoranI: m.I, PValue: m.PValue, Expected: m.Expected,
		})
	}

	// Stressed with a single logic value: Moran's I of the *error* map.
	for i, fill := range []byte{0xFF, 0x00} {
		r, err := cfg.newRig("MSP432P401", fmt.Sprintf("tab2-stress%d", i))
		if err != nil {
			return nil, err
		}
		dev := r.Device()
		if _, err := dev.PowerOn(25); err != nil {
			return nil, err
		}
		if err := dev.SRAM.Fill(fill); err != nil {
			return nil, err
		}
		if err := dev.Stress(dev.Model.Accelerated(), dev.Model.EncodingHours); err != nil {
			return nil, err
		}
		maj, err := dev.SRAM.CaptureMajority(cfg.captures(), 25)
		if err != nil {
			return nil, err
		}
		// Expected power-on state is the complement of the stressed value;
		// an error cell powered on to the stressed value itself.
		errBits := make([]byte, dev.SRAM.Cells())
		for b := 0; b < dev.SRAM.Cells(); b++ {
			got := maj[b/8]&(1<<(b%8)) != 0
			want := fill == 0x00 // all-0 stress → expect 1s
			if got != want {
				errBits[b] = 1
			}
		}
		m, err := stats.MoranIBits(errBits, dev.SRAM.Rows(), dev.SRAM.Cols())
		if err != nil {
			return nil, err
		}
		label := fmt.Sprintf("Stressed (logic = %d)", b2i(fill == 0xFF))
		res.Rows = append(res.Rows, Table2Row{
			Condition: label, SRAM: i + 1, MoranI: m.I, PValue: m.PValue, Expected: m.Expected,
		})
	}
	return res, nil
}

func moranOfSnapshot(snap []byte, rows, cols int) (stats.MoranResult, error) {
	bits := make([]byte, rows*cols)
	for i := range bits {
		if snap[i/8]&(1<<(i%8)) != 0 {
			bits[i] = 1
		}
	}
	return stats.MoranIBits(bits, rows, cols)
}

// --- Fig. 7 -------------------------------------------------------------------

// Fig7Result is the shelved-recovery sweep.
type Fig7Result struct {
	Weeks           []float64
	NormalizedError []float64 // error(t)/error(0)
	RecoveryRatePct []float64 // week-over-week change in error, %
	BaseError       float64
}

// ID implements Result.
func (r *Fig7Result) ID() string { return "fig7" }

// Summary implements Result.
func (r *Fig7Result) Summary() string {
	month := r.NormalizedError[4] // index 4 = week 4
	last := r.NormalizedError[len(r.NormalizedError)-1]
	return fmt.Sprintf("error ×%.2f after 4 weeks (paper ≈1.6×), ×%.2f at week 14 (paper ≈2.0×); rate decays", month, last)
}

// Render implements Result.
func (r *Fig7Result) Render() string {
	rows := make([][]string, len(r.Weeks))
	for i := range r.Weeks {
		rows[i] = []string{
			fmt.Sprintf("%g", r.Weeks[i]),
			fmt.Sprintf("%.3f", r.NormalizedError[i]),
			fmt.Sprintf("%.2f", r.RecoveryRatePct[i]),
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fig. 7 — natural recovery (base error %.2f%%)\n\n", 100*r.BaseError)
	sb.WriteString(textplot.Table([]string{"weeks", "normalized error", "recovery rate [%]"}, rows))
	sb.WriteByte('\n')
	sb.WriteString(textplot.Chart("normalized error vs shelf time", "weeks", "error / base",
		[]textplot.Series{{Name: "normalized", X: r.Weeks, Y: r.NormalizedError}}, 60, 12))
	return sb.String()
}

func runFig7(cfg Config) (Result, error) {
	r, err := cfg.newRig("MSP432P401", "fig7")
	if err != nil {
		return nil, err
	}
	dev := r.Device()
	if _, err := dev.PowerOn(25); err != nil {
		return nil, err
	}
	payload := make([]byte, dev.SRAM.Bytes())
	rng.NewSource(77).Bytes(payload)
	if err := dev.SRAM.Write(payload); err != nil {
		return nil, err
	}
	if err := dev.Stress(dev.Model.Accelerated(), dev.Model.EncodingHours); err != nil {
		return nil, err
	}

	res := &Fig7Result{}
	measure := func() (float64, error) {
		maj, err := dev.SRAM.CaptureMajority(cfg.captures(), 25)
		if err != nil {
			return 0, err
		}
		dev.PowerOff(true)
		return stats.BitErrorRate(invert(maj), payload), nil
	}
	base, err := measure()
	if err != nil {
		return nil, err
	}
	res.BaseError = base

	prevErr := base
	for week := 0; week <= 14; week++ {
		if week > 0 {
			if err := dev.Shelve(7 * 24); err != nil {
				return nil, err
			}
		}
		e, err := measure()
		if err != nil {
			return nil, err
		}
		res.Weeks = append(res.Weeks, float64(week))
		res.NormalizedError = append(res.NormalizedError, e/base)
		res.RecoveryRatePct = append(res.RecoveryRatePct, 100*(e-prevErr)/base)
		prevErr = e
	}
	return res, nil
}

// --- §5.1.4 -------------------------------------------------------------------

// Sec514Result compares error growth under normal operation vs shelf.
type Sec514Result struct {
	BaseError       float64
	OperationFactor float64 // after one week of pseudo-random writes
	ShelfFactor     float64 // after one week shelved
}

// ID implements Result.
func (r *Sec514Result) ID() string { return "sec514" }

// Summary implements Result.
func (r *Sec514Result) Summary() string {
	return fmt.Sprintf("1 week of random writes: ×%.2f error (paper ≈1.2×) vs ×%.2f shelved (paper ≈1.4×) — operation is gentler",
		r.OperationFactor, r.ShelfFactor)
}

// Render implements Result.
func (r *Sec514Result) Render() string {
	return "§5.1.4 — effect of normal operation\n\n" + textplot.Table(
		[]string{"condition", "error factor after 1 week", "paper"},
		[][]string{
			{"continuous pseudo-random writes (LFSR+LCG)", fmt.Sprintf("%.2fx", r.OperationFactor), "≈1.2x"},
			{"shelved (natural recovery)", fmt.Sprintf("%.2fx", r.ShelfFactor), "≈1.4x"},
		})
}

func runSec514(cfg Config) (Result, error) {
	// Operation device.
	rOp, err := cfg.newRig("MSP432P401", "sec514-op")
	if err != nil {
		return nil, err
	}
	devOp := rOp.Device()
	if _, err := devOp.PowerOn(25); err != nil {
		return nil, err
	}
	payload := make([]byte, devOp.SRAM.Bytes())
	rng.NewSource(514).Bytes(payload)
	if err := devOp.SRAM.Write(payload); err != nil {
		return nil, err
	}
	if err := devOp.Stress(devOp.Model.Accelerated(), devOp.Model.EncodingHours); err != nil {
		return nil, err
	}
	maj, err := devOp.SRAM.CaptureMajority(cfg.captures(), 25)
	if err != nil {
		return nil, err
	}
	base := stats.BitErrorRate(invert(maj), payload)

	w := rng.NewWorkloadWriter(0x514, 0)
	nominal := analog.Conditions{VoltageV: devOp.Model.VNomV, TempC: devOp.Model.TNomC}
	if err := devOp.SRAM.OperateRandom(w, nominal, 7*24, 4); err != nil {
		return nil, err
	}
	maj, err = devOp.SRAM.CaptureMajority(cfg.captures(), 25)
	if err != nil {
		return nil, err
	}
	opErr := stats.BitErrorRate(invert(maj), payload)

	// Shelf device (same silicon, same payload, same encode).
	rSh, err := cfg.newRig("MSP432P401", "sec514-op")
	if err != nil {
		return nil, err
	}
	devSh := rSh.Device()
	if _, err := devSh.PowerOn(25); err != nil {
		return nil, err
	}
	if err := devSh.SRAM.Write(payload); err != nil {
		return nil, err
	}
	if err := devSh.Stress(devSh.Model.Accelerated(), devSh.Model.EncodingHours); err != nil {
		return nil, err
	}
	majB, err := devSh.SRAM.CaptureMajority(cfg.captures(), 25)
	if err != nil {
		return nil, err
	}
	baseSh := stats.BitErrorRate(invert(majB), payload)
	devSh.PowerOff(true)
	if err := devSh.Shelve(7 * 24); err != nil {
		return nil, err
	}
	majB, err = devSh.SRAM.CaptureMajority(cfg.captures(), 25)
	if err != nil {
		return nil, err
	}
	shErr := stats.BitErrorRate(invert(majB), payload)

	return &Sec514Result{
		BaseError:       base,
		OperationFactor: opErr / base,
		ShelfFactor:     shErr / baseSh,
	}, nil
}
