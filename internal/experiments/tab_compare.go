package experiments

import (
	"fmt"
	"strings"

	"invisiblebits/internal/analog"
	"invisiblebits/internal/device"
	"invisiblebits/internal/flash"
	"invisiblebits/internal/flashsteg"
	"invisiblebits/internal/rng"
	"invisiblebits/internal/stats"
	"invisiblebits/internal/textplot"
)

func init() {
	register("tab3", "Qualitative comparison + rewrite-resilience experiment", "Table 3", runTable3)
	register("tab4", "Per-device encoding summary", "Table 4", runTable4)
	register("sec53", "Capacity vs Flash-based hiding (100x claim)", "§5.3", runSec53)
	register("sec74", "Adversarial aging noise injection and repair", "§7.4", runSec74)
}

// --- Table 3 ------------------------------------------------------------------

// Table3Result pairs the paper's qualitative claims with the measured
// rewrite-resilience experiment that grounds the "resilience" column.
type Table3Result struct {
	// Survived-rewrite error rates for each scheme's hidden message.
	ZuckErrAfterRewrite float64
	WangErrAfterRewrite float64
	IBErrAfterRewrite   float64 // Invisible Bits after full SRAM rewrite workload
	IBBaseErr           float64
}

// ID implements Result.
func (r *Table3Result) ID() string { return "tab3" }

// Summary implements Result.
func (r *Table3Result) Summary() string {
	return fmt.Sprintf("after adversary rewrite: Zuck loses message (%.0f%% err), Invisible Bits keeps it (%.1f%%→%.1f%%)",
		100*r.ZuckErrAfterRewrite, 100*r.IBBaseErr, 100*r.IBErrAfterRewrite)
}

// Render implements Result.
func (r *Table3Result) Render() string {
	qual := textplot.Table(
		[]string{"method", "ubiquity", "capacity", "resilience", "read stable"},
		[][]string{
			{"Zuck et al. (Flash Vt)", "fair", "poor (0.1%)", "poor (rewrite erases)", "good"},
			{"Wang et al. (Flash prog-time)", "fair", "poor (0.05%)", "fair (capacity-bound)", "fair"},
			{"Invisible Bits (SRAM aging)", "good (all SRAM devices)", "good (>90%)", "good (survives rewrite+shelf)", "good"},
		})
	meas := textplot.Table(
		[]string{"scheme", "hidden-message error after adversary rewrite"},
		[][]string{
			{"Zuck et al.", textplot.Percent(r.ZuckErrAfterRewrite)},
			{"Wang et al.", textplot.Percent(r.WangErrAfterRewrite)},
			{"Invisible Bits", fmt.Sprintf("%s (base %s)", textplot.Percent(r.IBErrAfterRewrite), textplot.Percent(r.IBBaseErr))},
		})
	return "Table 3 — on-chip information-hiding comparison\n\n" + qual +
		"\nmeasured rewrite-attack resilience:\n" + meas
}

func runTable3(cfg Config) (Result, error) {
	res := &Table3Result{}

	// Zuck baseline: encode, rewrite attack, decode.
	fspec := flash.DefaultSpec()
	fspec.PageBytes, fspec.Pages = 512, 512
	fz, err := flash.New(fspec)
	if err != nil {
		return nil, err
	}
	zuck, err := flashsteg.NewZuck(fz, 33)
	if err != nil {
		return nil, err
	}
	cover := make([]byte, 64<<10)
	rng.NewSource(3).Bytes(cover)
	zmsg := make([]byte, 64)
	rng.NewSource(4).Bytes(zmsg)
	if err := zuck.EncodeWithCover(cover, zmsg); err != nil {
		return nil, err
	}
	if err := flashsteg.RewriteAttack(fz, len(cover)); err != nil {
		return nil, err
	}
	zgot, err := zuck.Decode(len(cover), len(zmsg))
	if err != nil {
		return nil, err
	}
	res.ZuckErrAfterRewrite = stats.BitErrorRate(zgot, zmsg)

	// Wang baseline: wear survives a data rewrite.
	fspec.Seed = 7
	fw, err := flash.New(fspec)
	if err != nil {
		return nil, err
	}
	wang, err := flashsteg.NewWang(fw, 5)
	if err != nil {
		return nil, err
	}
	wmsg := make([]byte, 64)
	rng.NewSource(5).Bytes(wmsg)
	if err := wang.Encode(wmsg); err != nil {
		return nil, err
	}
	if err := flashsteg.RewriteAttack(fw, 32<<10); err != nil {
		return nil, err
	}
	wgot, err := wang.Decode(len(wmsg))
	if err != nil {
		return nil, err
	}
	res.WangErrAfterRewrite = stats.BitErrorRate(wgot, wmsg)

	// Invisible Bits: the adversary "can inspect, copy, overwrite, and
	// erase its digital contents" (§3) — model as overwriting the whole
	// SRAM repeatedly for an hour at nominal, then decode.
	r, err := cfg.newRig("MSP432P401", "tab3")
	if err != nil {
		return nil, err
	}
	dev := r.Device()
	if _, err := dev.PowerOn(25); err != nil {
		return nil, err
	}
	payload := make([]byte, dev.SRAM.Bytes())
	rng.NewSource(6).Bytes(payload)
	if err := dev.SRAM.Write(payload); err != nil {
		return nil, err
	}
	if err := dev.Stress(dev.Model.Accelerated(), dev.Model.EncodingHours); err != nil {
		return nil, err
	}
	maj, err := dev.SRAM.CaptureMajority(cfg.captures(), 25)
	if err != nil {
		return nil, err
	}
	res.IBBaseErr = stats.BitErrorRate(invert(maj), payload)

	w := rng.NewWorkloadWriter(0x7ab3, 0)
	nominal := analog.Conditions{VoltageV: dev.Model.VNomV, TempC: dev.Model.TNomC}
	if err := dev.SRAM.OperateRandom(w, nominal, 1, 0.25); err != nil {
		return nil, err
	}
	maj, err = dev.SRAM.CaptureMajority(cfg.captures(), 25)
	if err != nil {
		return nil, err
	}
	res.IBErrAfterRewrite = stats.BitErrorRate(invert(maj), payload)
	return res, nil
}

// --- Table 4 ------------------------------------------------------------------

// Table4Row is one device's measured operating point.
type Table4Row struct {
	Device        string
	SRAMUsage     string
	VAcc          float64
	TAcc          float64
	BitRate       float64
	PaperBitRate  float64
	EncodingHours float64
}

// Table4Result reproduces Table 4.
type Table4Result struct {
	Rows []Table4Row
}

// ID implements Result.
func (r *Table4Result) ID() string { return "tab4" }

// Summary implements Result.
func (r *Table4Result) Summary() string {
	worst := 0.0
	for _, row := range r.Rows {
		d := row.BitRate - row.PaperBitRate
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	return fmt.Sprintf("all four devices within %.1f pp of the paper's bit rates", 100*worst)
}

// Render implements Result.
func (r *Table4Result) Render() string {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{
			row.Device, row.SRAMUsage,
			fmt.Sprintf("%.1fV", row.VAcc), fmt.Sprintf("%.0f°C", row.TAcc),
			fmt.Sprintf("%.1f%%", 100*row.BitRate),
			fmt.Sprintf("%.1f%%", 100*row.PaperBitRate),
			fmt.Sprintf("%g hours", row.EncodingHours),
		}
	}
	return "Table 4 — per-device encoding summary\n\n" + textplot.Table(
		[]string{"device", "SRAM usage", "V_acc", "T_acc", "bit rate (measured)", "bit rate (paper)", "encoding time"}, rows)
}

func runTable4(cfg Config) (Result, error) {
	res := &Table4Result{}
	for _, m := range device.Table4Models() {
		r, err := cfg.newRig(m.Name, "tab4")
		if err != nil {
			return nil, err
		}
		dev := r.Device()
		if _, err := dev.PowerOn(25); err != nil {
			return nil, err
		}
		payload := make([]byte, dev.SRAM.Bytes())
		rng.NewSource(rng.HashString(m.Name)).Bytes(payload)
		if err := dev.SRAM.Write(payload); err != nil {
			return nil, err
		}
		if err := dev.StressBypassed(m.Accelerated(), m.EncodingHours); err != nil {
			return nil, err
		}
		maj, err := dev.SRAM.CaptureMajority(cfg.captures(), 25)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Table4Row{
			Device:        m.Name,
			SRAMUsage:     string(m.SRAMRole),
			VAcc:          m.VAccV,
			TAcc:          m.TAccC,
			BitRate:       1 - stats.BitErrorRate(invert(maj), payload),
			PaperBitRate:  m.TargetBitRate,
			EncodingHours: m.EncodingHours,
		})
	}
	return res, nil
}

// --- §5.3 ---------------------------------------------------------------------

// Sec53Result quantifies the capacity comparison.
type Sec53Result struct {
	FlashBytes       int
	SRAMBytes        int
	WangCapacity     int     // bytes
	ZuckCapacity     int     // bytes
	IB5CopyCapacity  int     // bytes at <0.3% error (5-copy repetition)
	IB5CopyError     float64 // residual error at 5 copies (Eq. 1 on measured p)
	BestDeviceError  float64 // best-of-fleet single-copy error (§5.3's 2.7%)
	IB3CopyCapacity  int     // bytes on the best device with 3 copies
	IB3CopyError     float64
	FactorVsWang5    float64
	FactorVsWangBest float64
}

// ID implements Result.
func (r *Sec53Result) ID() string { return "sec53" }

// Summary implements Result.
func (r *Sec53Result) Summary() string {
	return fmt.Sprintf("Invisible Bits hides %.0fx more than the Flash program-time method (paper: 100x); best-device case %.0fx (paper: 160x)",
		r.FactorVsWang5, r.FactorVsWangBest)
}

// Render implements Result.
func (r *Sec53Result) Render() string {
	return "§5.3 — capacity comparison (MSP432P401: 256 KB Flash, 64 KB SRAM)\n\n" + textplot.Table(
		[]string{"scheme", "capacity", "residual error"},
		[][]string{
			{"Wang et al. (program time)", fmt.Sprintf("%d B", r.WangCapacity), "<0.3%"},
			{"Zuck et al. (voltage level)", fmt.Sprintf("%d B", r.ZuckCapacity), "<0.3%"},
			{"Invisible Bits, 5-copy repetition", fmt.Sprintf("%d B", r.IB5CopyCapacity), textplot.Percent(r.IB5CopyError)},
			{"Invisible Bits, best device + 3 copies", fmt.Sprintf("%d B", r.IB3CopyCapacity), textplot.Percent(r.IB3CopyError)},
		}) + fmt.Sprintf("\ncapacity factors vs Wang: %.0fx (5-copy), %.0fx (best device)\n",
		r.FactorVsWang5, r.FactorVsWangBest)
}

func runSec53(cfg Config) (Result, error) {
	msp, err := device.ByName("MSP432P401")
	if err != nil {
		return nil, err
	}
	res := &Sec53Result{FlashBytes: msp.FlashBytes, SRAMBytes: msp.SRAMBytes}

	fspec := flash.DefaultSpec()
	fspec.PageBytes = 512
	fspec.Pages = msp.FlashBytes / fspec.PageBytes
	f, err := flash.New(fspec)
	if err != nil {
		return nil, err
	}
	wang, err := flashsteg.NewWang(f, 1)
	if err != nil {
		return nil, err
	}
	zuck, err := flashsteg.NewZuck(f, 1)
	if err != nil {
		return nil, err
	}
	res.WangCapacity = wang.CapacityBytes()
	res.ZuckCapacity = zuck.CapacityBytes()

	// Measure the fleet's single-copy errors; best device drives the
	// §5.3 "encode many devices and select the one with the least error"
	// argument.
	best := 1.0
	var meanErr float64
	const fleet = 5
	for i := 0; i < fleet; i++ {
		_, e, err := cfg.encodeAndError("MSP432P401", fmt.Sprintf("sec53-%d", i), msp.EncodingHours)
		if err != nil {
			return nil, err
		}
		meanErr += e / fleet
		if e < best {
			best = e
		}
	}
	res.BestDeviceError = best

	res.IB5CopyCapacity = msp.SRAMBytes / 5
	res.IB5CopyError = stats.RepetitionErrorRate(1-meanErr, 5)

	res.IB3CopyCapacity = msp.SRAMBytes / 3
	res.IB3CopyError = stats.RepetitionErrorRate(1-best, 3)

	res.FactorVsWang5 = float64(res.IB5CopyCapacity) / float64(res.WangCapacity)
	res.FactorVsWangBest = float64(res.IB3CopyCapacity) / float64(res.WangCapacity)
	return res, nil
}

// --- §7.4 ---------------------------------------------------------------------

// Sec74Result is the adversarial-aging experiment.
type Sec74Result struct {
	BaseError        float64
	AfterAttack      float64
	AttackFactor     float64 // paper: ≈1.12x
	AfterRepair      float64
	RepairFactor     float64 // paper: ≈0.98x
	AttackConditions analog.Conditions
	RepairConditions analog.Conditions
}

// ID implements Result.
func (r *Sec74Result) ID() string { return "sec74" }

// Summary implements Result.
func (r *Sec74Result) Summary() string {
	return fmt.Sprintf("adversarial 1h aging: ×%.2f error (paper 1.12×); receiver re-aging 1.5h: ×%.2f (paper 0.98×)",
		r.AttackFactor, r.RepairFactor)
}

// Render implements Result.
func (r *Sec74Result) Render() string {
	return "§7.4 — adversarial aging to inject noise\n\n" + textplot.Table(
		[]string{"phase", "error", "factor", "conditions"},
		[][]string{
			{"encoded baseline", textplot.Percent(r.BaseError), "1.00x", "-"},
			{"after adversary ages 1h holding power-on state", textplot.Percent(r.AfterAttack),
				fmt.Sprintf("%.2fx", r.AttackFactor), r.AttackConditions.String()},
			{"after receiver re-encodes 1.5h", textplot.Percent(r.AfterRepair),
				fmt.Sprintf("%.2fx", r.RepairFactor), r.RepairConditions.String()},
		}) + strings.TrimLeft(`
interpretation: the adversary lacks a thermal chamber and the firmware
access to set SRAM precisely, so the attack runs at elevated voltage but
room temperature; the receiving party first decodes the message (ECC
removes channel errors), re-derives the exact payload, and re-encodes it
at full acceleration (§7.4: "The receiving party can reduce the impact of
noise by aging it in a similar way").
`, "\n")
}

func runSec74(cfg Config) (Result, error) {
	r, err := cfg.newRig("MSP432P401", "sec74")
	if err != nil {
		return nil, err
	}
	dev := r.Device()
	if _, err := dev.PowerOn(25); err != nil {
		return nil, err
	}
	payload := make([]byte, dev.SRAM.Bytes())
	rng.NewSource(74).Bytes(payload)
	if err := dev.SRAM.Write(payload); err != nil {
		return nil, err
	}
	if err := dev.Stress(dev.Model.Accelerated(), dev.Model.EncodingHours); err != nil {
		return nil, err
	}
	measure := func() (float64, error) {
		maj, err := dev.SRAM.CaptureMajority(cfg.captures(), 25)
		if err != nil {
			return 0, err
		}
		return stats.BitErrorRate(invert(maj), payload), nil
	}
	base, err := measure()
	if err != nil {
		return nil, err
	}

	// Attack: hold the power-on state (maximally destructive per §7.4)
	// for one hour at elevated voltage, room temperature.
	attack := analog.Conditions{VoltageV: dev.Model.VAccV, TempC: 25}
	snap, err := dev.SRAM.PowerCycle(25)
	if err != nil {
		return nil, err
	}
	if err := dev.SRAM.Write(snap); err != nil {
		return nil, err
	}
	if err := dev.Stress(attack, 1); err != nil {
		return nil, err
	}
	afterAttack, err := measure()
	if err != nil {
		return nil, err
	}

	// Repair: §7.4 — "The receiving party can reduce the impact of noise
	// by aging it in a similar way", returning the error to ≈0.98× after
	// 1.5 h. The receiver first decodes the message (ECC removes the
	// channel errors), re-derives the exact payload, and re-encodes it for
	// 1.5 h at full acceleration: every cell is then held at its correct
	// value, so the adversary's freshly flipped marginal cells are pushed
	// back across the decision boundary while settled cells only gain
	// margin. (Blind re-aging with the observed power-on state cannot
	// restore under our calibrated week-scale recovery physics — see
	// EXPERIMENTS.md for the deviation note.)
	repair := dev.Model.Accelerated()
	if err := dev.SRAM.Write(payload); err != nil {
		return nil, err
	}
	if err := dev.Stress(repair, 1.5); err != nil {
		return nil, err
	}
	afterRepair, err := measure()
	if err != nil {
		return nil, err
	}

	return &Sec74Result{
		BaseError:        base,
		AfterAttack:      afterAttack,
		AttackFactor:     afterAttack / base,
		AfterRepair:      afterRepair,
		RepairFactor:     afterRepair / base,
		AttackConditions: attack,
		RepairConditions: repair,
	}, nil
}
