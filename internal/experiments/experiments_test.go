package experiments

import (
	"strings"
	"testing"
)

// testConfig uses small arrays so the whole suite stays fast while the
// per-cell statistics remain tight enough for the acceptance bands.
func testConfig() Config {
	return Config{SRAMLimitBytes: 4 << 10, Captures: 5, FleetSeed: "test"}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig1", "fig2", "fig3", "fig6", "fig7", "fig8", "fig9", "fig10",
		"fig11", "fig12", "fig14", "fig15",
		"tab2", "tab3", "tab4", "tab5",
		"sec514", "sec53", "sec6", "sec74",
		"modelcheck", "fwop",
		"abl-captures", "abl-eccorder", "abl-cipher", "abl-soft",
	}
	got := map[string]bool{}
	for _, info := range List() {
		got[info.ID] = true
		if info.Title == "" || info.PaperRef == "" {
			t.Errorf("%s: missing metadata", info.ID)
		}
	}
	for _, id := range want {
		if !got[id] {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if len(got) != len(want) {
		t.Errorf("registry has %d entries, want %d", len(got), len(want))
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("fig99", testConfig()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

// runAndRender executes one experiment and sanity-checks its Result
// plumbing (ID, summary, render).
func runAndRender(t *testing.T, id string) Result {
	t.Helper()
	res, err := Run(id, testConfig())
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if res.ID() != id {
		t.Errorf("result ID = %q, want %q", res.ID(), id)
	}
	if res.Summary() == "" {
		t.Errorf("%s: empty summary", id)
	}
	if len(res.Render()) < 40 {
		t.Errorf("%s: render too short:\n%s", id, res.Render())
	}
	return res
}

func TestFig1ImageVisibleAndEncryptedHidden(t *testing.T) {
	res := runAndRender(t, "fig1").(*Fig1Result)
	if res.ReceivedError > 0.02 {
		t.Errorf("received image pixel error %v, want near 0", res.ReceivedError)
	}
	if res.RawError > 0.25 {
		t.Errorf("raw encoded image error %v — message not visible", res.RawError)
	}
	if res.EncBias < 0.47 || res.EncBias > 0.53 {
		t.Errorf("encrypted window bias %v, want ≈0.5", res.EncBias)
	}
}

func TestFig2RaceFlips(t *testing.T) {
	res := runAndRender(t, "fig2").(*Fig2Result)
	if !res.PreState || res.PostState {
		t.Errorf("race did not flip: pre=%v post=%v", res.PreState, res.PostState)
	}
	if !res.Pre.Resolved || !res.Post.Resolved {
		t.Error("transients did not resolve")
	}
}

func TestFig3KnobOrdering(t *testing.T) {
	res := runAndRender(t, "fig3").(*Fig3Result)
	last := len(res.StressHrs) - 1
	nom := res.PctOnes[0][last]  // 1.2V/25°C
	temp := res.PctOnes[1][last] // 1.2V/85°C
	volt := res.PctOnes[2][last] // 3.3V/25°C
	both := res.PctOnes[3][last] // 3.3V/85°C
	// All-1s written → aging pushes toward 0; stronger conditions → fewer 1s.
	if !(both < volt && volt < nom && both < temp && temp <= nom+1) {
		t.Errorf("acceleration ordering violated: nom=%.1f temp=%.1f volt=%.1f both=%.1f",
			nom, temp, volt, both)
	}
	// Fig. 3d: voltage is the dominant knob.
	if volt >= temp {
		t.Errorf("voltage knob (%v%% 1s) should out-age temperature knob (%v%% 1s)", volt, temp)
	}
	// Nominal barely moves.
	if nom < 45 {
		t.Errorf("nominal conditions aged too much: %v%% 1s", nom)
	}
	// Histograms: unaged is U-shaped, stressed shifts mass to one side.
	first, lastBin := res.HistUnaged[0], res.HistUnaged[len(res.HistUnaged)-1]
	if first < 0.3 || lastBin < 0.3 {
		t.Errorf("unaged histogram not U-shaped: %v", res.HistUnaged)
	}
	if res.HistAfter0[len(res.HistAfter0)-1] < 0.55 {
		t.Errorf("all-0 stress did not pile mass at bias 1: %v", res.HistAfter0)
	}
	if res.HistAfter1[0] < 0.55 {
		t.Errorf("all-1 stress did not pile mass at bias 0: %v", res.HistAfter1)
	}
}

func TestFig6ShapeAndAnchor(t *testing.T) {
	res := runAndRender(t, "fig6").(*Fig6Result)
	for i := 1; i < len(res.Mean); i++ {
		if res.Mean[i] >= res.Mean[i-1] {
			t.Errorf("error not monotone at %gh: %v -> %v",
				res.Hours[i], res.Mean[i-1], res.Mean[i])
		}
	}
	last := len(res.Mean) - 1
	if res.Mean[last] < 0.045 || res.Mean[last] > 0.085 {
		t.Errorf("10h error = %v, want ≈0.065", res.Mean[last])
	}
	if res.Mean[0] < 0.25 || res.Mean[0] > 0.40 {
		t.Errorf("2h error = %v, want ≈0.33", res.Mean[0])
	}
	for i := range res.Mean {
		if res.Min[i] > res.Mean[i] || res.Max[i] < res.Mean[i] {
			t.Errorf("min/mean/max inconsistent at %gh", res.Hours[i])
		}
	}
}

func TestTable2SpatialRandomness(t *testing.T) {
	res := runAndRender(t, "tab2").(*Table2Result)
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.MoranI < -0.01 || row.MoranI > 0.05 {
			t.Errorf("%s SRAM %d: Moran's I = %v, want ~0.00-0.01", row.Condition, row.SRAM, row.MoranI)
		}
	}
}

func TestFig7RecoveryShape(t *testing.T) {
	res := runAndRender(t, "fig7").(*Fig7Result)
	if len(res.Weeks) != 15 {
		t.Fatalf("weeks = %d", len(res.Weeks))
	}
	week1 := res.NormalizedError[1]
	week4 := res.NormalizedError[4]
	week14 := res.NormalizedError[14]
	if week1 < 1.15 || week1 > 1.65 {
		t.Errorf("1-week factor = %v, want ≈1.4", week1)
	}
	if week4 < 1.35 || week4 > 1.95 {
		t.Errorf("4-week factor = %v, want ≈1.6", week4)
	}
	if week14 < 1.6 || week14 > 2.4 {
		t.Errorf("14-week factor = %v, want ≈2.0", week14)
	}
	// Error stays within ~10% absolute after a month (§5.1.3).
	if res.BaseError*week4 > 0.12 {
		t.Errorf("absolute month error = %v", res.BaseError*week4)
	}
	// Recovery rate decays: first interval's rate larger than the last's.
	if res.RecoveryRatePct[1] <= res.RecoveryRatePct[14] {
		t.Errorf("recovery rate did not decay: %v vs %v",
			res.RecoveryRatePct[1], res.RecoveryRatePct[14])
	}
}

func TestSec514OperationGentlerThanShelf(t *testing.T) {
	res := runAndRender(t, "sec514").(*Sec514Result)
	if res.OperationFactor < 1.0 || res.OperationFactor > 1.45 {
		t.Errorf("operation factor = %v, want ≈1.2", res.OperationFactor)
	}
	if res.ShelfFactor < 1.15 || res.ShelfFactor > 1.65 {
		t.Errorf("shelf factor = %v, want ≈1.4", res.ShelfFactor)
	}
	if res.OperationFactor >= res.ShelfFactor {
		t.Errorf("operation (%v) should be gentler than shelf (%v)",
			res.OperationFactor, res.ShelfFactor)
	}
}

func TestFig8MonotoneCleanup(t *testing.T) {
	res := runAndRender(t, "fig8").(*Fig8Result)
	for i := 1; i < len(res.Errors); i++ {
		if res.Errors[i] > res.Errors[i-1] {
			t.Errorf("pixel error increased at %d copies: %v -> %v",
				res.Copies[i], res.Errors[i-1], res.Errors[i])
		}
	}
	if res.Errors[len(res.Errors)-1] > 0.02 {
		t.Errorf("7-copy image error = %v, want near 0", res.Errors[len(res.Errors)-1])
	}
}

func TestFig9BothKnobsHelp(t *testing.T) {
	res := runAndRender(t, "fig9").(*Fig9Result)
	// More copies help at every stress time.
	for hi := range res.Hours {
		first, last := res.Errors[hi][0], res.Errors[hi][len(res.Copies)-1]
		if last >= first {
			t.Errorf("%gh: copies did not reduce error (%v -> %v)", res.Hours[hi], first, last)
		}
	}
	// More stress time helps at single copy.
	if !(res.Errors[2][0] < res.Errors[1][0] && res.Errors[1][0] < res.Errors[0][0]) {
		t.Errorf("stress time did not reduce single-copy error: %v %v %v",
			res.Errors[0][0], res.Errors[1][0], res.Errors[2][0])
	}
}

func TestFig10TheoryTracksMeasurement(t *testing.T) {
	res := runAndRender(t, "fig10").(*Fig10Result)
	if res.SingleCopyMean < 0.045 || res.SingleCopyMean > 0.09 {
		t.Errorf("single-copy error = %v, want ≈0.065", res.SingleCopyMean)
	}
	// Repetition closely follows Eq. 1 (§5.2). Compare at 3–9 copies where
	// both are well away from zero.
	for i, n := range res.Copies {
		if n < 3 || n > 9 {
			continue
		}
		th, ms := res.Theory[i], res.Repetition[i]
		if ms > th*2+0.005 || ms < th/2-0.005 {
			t.Errorf("%d copies: measured %v vs theory %v", n, ms, th)
		}
	}
	// Repetition alone reaches zero within 17 copies (paper: 13).
	if res.ZeroErrorAt < 0 || res.ZeroErrorAt > 17 {
		t.Errorf("repetition never reached zero (at %d)", res.ZeroErrorAt)
	}
	// Hamming+repetition at 5 copies beats plain repetition at 5 copies.
	idx5 := -1
	for i, n := range res.Copies {
		if n == 5 {
			idx5 = i
		}
	}
	if res.RepetitionHam74[idx5] > res.Repetition[idx5] {
		t.Errorf("ham+rep (%v) worse than rep (%v) at 5 copies",
			res.RepetitionHam74[idx5], res.Repetition[idx5])
	}
}

func TestFig11PlaintextDetectableEncryptedNot(t *testing.T) {
	res := runAndRender(t, "fig11").(*Fig11Result)
	mid := float64(res.BlockBits) / 2
	dist := func(m float64) float64 {
		if m < mid {
			return mid - m
		}
		return m - mid
	}
	if dist(res.MeanNone) > 2 {
		t.Errorf("clean mean HW = %v, want ≈%v", res.MeanNone, mid)
	}
	if dist(res.MeanEncrypted) > 2 {
		t.Errorf("encrypted mean HW = %v, want ≈%v", res.MeanEncrypted, mid)
	}
	if dist(res.MeanPlain) < 3 {
		t.Errorf("plain-text mean HW = %v — should be visibly shifted", res.MeanPlain)
	}
}

func TestFig12EntropySignature(t *testing.T) {
	res := runAndRender(t, "fig12").(*Fig12Result)
	if res.NormNone < 0.0305 || res.NormNone > 0.03125 {
		t.Errorf("clean normalized entropy = %v, paper 0.0312", res.NormNone)
	}
	if res.NormEncrypted < 0.0305 {
		t.Errorf("encrypted normalized entropy = %v, paper 0.0312", res.NormEncrypted)
	}
	if res.NormPlain > res.NormNone-0.004 {
		t.Errorf("plain-text entropy %v insufficiently below clean %v", res.NormPlain, res.NormNone)
	}
}

func TestTable5Deniability(t *testing.T) {
	res := runAndRender(t, "tab5").(*Table5Result)
	if len(res.Rows) != 11 {
		t.Fatalf("rows = %d, Table 5 has 11 chips", len(res.Rows))
	}
	for _, row := range res.Rows {
		switch {
		case strings.Contains(row.Condition, "no encryption"):
			if row.MoranI < 0.15 {
				t.Errorf("plain-text Moran's I = %v, want strongly positive (paper 0.4-0.5)", row.MoranI)
			}
			if row.MeanBias < 0.52 {
				t.Errorf("plain-text bias = %v, want > 0.52 (paper 0.535)", row.MeanBias)
			}
		case strings.Contains(row.Condition, "encrypted"):
			if row.MoranI > 0.02 {
				t.Errorf("encrypted Moran's I = %v, want < 0.02", row.MoranI)
			}
			if row.MeanBias < 0.49 || row.MeanBias > 0.51 {
				t.Errorf("encrypted bias = %v, want ≈0.5", row.MeanBias)
			}
		default: // clean
			if row.MoranI > 0.02 {
				t.Errorf("clean Moran's I = %v", row.MoranI)
			}
		}
	}
}

func TestWelchCannotRejectNull(t *testing.T) {
	res := runAndRender(t, "sec6").(*WelchResult)
	if res.RejectNull {
		t.Errorf("Welch test rejected the null (p=%v) — encrypted devices distinguishable", res.Test.POneTailed)
	}
}

func TestFig14SnapshotsIndistinguishable(t *testing.T) {
	res := runAndRender(t, "fig14").(*Fig14Result)
	if len(res.Snapshots) != 6 {
		t.Fatalf("snapshots = %d", len(res.Snapshots))
	}
	if res.MaxMoranI > 0.02 {
		t.Errorf("max Moran's I across snapshots = %v, paper keeps < 0.01", res.MaxMoranI)
	}
	// Drift between m1 and later snapshots stays within a few percent of
	// bits — comparable to back-to-back measurement noise amplified by
	// early recovery.
	for _, s := range res.Snapshots[2:] {
		if s.DiffBits > 0.06 {
			t.Errorf("%s: %v of bits changed — too revealing", s.Label, s.DiffBits)
		}
	}
}

func TestFig15Frontier(t *testing.T) {
	res := runAndRender(t, "fig15").(*Fig15Result)
	if len(res.Devices) != 4 {
		t.Fatalf("devices = %d", len(res.Devices))
	}
	for di, pts := range res.Points {
		// Within a device, error decreases as capacity decreases (more
		// redundancy) for the plain-repetition points.
		var prevErr float64 = 2
		for _, p := range pts {
			if p.WithHamming {
				continue
			}
			if p.Error > prevErr {
				t.Errorf("%s: repetition frontier not monotone", res.Devices[di])
			}
			prevErr = p.Error
		}
	}
	// Device ordering: ATSAML11 (97.2%) has lower single error than
	// BCM2837 (79.2%).
	var atsaml, bcm float64
	for i, name := range res.Devices {
		switch name {
		case "ATSAML11E16A":
			atsaml = res.SingleErrors[i]
		case "BCM2837":
			bcm = res.SingleErrors[i]
		}
	}
	if atsaml >= bcm {
		t.Errorf("device ordering wrong: ATSAML11 %v vs BCM2837 %v", atsaml, bcm)
	}
}

func TestTable3Resilience(t *testing.T) {
	res := runAndRender(t, "tab3").(*Table3Result)
	if res.ZuckErrAfterRewrite < 0.2 {
		t.Errorf("Zuck hidden data survived rewrite: %v", res.ZuckErrAfterRewrite)
	}
	if res.WangErrAfterRewrite > 0.05 {
		t.Errorf("Wang wear signal lost: %v", res.WangErrAfterRewrite)
	}
	if res.IBErrAfterRewrite > res.IBBaseErr*1.3+0.01 {
		t.Errorf("Invisible Bits degraded too much by rewrite: %v vs base %v",
			res.IBErrAfterRewrite, res.IBBaseErr)
	}
}

func TestTable4WithinBands(t *testing.T) {
	res := runAndRender(t, "tab4").(*Table4Result)
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		d := row.BitRate - row.PaperBitRate
		if d < 0 {
			d = -d
		}
		if d > 0.015 {
			t.Errorf("%s: measured %.4f vs paper %.4f (Δ %.3f)", row.Device, row.BitRate, row.PaperBitRate, d)
		}
	}
}

func TestSec53CapacityFactors(t *testing.T) {
	res := runAndRender(t, "sec53").(*Sec53Result)
	if res.WangCapacity != 131 {
		t.Errorf("Wang capacity = %d, want 131", res.WangCapacity)
	}
	if res.IB5CopyCapacity != 64<<10/5 {
		t.Errorf("5-copy capacity = %d, want 13107 (12.8KB)", res.IB5CopyCapacity)
	}
	if res.FactorVsWang5 < 90 || res.FactorVsWang5 > 110 {
		t.Errorf("capacity factor = %v, paper claims 100x", res.FactorVsWang5)
	}
	if res.FactorVsWangBest < 140 {
		t.Errorf("best-device factor = %v, paper claims 160x", res.FactorVsWangBest)
	}
	if res.IB5CopyError > 0.003 {
		t.Errorf("5-copy residual error = %v, want <0.3%%", res.IB5CopyError)
	}
}

func TestAblationCaptures(t *testing.T) {
	res := runAndRender(t, "abl-captures").(*AblCapturesResult)
	// §4.3: five captures suffice — 9 captures buy essentially nothing
	// over 5 on an encoded device.
	idx := map[int]int{}
	for i, n := range res.Captures {
		idx[n] = i
	}
	if gain := res.Errors[idx[5]] - res.Errors[idx[9]]; gain > 0.003 {
		t.Errorf("9 captures improved on 5 by %v — majority should have converged", gain)
	}
	for _, e := range res.Errors {
		if e < 0.04 || e > 0.10 {
			t.Errorf("channel error %v out of the expected 6.5%% neighbourhood", e)
		}
	}
}

func TestAblationECCOrder(t *testing.T) {
	res := runAndRender(t, "abl-eccorder").(*AblECCOrderResult)
	if diff := res.HamThenRep - res.RepThenHam; diff > 0.02 || diff < -0.02 {
		t.Errorf("composition order matters too much: %v vs %v", res.HamThenRep, res.RepThenHam)
	}
}

func TestAblationCipher(t *testing.T) {
	res := runAblationCipher(t)
	if res.CBCError < 20*res.ChannelBER {
		t.Errorf("CBC amplification only %vx", res.CBCError/res.ChannelBER)
	}
	if res.CTRError > 2*res.ChannelBER {
		t.Errorf("CTR not error-neutral: %v on %v channel", res.CTRError, res.ChannelBER)
	}
}

func runAblationCipher(t *testing.T) *AblCipherResult {
	t.Helper()
	return runAndRender(t, "abl-cipher").(*AblCipherResult)
}

func TestAblationSoft(t *testing.T) {
	res := runAndRender(t, "abl-soft").(*AblSoftResult)
	if res.SoftError > res.HardError+0.003 {
		t.Errorf("soft (%v) worse than hard (%v)", res.SoftError, res.HardError)
	}
}

func TestModelCheckFullAgreement(t *testing.T) {
	res := runAndRender(t, "modelcheck").(*ModelCheckResult)
	if res.RaceAgreement < 1.0 {
		t.Errorf("race agreement = %v, want 1.0", res.RaceAgreement)
	}
	if res.FlipAgreement < 1.0 {
		t.Errorf("flip agreement = %v, want 1.0", res.FlipAgreement)
	}
	if res.CellsTested < 25 {
		t.Errorf("only %d cells tested", res.CellsTested)
	}
}

func TestFirmwareOpMatchesModel(t *testing.T) {
	res := runAndRender(t, "fwop").(*FirmwareOpResult)
	// Both abstraction levels must show the same gentle degradation.
	if diff := res.ModelFactor - res.FirmwareFactor; diff > 0.08 || diff < -0.08 {
		t.Errorf("model ×%v vs firmware ×%v — abstraction gap too large",
			res.ModelFactor, res.FirmwareFactor)
	}
	if res.FirmwareFactor < 1.0 || res.FirmwareFactor > 1.35 {
		t.Errorf("firmware factor = %v, want gentle growth", res.FirmwareFactor)
	}
	if res.Instructions == 0 {
		t.Error("no instructions retired — firmware never ran")
	}
}

func TestSec74AttackAndRepair(t *testing.T) {
	res := runAndRender(t, "sec74").(*Sec74Result)
	if res.AttackFactor < 1.02 || res.AttackFactor > 1.5 {
		t.Errorf("attack factor = %v, paper ≈1.12", res.AttackFactor)
	}
	if res.RepairFactor > 1.1 {
		t.Errorf("repair factor = %v, paper ≈0.98 (restored)", res.RepairFactor)
	}
	if res.RepairFactor >= res.AttackFactor {
		t.Errorf("repair (%v) did not improve on attack (%v)", res.RepairFactor, res.AttackFactor)
	}
}
