package experiments

import (
	"fmt"

	"invisiblebits/internal/analog"
	"invisiblebits/internal/cpu"
	"invisiblebits/internal/progen"
	"invisiblebits/internal/rig"
	"invisiblebits/internal/rng"
	"invisiblebits/internal/stats"
	"invisiblebits/internal/textplot"
)

func init() {
	register("fwop", "Firmware-driven normal operation vs model-driven", "§5.1.4 fidelity", runFirmwareOp)
}

// FirmwareOpResult cross-validates the §5.1.4 experiment at two levels of
// abstraction: the model-level OperateRandom (epoch-wise pseudo-random
// fills) against actually *executing* the LFSR workload firmware on the
// simulated CPU between stress epochs. The two paths write statistically
// identical data, so their effect on an encoded message must match.
type FirmwareOpResult struct {
	BaseError      float64
	ModelFactor    float64 // error growth via sram.OperateRandom
	FirmwareFactor float64 // error growth via executed workload firmware
	Instructions   uint64  // instructions retired by the firmware path
}

// ID implements Result.
func (r *FirmwareOpResult) ID() string { return "fwop" }

// Summary implements Result.
func (r *FirmwareOpResult) Summary() string {
	return fmt.Sprintf("48h of operation: model ×%.2f vs executed firmware ×%.2f (%d instructions retired) — abstraction levels agree",
		r.ModelFactor, r.FirmwareFactor, r.Instructions)
}

// Render implements Result.
func (r *FirmwareOpResult) Render() string {
	return "§5.1.4 fidelity — firmware-executed workload vs epoch model\n\n" +
		textplot.Table([]string{"path", "error factor after 48h"}, [][]string{
			{"sram.OperateRandom (epoch model)", fmt.Sprintf("%.3fx", r.ModelFactor)},
			{"IB32 LFSR firmware on the CPU", fmt.Sprintf("%.3fx", r.FirmwareFactor)},
		}) + fmt.Sprintf("\nfirmware retired %d instructions across the epochs\n", r.Instructions)
}

func runFirmwareOp(cfg Config) (Result, error) {
	const opHours = 48.0
	const epochHours = 6.0
	nominal := analog.Conditions{VoltageV: 1.2, TempC: 25}

	// Shared encoding on two identical devices.
	encode := func(serial string) (payloadErr func() (float64, error), dev deviceHandle, err error) {
		r, err := cfg.newRig("MSP432P401", serial)
		if err != nil {
			return nil, deviceHandle{}, err
		}
		d := r.Device()
		if _, err := d.PowerOn(25); err != nil {
			return nil, deviceHandle{}, err
		}
		payload := make([]byte, d.SRAM.Bytes())
		rng.NewSource(0xF40).Bytes(payload)
		if err := d.SRAM.Write(payload); err != nil {
			return nil, deviceHandle{}, err
		}
		if err := d.Stress(d.Model.Accelerated(), d.Model.EncodingHours); err != nil {
			return nil, deviceHandle{}, err
		}
		measure := func() (float64, error) {
			maj, err := d.SRAM.CaptureMajority(cfg.captures(), 25)
			if err != nil {
				return 0, err
			}
			return stats.BitErrorRate(invert(maj), payload), nil
		}
		return measure, deviceHandle{rig: r}, nil
	}

	// Path A: epoch model.
	measureA, hA, err := encode("fwop-model")
	if err != nil {
		return nil, err
	}
	base, err := measureA()
	if err != nil {
		return nil, err
	}
	w := rng.NewWorkloadWriter(0xF40, 0)
	if err := hA.rig.Device().SRAM.OperateRandom(w, nominal, opHours, epochHours); err != nil {
		return nil, err
	}
	errA, err := measureA()
	if err != nil {
		return nil, err
	}

	// Path B: executed firmware. Load the LFSR workload program; per
	// epoch, run enough instructions for at least one full SRAM sweep
	// (fresh pseudo-random contents), then age the held data.
	measureB, hB, err := encode("fwop-model") // same silicon, same payload
	if err != nil {
		return nil, err
	}
	baseB, err := measureB()
	if err != nil {
		return nil, err
	}
	dev := hB.rig.Device()
	src, err := progen.WorkloadProgram(dev.SRAM.Bytes())
	if err != nil {
		return nil, err
	}
	prog, err := progen.Assemble(src)
	if err != nil {
		return nil, err
	}
	if err := dev.LoadProgram(prog); err != nil {
		return nil, err
	}
	var retired uint64
	words := uint64(dev.SRAM.Bytes() / 4)
	perEpochSteps := words*8 + 64
	if _, err := dev.PowerCycle(25); err != nil {
		return nil, err
	}
	for elapsed := 0.0; elapsed < opHours; elapsed += epochHours {
		reason, err := dev.Run(perEpochSteps)
		if err != nil {
			return nil, err
		}
		if reason != cpu.StopStepLimit {
			return nil, fmt.Errorf("experiments: workload firmware stopped with %v", reason)
		}
		retired += perEpochSteps
		if err := dev.SRAM.Stress(nominal, epochHours); err != nil {
			return nil, err
		}
	}
	errB, err := measureB()
	if err != nil {
		return nil, err
	}

	return &FirmwareOpResult{
		BaseError:      base,
		ModelFactor:    errA / base,
		FirmwareFactor: errB / baseB,
		Instructions:   retired,
	}, nil
}

// deviceHandle keeps the rig alive for the helper's lifetime.
type deviceHandle struct{ rig *rig.Rig }
