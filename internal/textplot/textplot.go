// Package textplot renders the experiment results as plain-text tables
// and simple ASCII charts for the cmd/ tools, so every paper figure has a
// terminal-friendly rendition alongside its raw series data.
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Table renders rows with aligned columns. header may be nil.
func Table(header []string, rows [][]string) string {
	widths := make([]int, 0)
	grow := func(cells []string) {
		for i, c := range cells {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if header != nil {
		grow(header)
	}
	for _, r := range rows {
		grow(r)
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		sb.WriteByte('\n')
	}
	if header != nil {
		writeRow(header)
		total := 0
		for _, w := range widths {
			total += w + 2
		}
		sb.WriteString(strings.Repeat("-", total-2))
		sb.WriteByte('\n')
	}
	for _, r := range rows {
		writeRow(r)
	}
	return sb.String()
}

// Series is one named line of (x, y) points.
type Series struct {
	Name string
	X, Y []float64
}

// Chart renders one or more series as an ASCII scatter/line chart of the
// given size. Each series uses its own glyph.
func Chart(title, xLabel, yLabel string, series []Series, width, height int) string {
	if width < 16 {
		width = 16
	}
	if height < 6 {
		height = 6
	}
	glyphs := []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, s.Y[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if math.IsInf(minX, 1) {
		return title + "\n(no data)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		g := glyphs[si%len(glyphs)]
		for i := range s.X {
			c := int((s.X[i] - minX) / (maxX - minX) * float64(width-1))
			r := height - 1 - int((s.Y[i]-minY)/(maxY-minY)*float64(height-1))
			if r >= 0 && r < height && c >= 0 && c < width {
				grid[r][c] = g
			}
		}
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	fmt.Fprintf(&sb, "%s (max %.4g)\n", yLabel, maxY)
	for _, row := range grid {
		sb.WriteString("  |")
		sb.Write(row)
		sb.WriteByte('\n')
	}
	sb.WriteString("  +")
	sb.WriteString(strings.Repeat("-", width))
	sb.WriteByte('\n')
	fmt.Fprintf(&sb, "   %-.4g%s%.4g  (%s)\n", minX,
		strings.Repeat(" ", max(1, width-12)), maxX, xLabel)
	if len(series) > 1 {
		sb.WriteString("  legend:")
		for si, s := range series {
			fmt.Fprintf(&sb, " %c=%s", glyphs[si%len(glyphs)], s.Name)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Histogram renders value counts as horizontal bars.
func Histogram(title string, labels []string, values []float64, width int) string {
	if width < 10 {
		width = 10
	}
	maxV := 0.0
	for _, v := range values {
		if v > maxV {
			maxV = v
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	for i, v := range values {
		bar := 0
		if maxV > 0 {
			bar = int(v / maxV * float64(width))
		}
		label := ""
		if i < len(labels) {
			label = labels[i]
		}
		fmt.Fprintf(&sb, "  %-10s |%s %.4g\n", label, strings.Repeat("#", bar), v)
	}
	return sb.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Percent formats a fraction as a percentage string.
func Percent(f float64) string { return fmt.Sprintf("%.2f%%", 100*f) }

// F formats a float compactly for table cells.
func F(v float64) string { return fmt.Sprintf("%.4g", v) }
