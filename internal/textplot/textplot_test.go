package textplot

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	out := Table([]string{"Device", "Error"}, [][]string{
		{"MSP432P401", "6.5%"},
		{"BCM2837", "20.8%"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Device") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[2], "MSP432P401") || !strings.Contains(lines[2], "6.5%") {
		t.Errorf("row = %q", lines[2])
	}
	// Columns align: "Error" column starts at the same offset in all rows.
	idx := strings.Index(lines[0], "Error")
	if !strings.HasPrefix(lines[2][idx:], "6.5%") {
		t.Errorf("misaligned column:\n%s", out)
	}
}

func TestTableNoHeader(t *testing.T) {
	out := Table(nil, [][]string{{"a", "b"}})
	if strings.Contains(out, "-") {
		t.Errorf("unexpected separator:\n%s", out)
	}
}

func TestChartRendersSeries(t *testing.T) {
	s := []Series{
		{Name: "up", X: []float64{0, 1, 2}, Y: []float64{0, 1, 2}},
		{Name: "down", X: []float64{0, 1, 2}, Y: []float64{2, 1, 0}},
	}
	out := Chart("test", "x", "y", s, 20, 8)
	if !strings.Contains(out, "test") || !strings.Contains(out, "legend:") {
		t.Errorf("chart missing title/legend:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Errorf("chart missing glyphs:\n%s", out)
	}
}

func TestChartEmptyAndDegenerate(t *testing.T) {
	if out := Chart("t", "x", "y", nil, 20, 8); !strings.Contains(out, "no data") {
		t.Errorf("empty chart = %q", out)
	}
	// Constant series must not divide by zero.
	s := []Series{{Name: "flat", X: []float64{1, 1}, Y: []float64{3, 3}}}
	out := Chart("t", "x", "y", s, 20, 8)
	if !strings.Contains(out, "*") {
		t.Errorf("flat chart missing point:\n%s", out)
	}
}

func TestHistogramBars(t *testing.T) {
	out := Histogram("h", []string{"a", "b"}, []float64{1, 2}, 10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines:\n%s", out)
	}
	if strings.Count(lines[2], "#") != 10 || strings.Count(lines[1], "#") != 5 {
		t.Errorf("bar lengths wrong:\n%s", out)
	}
}

func TestHistogramAllZero(t *testing.T) {
	out := Histogram("h", []string{"a"}, []float64{0}, 10)
	if strings.Contains(out, "#") {
		t.Errorf("zero histogram has bars:\n%s", out)
	}
}

func TestFormatters(t *testing.T) {
	if Percent(0.065) != "6.50%" {
		t.Errorf("Percent = %q", Percent(0.065))
	}
	if F(1.23456) != "1.235" {
		t.Errorf("F = %q", F(1.23456))
	}
}
