// Package core implements Invisible Bits itself: the message encoding
// pipeline of Algorithm 1 (ECC → encryption → payload-writer program →
// accelerated aging → camouflage) and the decoding pipeline of
// Algorithm 2 (retainer program → N power-on captures → majority vote →
// inversion → decryption → ECC decode).
//
// The package orchestrates the substrates: progen generates the programs,
// the rig drives voltage/temperature/power, the device executes the
// programs and ages, and ecc/stegocrypt pre/post-process the message.
package core

import (
	"context"
	"errors"
	"fmt"
	"math/bits"

	"invisiblebits/internal/cpu"
	"invisiblebits/internal/ecc"
	"invisiblebits/internal/faults"
	"invisiblebits/internal/progen"
	"invisiblebits/internal/rig"
	"invisiblebits/internal/stegocrypt"
)

// DefaultCaptures is the paper's power-on sample count: "we find that
// taking five captures is sufficient to filter noise" (§4.3).
const DefaultCaptures = 5

// DefaultMaxRetries bounds how many times a transient fault (a dropped
// debugger link, a lost capture burst) is retried before the operation
// is abandoned. Only errors classified faults.IsTransient are retried,
// so the budget is never consumed on a fault-free rig.
const DefaultMaxRetries = 3

// DefaultRetryBackoffHours is the simulated time charged before the
// first retry; it doubles per attempt. In the lab, re-seating a probe
// and re-running a burst costs real bench time, and the simulation
// charges it to the same clock that prices encoding-hours.
const DefaultRetryBackoffHours = 0.25

// defaultMaxSteps bounds payload-writer execution; a full 320 KB writer
// needs ~600k instructions, so this is generous.
const defaultMaxSteps = 100_000_000

// Options configures an encode.
type Options struct {
	// Codec is the error-correction layer; nil means no ECC (identity).
	Codec ecc.Codec
	// Key enables the AES-CTR encryption layer; nil encodes plain-text
	// (detectable by analog steganalysis — see §6).
	Key *stegocrypt.Key
	// StressHours overrides the device's Table 4 encoding time when > 0.
	StressHours float64
	// Captures is the majority-vote sample count for decode; 0 means
	// DefaultCaptures.
	Captures int
	// SkipCamouflage leaves the payload writer in flash after encoding
	// (useful for experiments; real deployments always camouflage).
	SkipCamouflage bool
	// Soft enables soft-decision decoding: instead of majority-voting
	// captures into hard bits, the per-cell vote counts are combined
	// across repetition copies as confidences (an extension beyond the
	// paper's §4.3 scheme; requires the codec to implement
	// ecc.SoftDecoder).
	Soft bool
	// MaxRetries bounds retries of transiently-faulting link operations:
	// 0 means DefaultMaxRetries, negative disables retrying entirely.
	MaxRetries int
	// RetryBackoffHours is the simulated-clock backoff before the first
	// retry (doubling per attempt); 0 means DefaultRetryBackoffHours.
	RetryBackoffHours float64
	// DecodeTempC overrides the chamber temperature during decode when
	// non-zero. The paper reads at nominal temperature; setting this lets
	// experiments measure read-out robustness at the wrong temperature
	// (power-on state is temperature-susceptible, see ISSUE refs).
	DecodeTempC float64
	// Arena, when non-nil, routes the decode tail through reusable
	// scratch (see DecodeArena): batch decodes against one record shape
	// stop allocating, and messages returned by arena-backed decode
	// paths are arena-owned — valid only until the arena's next use.
	// Arenas are not safe for concurrent use; keep one per worker.
	Arena *DecodeArena
}

func (o Options) codec() ecc.Codec {
	if o.Codec == nil {
		return ecc.Identity{}
	}
	return o.Codec
}

func (o Options) captures() int {
	if o.Captures <= 0 {
		return DefaultCaptures
	}
	return o.Captures
}

func (o Options) maxRetries() int {
	if o.MaxRetries < 0 {
		return 0
	}
	if o.MaxRetries == 0 {
		return DefaultMaxRetries
	}
	return o.MaxRetries
}

func (o Options) backoffHours() float64 {
	if o.RetryBackoffHours <= 0 {
		return DefaultRetryBackoffHours
	}
	return o.RetryBackoffHours
}

// retry wraps one link operation in the bounded-retry policy, charging
// exponential backoff to the rig's simulated clock.
func (o Options) retry(ctx context.Context, r *rig.Rig, op func() error) error {
	return faults.Retry(ctx, r, o.maxRetries(), o.backoffHours(), op)
}

// Record is the encode-side receipt. It carries exactly what the paper
// assumes is pre-shared between the communicating parties (footnote 3:
// "the presence and order of error correction and encryption information
// are pre-shared") — never the key.
type Record struct {
	DeviceID     string
	MessageBytes int
	PayloadBytes int // post-ECC, post-encryption, word-aligned
	CodecName    string
	Encrypted    bool
	Captures     int
	StressHours  float64
	// Digest is the integrity digest of the plaintext message
	// (hex-encoded), and DigestAlgo names the scheme: CRC32 for
	// unkeyed records, HMAC-SHA256 (keyed, domain-separated over the
	// device ID) when the message was encrypted. The digest makes
	// decode success machine-checkable without revealing the message.
	Digest     string `json:",omitempty"`
	DigestAlgo string `json:",omitempty"`
}

// Errors.
var (
	ErrEmptyMessage    = errors.New("core: message is empty")
	ErrPayloadTooLarge = errors.New("core: payload exceeds device SRAM capacity")
	ErrRecordShape     = errors.New("core: record shape is inconsistent")
)

// recordCodedLen validates the record's claimed geometry against the
// codec before anything slices the captured payload: a corrupt or
// mismatched record must fail with ErrRecordShape, not a slice panic.
func recordCodedLen(rec *Record, codec ecc.Codec) (int, error) {
	if rec.MessageBytes <= 0 || rec.PayloadBytes <= 0 {
		return 0, fmt.Errorf("%w: message %d bytes, payload %d bytes",
			ErrRecordShape, rec.MessageBytes, rec.PayloadBytes)
	}
	codedLen := codec.EncodedLen(rec.MessageBytes)
	if codedLen <= 0 || codedLen > rec.PayloadBytes {
		return 0, fmt.Errorf("%w: codec %s expands %d message bytes to %d coded bytes but record claims %d payload bytes",
			ErrRecordShape, codec.Name(), rec.MessageBytes, codedLen, rec.PayloadBytes)
	}
	return codedLen, nil
}

// MaxMessageBytes returns the largest message (pre-ECC) that fits in
// sramBytes of SRAM under the given codec — the capacity measure used
// throughout §5.3.
func MaxMessageBytes(sramBytes int, codec ecc.Codec) int {
	if codec == nil {
		codec = ecc.Identity{}
	}
	lo, hi := 0, sramBytes
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if codec.EncodedLen(mid)+wordPad(codec.EncodedLen(mid)) <= sramBytes {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

func wordPad(n int) int { return (4 - n%4) % 4 }

// BuildPayload runs the message pre-processing half of Algorithm 1
// (lines 1–2): ECC expansion, word-alignment padding, then encryption.
// Encrypting after padding keeps the padding indistinguishable from the
// rest of the ciphertext, preserving analog-domain deniability.
func BuildPayload(message []byte, deviceID string, opts Options) ([]byte, error) {
	if len(message) == 0 {
		return nil, ErrEmptyMessage
	}
	coded, err := opts.codec().Encode(message)
	if err != nil {
		return nil, fmt.Errorf("core: ecc encode: %w", err)
	}
	if pad := wordPad(len(coded)); pad > 0 {
		coded = append(coded, make([]byte, pad)...)
	}
	if opts.Key != nil {
		coded, err = stegocrypt.StreamXOR(*opts.Key, deviceID, coded)
		if err != nil {
			return nil, fmt.Errorf("core: encrypt: %w", err)
		}
	}
	return coded, nil
}

// Encode hides message in the analog domain of the rig's device
// (Algorithm 1). On return the device is powered off at nominal
// conditions with camouflage firmware loaded (unless SkipCamouflage).
func Encode(r *rig.Rig, message []byte, opts Options) (*Record, error) {
	return EncodeContext(context.Background(), r, message, opts)
}

// EncodeContext is Encode with cancellation and failure tolerance:
// transient link faults (flash and capture bursts) are retried up to
// Options.MaxRetries with backoff charged to the rig's simulated clock,
// and ctx cancellation propagates into the hours-long stress soak.
//
// It is exactly the staged session run in one breath — prepare, a
// single full-length soak, finish — so the one-shot path stays
// bit-identical to pre-session builds (the soak is one StressForContext
// call, no slicing) while sharing all pipeline code with supervisors
// that checkpoint between slices.
func EncodeContext(ctx context.Context, r *rig.Rig, message []byte, opts Options) (*Record, error) {
	s, err := BeginEncode(ctx, r, message, opts)
	if err != nil {
		return nil, err
	}
	if err := s.StressSlice(ctx, s.TotalHours()); err != nil {
		return nil, err
	}
	return s.Finish(ctx)
}

// loadCamouflage flashes the innocuous cover firmware, retried across
// transient link faults.
func loadCamouflage(ctx context.Context, r *rig.Rig, opts Options) error {
	camo, err := progen.Assemble(progen.CamouflageProgram())
	if err != nil {
		return fmt.Errorf("core: camouflage: %w", err)
	}
	return opts.retry(ctx, r, func() error { return r.LoadProgram(camo) })
}

// writePayloadToSRAM initializes the SRAM state. MCUs run the generated
// payload-writer firmware on their own CPU; cache-SRAM devices (no
// on-chip flash) are written through the debug port, mirroring the
// paper's co-processor access path for the BCM2837 (§5).
func writePayloadToSRAM(ctx context.Context, r *rig.Rig, payload []byte, opts Options) error {
	dev := r.Device()
	if dev.Flash == nil {
		return opts.retry(ctx, r, func() error {
			if _, err := r.PowerOn(); err != nil {
				return err
			}
			return dev.SRAM.WriteAt(0, payload)
		})
	}
	src, err := progen.WriterProgram(payload)
	if err != nil {
		return err
	}
	prog, err := progen.Assemble(src)
	if err != nil {
		return fmt.Errorf("core: assemble writer: %w", err)
	}
	// The flash + run sequence retries as a unit: a link drop mid-flash
	// leaves the image suspect, so the whole write is re-driven.
	return opts.retry(ctx, r, func() error {
		if err := r.LoadProgram(prog); err != nil {
			return err
		}
		if _, err := r.PowerOn(); err != nil {
			return err
		}
		reason, err := r.RunFirmware(defaultMaxSteps)
		if err != nil {
			return err
		}
		if reason != cpu.StopBusyWait {
			return fmt.Errorf("core: payload writer stopped with %v, want busy-wait", reason)
		}
		return nil
	})
}

// Decode recovers the hidden message from the rig's device (Algorithm 2).
// The receiving party supplies the pre-shared parameters: the record's
// codec/shape information and, if the message was encrypted, the key.
func Decode(r *rig.Rig, rec *Record, opts Options) ([]byte, error) {
	return DecodeContext(context.Background(), r, rec, opts)
}

// DecodeContext is Decode with cancellation and failure tolerance:
// transient link faults during the retainer flash and the capture burst
// are retried per Options.MaxRetries, with backoff charged to the rig's
// simulated clock.
func DecodeContext(ctx context.Context, r *rig.Rig, rec *Record, opts Options) ([]byte, error) {
	if rec == nil {
		return nil, errors.New("core: nil record")
	}
	codec := opts.codec()
	if codec.Name() != rec.CodecName {
		return nil, fmt.Errorf("core: codec %q does not match record's %q", codec.Name(), rec.CodecName)
	}
	codedLen, err := recordCodedLen(rec, codec)
	if err != nil {
		return nil, err
	}
	if err := prepareDecode(ctx, r, opts); err != nil {
		return nil, err
	}

	captures := rec.Captures
	if opts.Captures > 0 {
		captures = opts.Captures
	}
	if opts.Soft {
		return decodeSoft(ctx, r, rec, opts, codec, captures, codedLen)
	}

	var maj []byte
	err = opts.retry(ctx, r, func() error {
		var serr error
		maj, serr = r.SampleMajorityContext(ctx, captures)
		return serr
	})
	if err != nil {
		return nil, err
	}
	if rec.PayloadBytes > len(maj) {
		return nil, fmt.Errorf("core: record claims %d payload bytes but SRAM is %d", rec.PayloadBytes, len(maj))
	}

	// Post-processing (Algorithm 2, lines 6–7): invert ("like a negative
	// in photography", §4.3), decrypt, ECC-decode. With an arena the
	// whole tail runs in reusable scratch (cached keystream, compiled
	// pipeline) and the returned message is arena-owned.
	if a := opts.Arena; a != nil {
		payload := a.payloadBuf(rec.PayloadBytes)
		for i := range payload {
			payload[i] = ^maj[i]
		}
		if err := a.decryptInPlace(payload, rec, opts); err != nil {
			return nil, err
		}
		msg := a.msgBuf(rec.MessageBytes)
		if err := a.pipelineFor(codec).DecodeInto(msg, payload[:codedLen], rec.MessageBytes); err != nil {
			return nil, fmt.Errorf("core: ecc decode: %w", err)
		}
		return msg, nil
	}
	payload := make([]byte, rec.PayloadBytes)
	for i := range payload {
		payload[i] = ^maj[i]
	}
	payload, err = decryptPayload(payload, rec, opts)
	if err != nil {
		return nil, err
	}
	msg, err := codec.Decode(payload[:codedLen], rec.MessageBytes)
	if err != nil {
		return nil, fmt.Errorf("core: ecc decode: %w", err)
	}
	return msg, nil
}

// prepareDecode flashes the retainer program (retried across transient
// link faults) and brings the chamber to decode conditions: nominal
// voltage, and either nominal temperature or Options.DecodeTempC.
func prepareDecode(ctx context.Context, r *rig.Rig, opts Options) error {
	dev := r.Device()
	if dev.Flash != nil {
		ret, err := progen.Assemble(progen.RetainerProgram())
		if err != nil {
			return fmt.Errorf("core: retainer: %w", err)
		}
		if err := opts.retry(ctx, r, func() error { return r.LoadProgram(ret) }); err != nil {
			return err
		}
	}
	tempC := dev.Model.TNomC
	if opts.DecodeTempC != 0 {
		tempC = opts.DecodeTempC
	}
	r.SetTemperature(tempC)
	return r.SetVoltage(dev.Model.VNomV)
}

// decryptPayload reverses the encryption layer of an inverted payload
// when the record says one was applied.
func decryptPayload(payload []byte, rec *Record, opts Options) ([]byte, error) {
	if !rec.Encrypted {
		return payload, nil
	}
	if opts.Key == nil {
		return nil, errors.New("core: record is encrypted but no key supplied")
	}
	out, err := stegocrypt.StreamXOR(*opts.Key, rec.DeviceID, payload)
	if err != nil {
		return nil, fmt.Errorf("core: decrypt: %w", err)
	}
	return out, nil
}

// decodeSoft is the soft-decision path: per-cell vote counts become
// per-payload-bit confidences, decryption flips confidences where the
// keystream is 1 (XOR in probability space), and the codec's SoftDecoder
// combines them.
func decodeSoft(ctx context.Context, r *rig.Rig, rec *Record, opts Options, codec ecc.Codec, captures, codedLen int) ([]byte, error) {
	soft, ok := codec.(ecc.SoftDecoder)
	if !ok {
		return nil, fmt.Errorf("core: codec %s does not support soft decoding", codec.Name())
	}
	var votes []uint16
	err := opts.retry(ctx, r, func() error {
		var serr error
		votes, serr = r.SampleVotesContext(ctx, captures)
		return serr
	})
	if err != nil {
		return nil, err
	}
	var conf []float64
	if a := opts.Arena; a != nil {
		conf, err = a.confidences(votes, captures, rec, opts)
	} else {
		conf, err = payloadConfidences(votes, captures, rec, opts)
	}
	if err != nil {
		return nil, err
	}
	msg, err := soft.DecodeSoft(conf[:codedLen*8], rec.MessageBytes)
	if err != nil {
		return nil, fmt.Errorf("core: soft decode: %w", err)
	}
	return msg, nil
}

// payloadConfidences converts per-cell power-on vote counts into
// per-payload-bit P(bit=1) confidences: payload bit = ¬(power-on bit),
// so P(payload=1) = 1 − votes/total, and decryption flips confidences
// where the keystream is 1 (XOR in probability space).
func payloadConfidences(votes []uint16, total int, rec *Record, opts Options) ([]float64, error) {
	payloadBits := rec.PayloadBytes * 8
	if payloadBits > len(votes) {
		return nil, fmt.Errorf("core: record claims %d payload bits but SRAM has %d cells",
			payloadBits, len(votes))
	}
	conf := make([]float64, payloadBits)
	invN := 1 / float64(total)
	for i := range conf {
		conf[i] = 1 - float64(votes[i])*invN
	}
	if rec.Encrypted {
		if opts.Key == nil {
			return nil, errors.New("core: record is encrypted but no key supplied")
		}
		ks, err := stegocrypt.StreamXOR(*opts.Key, rec.DeviceID, make([]byte, rec.PayloadBytes))
		if err != nil {
			return nil, fmt.Errorf("core: keystream: %w", err)
		}
		for i := range conf {
			if ks[i/8]&(1<<(i%8)) != 0 {
				conf[i] = 1 - conf[i]
			}
		}
	}
	return conf, nil
}

// RawChannelError measures the single-copy channel error of an encoded
// device against a known payload — the §5.1 error-profiling primitive.
func RawChannelError(r *rig.Rig, payload []byte, captures int) (float64, error) {
	return RawChannelErrorContext(context.Background(), r, payload, captures, Options{})
}

// RawChannelErrorContext is RawChannelError with the same cancellation
// and bounded-retry treatment as the other capture paths: transient
// link faults during the capture burst are retried per Options.MaxRetries
// with backoff charged to the rig's simulated clock.
func RawChannelErrorContext(ctx context.Context, r *rig.Rig, payload []byte, captures int, opts Options) (float64, error) {
	var maj []byte
	err := opts.retry(ctx, r, func() error {
		var serr error
		maj, serr = r.SampleMajorityContext(ctx, captures)
		return serr
	})
	if err != nil {
		return 0, err
	}
	if len(payload) > len(maj) {
		return 0, fmt.Errorf("core: payload longer than SRAM")
	}
	errBits := 0
	for i, b := range payload {
		errBits += bits.OnesCount8(^maj[i] ^ b)
	}
	return float64(errBits) / float64(8*len(payload)), nil
}
