package core

import (
	"context"
	"errors"
	"testing"

	"invisiblebits/internal/device"
	"invisiblebits/internal/ecc"
	"invisiblebits/internal/faults"
	"invisiblebits/internal/rig"
	"invisiblebits/internal/rng"
	"invisiblebits/internal/stegocrypt"
)

// decayCampaign is the shared hostile-channel configuration for the
// adaptive-decode tests: the paper's MSP432 with a 4 KB sample, the
// Fig. 13 codec, a long 14 h soak (extra margin that survives shelf
// decay), and a fault injector marking 14% of cells weak — per-capture
// coin flips that hard majority voting cannot outvote but soft
// combining and the erasure dead zone neutralize.
func decayCampaign(t *testing.T, serial string) (*rig.Rig, Options, AdaptiveOptions, []byte) {
	t.Helper()
	m, err := device.ByName("MSP432P401")
	if err != nil {
		t.Fatal(err)
	}
	d, err := device.New(m, serial, device.WithSRAMLimit(4<<10))
	if err != nil {
		t.Fatal(err)
	}
	r := rig.New(d, rig.WithInjector(faults.New(faults.Profile{Seed: 7, WeakFrac: 0.14}, d.Serial)))
	key := stegocrypt.KeyFromPassphrase("retention-sweep")
	opts := Options{Codec: paperCodec(t), Key: &key, StressHours: 14}
	msg := make([]byte, 192)
	rng.NewSource(2022).Bytes(msg)
	return r, opts, AdaptiveOptions{Options: opts}, msg
}

func TestDecodeAdaptiveFreshStopsAtFirstRung(t *testing.T) {
	// On a healthy imprint the ladder must not escalate: the cheap
	// first rung decodes, the digest verifies, and the capture budget
	// spent is the initial burst only.
	r := newRig(t, "MSP432P401", "adaptive-fresh", 4<<10)
	key := stegocrypt.KeyFromPassphrase("adaptive")
	opts := Options{Codec: paperCodec(t), Key: &key}
	msg := []byte("cheap when the channel is healthy")

	rec, err := Encode(r, msg, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, rep, err := DecodeAdaptive(context.Background(), r, rec, AdaptiveOptions{Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(msg) {
		t.Fatalf("message = %q, want %q", got, msg)
	}
	if !rep.Verified || rep.VerifiedRung != RungHard {
		t.Fatalf("report = %+v, want verified at %q", rep, RungHard)
	}
	if rep.Escalated() {
		t.Fatalf("fresh decode escalated: %+v", rep)
	}
	if want := DefaultInitialCaptures; rep.CapturesSpent != want {
		t.Fatalf("CapturesSpent = %d, want %d", rep.CapturesSpent, want)
	}
	if rep.ResidualChannelError < 0 {
		t.Fatalf("ResidualChannelError = %v, want measured", rep.ResidualChannelError)
	}
}

func TestDecodeAdaptiveRecoversWhereFixedEffortFails(t *testing.T) {
	// The acceptance scenario: a message endures two simulated years of
	// hot shelf storage on a device with injected weak cells. The
	// paper's fixed five-capture hard decode returns garbage, but the
	// self-verifying ladder escalates — more captures, then soft
	// combining over the accumulated votes — and recovers the exact
	// message, machine-checked against the record's digest.
	ctx := context.Background()
	r, opts, aopts, msg := decayCampaign(t, "rel-2")

	rec, err := EncodeContext(ctx, r, msg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.ShelveAtFor(2*365*24, 45); err != nil {
		t.Fatal(err)
	}

	// Fixed-effort decode: either a mechanical decode failure or a
	// wrong message that the digest rejects.
	hard, herr := DecodeContext(ctx, r, rec, opts)
	if herr == nil && rec.VerifyMessage(hard, opts.Key) == nil {
		t.Fatal("fixed-capture hard decode unexpectedly verified on the decayed channel")
	}

	got, rep, err := DecodeAdaptive(ctx, r, rec, aopts)
	if err != nil {
		t.Fatalf("DecodeAdaptive: %v (report %+v)", err, rep)
	}
	if string(got) != string(msg) {
		t.Fatalf("recovered %d bytes != original", len(got))
	}
	if !rep.Verified {
		t.Fatalf("report not verified: %+v", rep)
	}
	if !rep.Escalated() {
		t.Fatalf("ladder did not escalate: %+v", rep)
	}
	if rep.CapturesSpent <= rep.Rungs[0].Captures {
		t.Fatalf("CapturesSpent = %d, want more than the initial rung's %d",
			rep.CapturesSpent, rep.Rungs[0].Captures)
	}
	if rep.VerifiedRung == RungHard {
		t.Fatalf("verified on the first rung despite hard-decode failure: %+v", rep)
	}
	if rep.ResidualChannelError <= 0 {
		t.Fatalf("ResidualChannelError = %v, want > 0 on a decayed channel", rep.ResidualChannelError)
	}
	// The first rung must be on the record as a failed attempt.
	if len(rep.Rungs) < 2 || rep.Rungs[0].Verified || rep.Rungs[0].Note == "" {
		t.Fatalf("first rung should record its failure: %+v", rep.Rungs)
	}
}

func TestDecodeAdaptiveExhaustionReturnsReport(t *testing.T) {
	// When even the deepest rung cannot verify, the caller still gets
	// the full report — how many rungs ran and captures were burned —
	// alongside ErrDigestMismatch.
	ctx := context.Background()
	r, opts, aopts, msg := decayCampaign(t, "rel-1")

	rec, err := EncodeContext(ctx, r, msg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.ShelveAtFor(2*365*24, 45); err != nil {
		t.Fatal(err)
	}
	if hard, herr := DecodeContext(ctx, r, rec, opts); herr == nil && rec.VerifyMessage(hard, opts.Key) == nil {
		t.Fatal("hard decode unexpectedly verified")
	}

	_, rep, err := DecodeAdaptive(ctx, r, rec, aopts)
	if !errors.Is(err, ErrDigestMismatch) {
		t.Fatalf("err = %v, want ErrDigestMismatch", err)
	}
	if rep == nil || len(rep.Rungs) < 3 {
		t.Fatalf("exhaustion report too thin: %+v", rep)
	}
	if rep.Verified || rep.VerifiedRung != "" {
		t.Fatalf("exhausted report claims verification: %+v", rep)
	}
	if rep.CapturesSpent < DefaultMaxAdaptiveCaptures-1 {
		t.Fatalf("CapturesSpent = %d, want the full budget spent before giving up", rep.CapturesSpent)
	}
}

func TestDecodeAdaptiveRequiresDigest(t *testing.T) {
	r := newRig(t, "MSP432P401", "adaptive-nodigest", 4<<10)
	opts := Options{Codec: paperCodec(t)}
	rec, err := Encode(r, []byte("no digest, no ladder"), opts)
	if err != nil {
		t.Fatal(err)
	}
	rec.Digest, rec.DigestAlgo = "", "" // a record from before digests existed
	if _, _, err := DecodeAdaptive(context.Background(), r, rec, AdaptiveOptions{Options: opts}); !errors.Is(err, ErrNoDigest) {
		t.Fatalf("err = %v, want ErrNoDigest", err)
	}
}

// hardOnlyCodec wraps Identity but exposes only the base Codec
// interface — no soft or erasure decoding — so the ladder's skip path
// is exercised.
type hardOnlyCodec struct{ inner ecc.Identity }

func (c hardOnlyCodec) Name() string                { return c.inner.Name() }
func (c hardOnlyCodec) EncodedLen(msgBytes int) int { return c.inner.EncodedLen(msgBytes) }
func (c hardOnlyCodec) Encode(msg []byte) ([]byte, error) {
	return c.inner.Encode(msg)
}
func (c hardOnlyCodec) Decode(payload []byte, msgBytes int) ([]byte, error) {
	return c.inner.Decode(payload, msgBytes)
}
func (c hardOnlyCodec) Rate() float64 { return c.inner.Rate() }

func TestDecodeAdaptiveSkipsRungsWithoutCodecSupport(t *testing.T) {
	// On a record forced past the hard rungs, the soft/erasure rungs
	// must be marked skipped for a codec that cannot serve them, rather
	// than crashing or silently pretending they ran.
	r := newRig(t, "MSP432P401", "adaptive-skip", 2<<10)
	opts := Options{Codec: hardOnlyCodec{}}
	msg := []byte("identity codec")
	rec, err := Encode(r, msg, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the digest so every rung fails verification and the
	// ladder is forced to walk the whole schedule.
	rec.Digest = "00000000"
	_, rep, err := DecodeAdaptive(context.Background(), r, rec, AdaptiveOptions{Options: opts})
	if !errors.Is(err, ErrDigestMismatch) {
		t.Fatalf("err = %v, want ErrDigestMismatch", err)
	}
	var skipped int
	for _, rung := range rep.Rungs {
		if rung.Skipped {
			skipped++
		}
	}
	if skipped != 2 {
		t.Fatalf("skipped rungs = %d, want soft and erasure skipped: %+v", skipped, rep.Rungs)
	}
}

func TestAdaptiveSoftDecodeUnderTransientLinkFaults(t *testing.T) {
	// A flaky debugger link drops capture operations mid-burst. The
	// retry policy inside the ladder's sampler must ride through the
	// transients so the soft rungs still accumulate their full vote
	// budget and the message verifies.
	m, err := device.ByName("MSP432P401")
	if err != nil {
		t.Fatal(err)
	}
	d, err := device.New(m, "adaptive-flaky-link", device.WithSRAMLimit(4<<10))
	if err != nil {
		t.Fatal(err)
	}
	r := rig.New(d, rig.WithInjector(faults.New(faults.Profile{
		Seed:         11,
		LinkDropRate: 0.15,
		WeakFrac:     0.10,
	}, d.Serial)))
	key := stegocrypt.KeyFromPassphrase("flaky-link")
	opts := Options{Codec: paperCodec(t), Key: &key}
	msg := []byte("soft decoding must survive a flaky debugger link")

	rec, err := Encode(r, msg, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Direct soft decode through the same flaky link.
	soft := opts
	soft.Soft = true
	got, err := Decode(r, rec, soft)
	if err != nil {
		t.Fatalf("soft decode under link faults: %v", err)
	}
	if string(got) != string(msg) {
		t.Fatalf("soft decode returned wrong message")
	}

	// And the full ladder, which samples in several bursts.
	got, rep, err := DecodeAdaptive(context.Background(), r, rec, AdaptiveOptions{Options: opts})
	if err != nil {
		t.Fatalf("DecodeAdaptive under link faults: %v", err)
	}
	if string(got) != string(msg) || !rep.Verified {
		t.Fatalf("ladder under link faults: msg ok=%v, report %+v", string(got) == string(msg), rep)
	}
}

func TestDecodeAtWrongTemperature(t *testing.T) {
	// Decode with the chamber deliberately off-nominal. Power-on noise
	// scales with √T, so a hot readout is strictly noisier — but the
	// imprint lives in threshold-voltage shifts an order of magnitude
	// above thermal noise, so a healthy record still verifies. The test
	// pins both halves: the option is honored (chamber really is hot
	// during capture) and the decode still lands.
	r := newRig(t, "MSP432P401", "hot-decode", 4<<10)
	key := stegocrypt.KeyFromPassphrase("hot")
	opts := Options{Codec: paperCodec(t), Key: &key}
	msg := []byte("readable even from a hot chamber")
	rec, err := Encode(r, msg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.ShelveAtFor(30*24, 45); err != nil { // a month in hot storage
		t.Fatal(err)
	}

	hot := opts
	hot.DecodeTempC = 85
	got, err := Decode(r, rec, hot)
	if err != nil {
		t.Fatalf("decode at 85°C: %v", err)
	}
	if string(got) != string(msg) {
		t.Fatalf("hot decode returned wrong message")
	}
	if err := rec.VerifyMessage(got, opts.Key); err != nil {
		t.Fatalf("hot decode digest: %v", err)
	}
	if c := r.Conditions(); c.TempC != 85 {
		t.Fatalf("chamber at %.0f°C after hot decode, want the 85°C override honored", c.TempC)
	}

	// Nominal decode resets the chamber back to the datasheet point.
	if _, err := Decode(r, rec, opts); err != nil {
		t.Fatal(err)
	}
	if c, want := r.Conditions(), r.Device().Model.TNomC; c.TempC != want {
		t.Fatalf("chamber at %.0f°C after nominal decode, want %.0f", c.TempC, want)
	}
}
