package core

import (
	"bytes"
	"strings"
	"testing"

	"invisiblebits/internal/device"
	"invisiblebits/internal/ecc"
	"invisiblebits/internal/rig"
	"invisiblebits/internal/rng"
	"invisiblebits/internal/stats"
	"invisiblebits/internal/stegocrypt"
)

func newRig(t *testing.T, model, serial string, limitBytes int) *rig.Rig {
	t.Helper()
	m, err := device.ByName(model)
	if err != nil {
		t.Fatal(err)
	}
	var opts []device.Option
	if limitBytes > 0 {
		opts = append(opts, device.WithSRAMLimit(limitBytes))
	}
	d, err := device.New(m, serial, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return rig.New(d)
}

func paperCodec(t *testing.T) ecc.Codec {
	t.Helper()
	rep, err := ecc.NewRepetition(7)
	if err != nil {
		t.Fatal(err)
	}
	return ecc.Composite{Outer: ecc.Hamming74{}, Inner: rep}
}

func TestEndToEndEncryptedMessage(t *testing.T) {
	// The paper's Fig. 13 system: Hamming(7,4) + repetition + AES-CTR,
	// encoded on an MSP432 and recovered error-free.
	r := newRig(t, "MSP432P401", "e2e", 8<<10)
	key := stegocrypt.KeyFromPassphrase("pre-shared secret")
	msg := []byte("The border guards must not find this message. -Alice")
	opts := Options{Codec: paperCodec(t), Key: &key}

	rec, err := Encode(r, msg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Encrypted || rec.MessageBytes != len(msg) {
		t.Fatalf("record = %+v", rec)
	}

	got, err := Decode(r, rec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("recovered %q, want %q", got, msg)
	}
}

func TestEndToEndSurvivesShelving(t *testing.T) {
	// Resilience headline: the message survives a month on the shelf.
	r := newRig(t, "MSP432P401", "shelf", 8<<10)
	key := stegocrypt.KeyFromPassphrase("k")
	msg := bytes.Repeat([]byte("resilient "), 10)
	opts := Options{Codec: paperCodec(t), Key: &key}
	rec, err := Encode(r, msg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.ShelveFor(28 * 24); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(r, rec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("message lost after a month of shelving")
	}
}

func TestPlaintextNoECCHasChannelError(t *testing.T) {
	// Without ECC the recovered message carries the ~6.5% channel error.
	r := newRig(t, "MSP432P401", "raw", 8<<10)
	msg := make([]byte, 4<<10)
	rng.NewSource(5).Bytes(msg)
	rec, err := Encode(r, msg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(r, rec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ber := stats.BitErrorRate(got, msg)
	if ber < 0.04 || ber > 0.09 {
		t.Fatalf("raw channel error = %v, want ≈0.065", ber)
	}
}

func TestDecodeParameterMismatches(t *testing.T) {
	r := newRig(t, "MSP432P401", "pm", 8<<10)
	key := stegocrypt.KeyFromPassphrase("k")
	msg := []byte("hello")
	opts := Options{Codec: paperCodec(t), Key: &key}
	rec, err := Encode(r, msg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(r, rec, Options{Codec: paperCodec(t)}); err == nil {
		t.Error("decode without key accepted for encrypted record")
	}
	if _, err := Decode(r, rec, Options{Key: &key}); err == nil ||
		!strings.Contains(err.Error(), "codec") {
		t.Errorf("codec mismatch not detected: %v", err)
	}
	if _, err := Decode(r, nil, opts); err == nil {
		t.Error("nil record accepted")
	}
}

func TestWrongKeyYieldsGarbage(t *testing.T) {
	r := newRig(t, "MSP432P401", "wk", 8<<10)
	key := stegocrypt.KeyFromPassphrase("right")
	wrong := stegocrypt.KeyFromPassphrase("wrong")
	msg := make([]byte, 512)
	rng.NewSource(9).Bytes(msg)
	opts := Options{Key: &key}
	rec, err := Encode(r, msg, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(r, rec, Options{Key: &wrong})
	if err != nil {
		t.Fatal(err)
	}
	if ber := stats.BitErrorRate(got, msg); ber < 0.4 {
		t.Fatalf("wrong key recovered message (ber=%v)", ber)
	}
}

func TestEncodeValidation(t *testing.T) {
	r := newRig(t, "MSP432P401", "val", 4<<10)
	if _, err := Encode(r, nil, Options{}); err != ErrEmptyMessage {
		t.Errorf("empty message: %v", err)
	}
	big := make([]byte, 5<<10)
	if _, err := Encode(r, big, Options{}); err == nil {
		t.Error("oversized payload accepted")
	}
}

func TestMaxMessageBytes(t *testing.T) {
	// Identity: full SRAM.
	if got := MaxMessageBytes(64<<10, nil); got != 64<<10 {
		t.Errorf("identity capacity = %d", got)
	}
	// 5-copy repetition on 64 KB: 12.8 KB (§5.3: "using five copies
	// allows Invisible Bits to hide 12.8KB of payload (20% × 64KB)").
	rep5, _ := ecc.NewRepetition(5)
	if got := MaxMessageBytes(64<<10, rep5); got != 64<<10/5 {
		t.Errorf("rep5 capacity = %d, want %d", got, 64<<10/5)
	}
	// Composite must respect both expansions.
	comp := ecc.Composite{Outer: ecc.Hamming74{}, Inner: rep5}
	got := MaxMessageBytes(64<<10, comp)
	if comp.EncodedLen(got) > 64<<10 || comp.EncodedLen(got+1) <= 64<<10 {
		t.Errorf("composite capacity %d not maximal", got)
	}
}

func TestCacheDeviceEncodesViaDebugPort(t *testing.T) {
	// The BCM2837 has no on-chip flash; core must fall back to debugger
	// writes (the paper's co-processor path).
	r := newRig(t, "BCM2837", "rpi", 4<<10)
	msg := make([]byte, 256)
	rng.NewSource(3).Bytes(msg)
	key := stegocrypt.KeyFromPassphrase("k")
	rep5, _ := ecc.NewRepetition(5)
	opts := Options{Codec: rep5, Key: &key}
	rec, err := Encode(r, msg, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(r, rec, opts)
	if err != nil {
		t.Fatal(err)
	}
	// BCM2837's channel error is ~21%; repetition(5) leaves a few
	// percent, so compare with tolerance rather than exactly.
	if ber := stats.BitErrorRate(got, msg); ber > 0.10 {
		t.Fatalf("cache-device decode error = %v", ber)
	}
}

func TestRecordStressHoursDefaultAndOverride(t *testing.T) {
	r := newRig(t, "MSP432P401", "sh", 4<<10)
	rec, err := Encode(r, []byte("x"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.StressHours != 10 {
		t.Errorf("default stress hours = %v", rec.StressHours)
	}
	r2 := newRig(t, "MSP432P401", "sh2", 4<<10)
	rec2, err := Encode(r2, []byte("x"), Options{StressHours: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rec2.StressHours != 2 {
		t.Errorf("override stress hours = %v", rec2.StressHours)
	}
}

func TestRawChannelError(t *testing.T) {
	r := newRig(t, "MSP432P401", "rce", 8<<10)
	payload := make([]byte, r.Device().SRAM.Bytes())
	rng.NewSource(4).Bytes(payload)
	rec, err := Encode(r, payload, Options{SkipCamouflage: true})
	if err != nil {
		t.Fatal(err)
	}
	_ = rec
	ber, err := RawChannelError(r, payload, 5)
	if err != nil {
		t.Fatal(err)
	}
	if ber < 0.04 || ber > 0.09 {
		t.Errorf("raw channel error = %v", ber)
	}
}

func TestCamouflageLoadedAfterEncode(t *testing.T) {
	r := newRig(t, "MSP432P401", "cam", 4<<10)
	if _, err := Encode(r, []byte("msg"), Options{}); err != nil {
		t.Fatal(err)
	}
	// The flash image must now be the camouflage program, not the writer:
	// run it and observe it never busy-waits (it loops forever writing a
	// tick counter).
	if _, err := r.PowerOn(); err != nil {
		t.Fatal(err)
	}
	reason, err := r.RunFirmware(10000)
	if err != nil {
		t.Fatal(err)
	}
	if reason.String() != "step-limit" {
		t.Errorf("camouflage firmware stopped with %v", reason)
	}
}
