package core

import (
	"crypto/hmac"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/hex"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"

	"invisiblebits/internal/ecc"
	"invisiblebits/internal/stegocrypt"
)

// DecodeArena owns every piece of scratch the post-capture decode tail
// needs — payload and message buffers, confidence/erasure planes, the
// CTR keystream, the compiled ECC pipeline, and the digest verifier —
// so a receiver decoding a stream of devices against one record shape
// allocates nothing in steady state. Set Options.Arena to opt a decode
// path in; DecodeVotes is the arena's native entry point.
//
// An arena is NOT safe for concurrent use: batch decoders keep one per
// worker. Message slices returned from arena-backed decodes are
// arena-owned and valid only until the arena's next use — copy them if
// they must outlive the next decode.
type DecodeArena struct {
	payload []byte
	msg     []byte
	votes   []uint16 // adaptive-ladder vote accumulator
	burst   []uint16 // adaptive-ladder per-burst scratch
	conf    []float64
	erased  []bool

	// Per-vote-value confidence table: confTab[v] = 1 − v/total, the
	// exact expression payloadConfidences computes per cell, so table
	// lookups are bit-identical to the scalar float path.
	confTab      []float64
	confTabTotal int

	// Integer erasure band for (total, deadZone): vote counts in
	// [bandLo, bandHi] are erasures. Derived by evaluating the exact
	// float predicate at every representable count, so the integer
	// compare can never disagree with the scalar mask.
	bandLo, bandHi int
	bandTotal      int
	bandDead       float64
	bandValid      bool

	// CTR keystream cache, keyed by (key, deviceID).
	ks      []byte
	ksKey   stegocrypt.Key
	ksDev   string
	ksValid bool

	// Compiled pipeline for the last codec seen, with its wire name
	// (Name() on a composite stack concatenates per call).
	pipe      *ecc.Pipeline
	pipeCodec ecc.Codec
	pipeName  string

	// Digest scratch: a reusable keyed HMAC, its sum/hex buffers, and
	// a byte-slice staging area for string writes.
	mac      hash.Hash
	macKey   stegocrypt.Key
	macValid bool
	sumBuf   [sha256.Size]byte
	hexBuf   [2 * sha256.Size]byte
	strBuf   []byte
}

// NewDecodeArena returns an empty arena; buffers grow on first use and
// are reused thereafter.
func NewDecodeArena() *DecodeArena { return &DecodeArena{} }

func growBytes(buf []byte, n int) []byte {
	if cap(buf) < n {
		return make([]byte, n)
	}
	return buf[:n]
}

func (a *DecodeArena) payloadBuf(n int) []byte {
	a.payload = growBytes(a.payload, n)
	return a.payload
}

func (a *DecodeArena) msgBuf(n int) []byte {
	a.msg = growBytes(a.msg, n)
	return a.msg
}

func (a *DecodeArena) votesBuf(n int) []uint16 {
	if cap(a.votes) < n {
		a.votes = make([]uint16, n)
	}
	return a.votes[:n]
}

func (a *DecodeArena) burstBuf(n int) []uint16 {
	if cap(a.burst) < n {
		a.burst = make([]uint16, n)
	}
	return a.burst[:n]
}

// pipelineFor returns the compiled pipeline for codec, reusing the
// cached one when the codec is unchanged. The equality probe is guarded
// against codecs whose dynamic type is not comparable (they just
// recompile every time).
func (a *DecodeArena) pipelineFor(c ecc.Codec) *ecc.Pipeline {
	if a.pipe != nil && sameCodec(a.pipeCodec, c) {
		return a.pipe
	}
	a.pipe = ecc.NewPipeline(c)
	a.pipeCodec = c
	a.pipeName = c.Name()
	return a.pipe
}

func sameCodec(x, y ecc.Codec) (eq bool) {
	defer func() {
		if recover() != nil {
			eq = false
		}
	}()
	return x == y
}

// keystream returns (and caches) the CTR keystream for (key, deviceID),
// at least n bytes of it.
func (a *DecodeArena) keystream(key stegocrypt.Key, deviceID string, n int) ([]byte, error) {
	if a.ksValid && a.ksKey == key && a.ksDev == deviceID && len(a.ks) >= n {
		return a.ks[:n], nil
	}
	ks, err := stegocrypt.StreamXOR(key, deviceID, make([]byte, n))
	if err != nil {
		return nil, err
	}
	a.ks, a.ksKey, a.ksDev, a.ksValid = ks, key, deviceID, true
	return ks, nil
}

// decryptInPlace reverses the encryption layer of an inverted payload
// in place — the arena twin of decryptPayload, XORing the cached
// keystream instead of re-deriving it per call.
func (a *DecodeArena) decryptInPlace(payload []byte, rec *Record, opts Options) error {
	if !rec.Encrypted {
		return nil
	}
	if opts.Key == nil {
		return errors.New("core: record is encrypted but no key supplied")
	}
	ks, err := a.keystream(*opts.Key, rec.DeviceID, len(payload))
	if err != nil {
		return fmt.Errorf("core: decrypt: %w", err)
	}
	subtle.XORBytes(payload, payload, ks)
	return nil
}

// payloadFromVotesInto hard-decides vote counts into dst, 8 cells per
// output byte, branchless: payload bit = ¬(power-on majority), i.e. set
// iff 2·votes < total iff votes < ⌈total/2⌉ (the subtract-and-shift
// extracts exactly that compare). Bit-identical to payloadFromVotes.
func payloadFromVotesInto(dst []byte, votes []uint16, total int) {
	t := uint32(total+1) / 2
	for i := range dst {
		v := votes[i*8 : i*8+8 : i*8+8]
		b := byte((uint32(v[0]) - t) >> 31)
		b |= byte((uint32(v[1])-t)>>31) << 1
		b |= byte((uint32(v[2])-t)>>31) << 2
		b |= byte((uint32(v[3])-t)>>31) << 3
		b |= byte((uint32(v[4])-t)>>31) << 4
		b |= byte((uint32(v[5])-t)>>31) << 5
		b |= byte((uint32(v[6])-t)>>31) << 6
		b |= byte((uint32(v[7])-t)>>31) << 7
		dst[i] = b
	}
}

// erasureBounds converts the float dead-zone predicate
// |votes − total/2| ≤ deadZone·total into inclusive integer vote
// bounds by evaluating the exact predicate at every count 0..total.
// The predicate is V-shaped in the count, so the satisfying set is a
// contiguous run; an empty run yields lo > hi.
func erasureBounds(total int, deadZone float64) (lo, hi int) {
	half := float64(total) / 2
	band := deadZone * float64(total)
	lo, hi = 1, 0
	for v := 0; v <= total; v++ {
		d := float64(v) - half
		if d < 0 {
			d = -d
		}
		if d <= band {
			if lo > hi {
				lo = v
			}
			hi = v
		}
	}
	return lo, hi
}

// erasureMaskInto is the arena twin of erasureMask: the float dead-zone
// compare collapses to one cached integer range check per cell.
func (a *DecodeArena) erasureMaskInto(votes []uint16, total, payloadBits int, deadZone float64) []bool {
	if !a.bandValid || a.bandTotal != total || a.bandDead != deadZone {
		a.bandLo, a.bandHi = erasureBounds(total, deadZone)
		a.bandTotal, a.bandDead, a.bandValid = total, deadZone, true
	}
	if cap(a.erased) < payloadBits {
		a.erased = make([]bool, payloadBits)
	}
	mask := a.erased[:payloadBits]
	lo, hi := uint16(a.bandLo), uint16(a.bandHi)
	if a.bandLo > a.bandHi {
		for i := range mask {
			mask[i] = false
		}
		return mask
	}
	for i := range mask {
		v := votes[i]
		mask[i] = v >= lo && v <= hi
	}
	return mask
}

// confidences is the arena twin of payloadConfidences: the per-cell
// 1 − votes/total expression becomes a per-vote-value table lookup
// (bit-identical floats — the table entries are computed with the very
// same expression), and the keystream flip reuses the cached stream.
func (a *DecodeArena) confidences(votes []uint16, total int, rec *Record, opts Options) ([]float64, error) {
	payloadBits := rec.PayloadBytes * 8
	if payloadBits > len(votes) {
		return nil, fmt.Errorf("core: record claims %d payload bits but SRAM has %d cells",
			payloadBits, len(votes))
	}
	if a.confTabTotal != total || a.confTab == nil {
		if cap(a.confTab) < total+1 {
			a.confTab = make([]float64, total+1)
		}
		a.confTab = a.confTab[:total+1]
		invN := 1 / float64(total)
		for v := range a.confTab {
			a.confTab[v] = 1 - float64(v)*invN
		}
		a.confTabTotal = total
	}
	if cap(a.conf) < payloadBits {
		a.conf = make([]float64, payloadBits)
	}
	conf := a.conf[:payloadBits]
	tab := a.confTab
	for i := range conf {
		conf[i] = tab[votes[i]]
	}
	if rec.Encrypted {
		if opts.Key == nil {
			return nil, errors.New("core: record is encrypted but no key supplied")
		}
		ks, err := a.keystream(*opts.Key, rec.DeviceID, rec.PayloadBytes)
		if err != nil {
			return nil, fmt.Errorf("core: keystream: %w", err)
		}
		for i := range conf {
			if ks[i/8]&(1<<(i%8)) != 0 {
				conf[i] = 1 - conf[i]
			}
		}
	}
	return conf, nil
}

// Package-level byte views of the digest domain constants, so the
// alloc-free verifier never converts strings per call.
var (
	digestDomainBytes = []byte(digestDomain)
	digestZeroSep     = []byte{0}
)

// verifyMessage is the arena twin of Record.VerifyMessage: identical
// accept/reject behavior, no per-call allocation. The CRC path formats
// the checksum into scratch and compares; the HMAC path reuses one
// keyed MAC across calls and compares hex in constant time.
func (a *DecodeArena) verifyMessage(rec *Record, msg []byte, key *stegocrypt.Key) error {
	if rec.Digest == "" {
		return ErrNoDigest
	}
	switch rec.DigestAlgo {
	case DigestCRC32:
		if !crcDigestEqual(crc32.ChecksumIEEE(msg), rec.Digest) {
			return ErrDigestMismatch
		}
	case DigestHMACSHA256:
		if key == nil {
			return ErrDigestNeedsKey
		}
		if !a.macValid || a.macKey != *key {
			a.mac = hmac.New(sha256.New, key[:])
			a.macKey, a.macValid = *key, true
		} else {
			a.mac.Reset()
		}
		a.mac.Write(digestDomainBytes)
		a.mac.Write(digestZeroSep)
		a.strBuf = append(a.strBuf[:0], rec.DeviceID...)
		a.mac.Write(a.strBuf)
		a.mac.Write(digestZeroSep)
		a.mac.Write(msg)
		sum := a.mac.Sum(a.sumBuf[:0])
		hex.Encode(a.hexBuf[:], sum)
		if len(rec.Digest) != len(a.hexBuf) {
			return ErrDigestMismatch
		}
		var diff byte
		for i := range a.hexBuf {
			diff |= a.hexBuf[i] ^ rec.Digest[i]
		}
		if diff != 0 {
			return ErrDigestMismatch
		}
	default:
		return fmt.Errorf("core: unknown digest algorithm %q", rec.DigestAlgo)
	}
	return nil
}

// crcDigestEqual reports whether digest is exactly the %08x rendering
// of want — the same accept set as formatting and comparing strings,
// without the format allocation.
func crcDigestEqual(want uint32, digest string) bool {
	if len(digest) != 8 {
		return false
	}
	const hexdigits = "0123456789abcdef"
	for i := 7; i >= 0; i-- {
		if digest[i] != hexdigits[want&0xF] {
			return false
		}
		want >>= 4
	}
	return true
}

// DecodeVotes runs the full post-capture decode tail — hard-decide,
// invert, decrypt, ECC-decode, digest-verify — from accumulated vote
// counts (total captures) to plaintext, entirely within the arena: warm
// calls allocate nothing. The returned message is arena-owned scratch.
// Records without a digest skip verification (there is nothing to
// check); digest failures return ErrDigestMismatch.
func (a *DecodeArena) DecodeVotes(rec *Record, votes []uint16, total int, opts Options) ([]byte, error) {
	if rec == nil {
		return nil, errors.New("core: nil record")
	}
	codec := opts.codec()
	pipe := a.pipelineFor(codec)
	if a.pipeName != rec.CodecName {
		return nil, fmt.Errorf("core: codec %q does not match record's %q", a.pipeName, rec.CodecName)
	}
	codedLen, err := recordCodedLen(rec, codec)
	if err != nil {
		return nil, err
	}
	if rec.PayloadBytes*8 > len(votes) {
		return nil, fmt.Errorf("core: record claims %d payload bits but SRAM has %d cells",
			rec.PayloadBytes*8, len(votes))
	}
	payload := a.payloadBuf(rec.PayloadBytes)
	payloadFromVotesInto(payload, votes, total)
	if err := a.decryptInPlace(payload, rec, opts); err != nil {
		return nil, err
	}
	msg := a.msgBuf(rec.MessageBytes)
	if err := pipe.DecodeInto(msg, payload[:codedLen], rec.MessageBytes); err != nil {
		return nil, fmt.Errorf("core: ecc decode: %w", err)
	}
	if rec.HasDigest() {
		if err := a.verifyMessage(rec, msg, opts.Key); err != nil {
			return nil, err
		}
	}
	return msg, nil
}

// DecodeVotes is the package-level convenience: it decodes accumulated
// vote counts through Options.Arena when set, or a throwaway arena
// otherwise, and returns a message the caller owns either way (the
// arena-owned scratch is copied out).
func DecodeVotes(rec *Record, votes []uint16, total int, opts Options) ([]byte, error) {
	a := opts.Arena
	if a == nil {
		a = NewDecodeArena()
	}
	msg, err := a.DecodeVotes(rec, votes, total, opts)
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(msg))
	copy(out, msg)
	return out, nil
}
