package core

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"invisiblebits/internal/device"
	"invisiblebits/internal/faults"
	"invisiblebits/internal/rig"
	"invisiblebits/internal/stegocrypt"
)

func newFaultyCoreRig(t *testing.T, serial string, p faults.Profile) *rig.Rig {
	t.Helper()
	m, err := device.ByName("MSP432P401")
	if err != nil {
		t.Fatal(err)
	}
	d, err := device.New(m, serial, device.WithSRAMLimit(8<<10))
	if err != nil {
		t.Fatal(err)
	}
	return rig.New(d, rig.WithInjector(faults.New(p, d.Serial)))
}

func TestEncodeDecodeSurvivesFlakyLink(t *testing.T) {
	// A 25% per-operation link-drop rate hits the writer flash, the
	// camouflage flash, the retainer flash, and the capture burst; the
	// bounded retry layer must ride through all of them.
	r := newFaultyCoreRig(t, "flaky-e2e", faults.Profile{Seed: 11, LinkDropRate: 0.25})
	key := stegocrypt.KeyFromPassphrase("flaky")
	msg := []byte("survives a flaky probe")
	opts := Options{Codec: paperCodec(t), Key: &key}

	rec, err := Encode(r, msg, opts)
	if err != nil {
		t.Fatalf("encode under flaky link: %v", err)
	}
	got, err := Decode(r, rec, opts)
	if err != nil {
		t.Fatalf("decode under flaky link: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("got %q want %q", got, msg)
	}
}

func TestRetryBackoffChargesEncodingHours(t *testing.T) {
	// Retries are not free: each one charges simulated bench time. Run
	// the same encode on clean and flaky rigs (same silicon) and check
	// the flaky campaign's clock ran longer.
	clean := newRig(t, "MSP432P401", "backoff-probe", 8<<10)
	flaky := newFaultyCoreRig(t, "backoff-probe", faults.Profile{Seed: 5, LinkDropRate: 0.4})
	msg := []byte("time is the cost of failure")
	opts := Options{Codec: paperCodec(t)}
	if _, err := Encode(clean, msg, opts); err != nil {
		t.Fatal(err)
	}
	if _, err := Encode(flaky, msg, opts); err != nil {
		t.Fatalf("encode under flaky link: %v", err)
	}
	if flaky.ClockHours() <= clean.ClockHours() {
		t.Errorf("flaky clock %vh not above clean %vh — backoff not charged",
			flaky.ClockHours(), clean.ClockHours())
	}
	if !strings.Contains(strings.Join(flaky.Events(), "\n"), "idle") {
		t.Error("no idle (backoff) entries in the flaky rig's event log")
	}
}

func TestRetriesDisabledFailsFast(t *testing.T) {
	r := newFaultyCoreRig(t, "no-retry", faults.Profile{Seed: 2, LinkDropRate: 1})
	opts := Options{MaxRetries: -1}
	_, err := Encode(r, []byte("x"), opts)
	if !faults.IsTransient(err) {
		t.Fatalf("MaxRetries<0 did not surface the transient fault: %v", err)
	}
}

func TestEncodeAbortsOnPermanentDeath(t *testing.T) {
	// Death mid-soak must abort the encode with a permanent
	// classification, not burn the retry budget.
	r := newFaultyCoreRig(t, "doomed-encode", faults.Profile{FailAtHours: 2})
	_, err := Encode(r, []byte("never makes it"), Options{})
	if !faults.IsPermanent(err) {
		t.Fatalf("mid-soak death surfaced as %v", err)
	}
	if r.Device().Alive() {
		t.Error("device alive after fatal encode")
	}
}

func TestEncodeContextCancellation(t *testing.T) {
	r := newRig(t, "MSP432P401", "cancel-encode", 8<<10)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := EncodeContext(ctx, r, []byte("cancelled"), Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled encode returned %v", err)
	}
	_, err = DecodeContext(ctx, r, &Record{DeviceID: "x", MessageBytes: 1, PayloadBytes: 4, CodecName: "identity", Captures: 5}, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled decode returned %v", err)
	}
}

func TestStuckCellsAbsorbedByECC(t *testing.T) {
	// A handful of stuck cells land inside the paper codec's correction
	// budget; the message must still come back clean.
	r := newFaultyCoreRig(t, "stuck-ecc", faults.Profile{Seed: 21, StuckFrac: 0.002})
	key := stegocrypt.KeyFromPassphrase("stuck")
	msg := []byte("stuck cells are just more channel noise")
	opts := Options{Codec: paperCodec(t), Key: &key}
	rec, err := Encode(r, msg, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(r, rec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("stuck cells broke the message: got %q", got)
	}
}
