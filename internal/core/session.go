package core

import (
	"context"
	"fmt"

	"invisiblebits/internal/rig"
)

// EncodeSession is a staged encode: Algorithm 1 decomposed into
// prepare → sliced soak → finish, so a supervisor can journal progress
// after every stress slice and checkpoint the device image at slice
// boundaries. EncodeContext is exactly BeginEncode + one full-length
// StressSlice + Finish, so the staged path and the one-shot path share
// every line of pipeline code.
//
// The session is not safe for concurrent use; like the rig it drives,
// it belongs to one goroutine.
type EncodeSession struct {
	r          *rig.Rig
	message    []byte
	opts       Options
	payloadLen int
	totalHours float64
	applied    float64
	finished   bool
}

// BeginEncode runs the prepare phase of Algorithm 1 (lines 1–4 plus the
// ramp to accelerated conditions): payload build, capacity check,
// payload-writer firmware, then the chamber and supply are brought to
// the device's stress point. On return the device is soak-ready and the
// caller owns the stress schedule.
func BeginEncode(ctx context.Context, r *rig.Rig, message []byte, opts Options) (*EncodeSession, error) {
	dev := r.Device()
	payload, err := BuildPayload(message, dev.DeviceID(), opts)
	if err != nil {
		return nil, err
	}
	if len(payload) > dev.SRAM.Bytes() {
		return nil, fmt.Errorf("%w: payload %d bytes, SRAM %d bytes",
			ErrPayloadTooLarge, len(payload), dev.SRAM.Bytes())
	}

	// Lines 3–4: nominal conditions, load binaries, initialize SRAM.
	r.SetTemperature(dev.Model.TNomC)
	if err := r.SetVoltage(dev.Model.VNomV); err != nil {
		return nil, err
	}
	if err := writePayloadToSRAM(ctx, r, payload, opts); err != nil {
		return nil, err
	}

	// Lines 5–6 head: elevate to accelerated conditions.
	if dev.Model.RequiresRegulatorBypass {
		if err := r.BypassRegulator(); err != nil {
			return nil, err
		}
	}
	if err := r.SetVoltage(dev.Model.VAccV); err != nil {
		return nil, err
	}
	r.SetTemperature(dev.Model.TAccC)

	hours := opts.StressHours
	if hours <= 0 {
		hours = dev.Model.EncodingHours
	}
	return &EncodeSession{r: r, message: message, opts: opts, payloadLen: len(payload), totalHours: hours}, nil
}

// ResumeEncode reconstructs a session around a device restored from a
// mid-soak checkpoint: the payload is already in SRAM, appliedHours of
// stress have already been absorbed, and the rig's controller state
// (conditions, clock, bypass) has been re-established via
// rig.RestoreState. No device operation runs; the next StressSlice
// continues the soak exactly where the checkpoint left it.
func ResumeEncode(ctx context.Context, r *rig.Rig, message []byte, opts Options, appliedHours float64) (*EncodeSession, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	dev := r.Device()
	payload, err := BuildPayload(message, dev.DeviceID(), opts)
	if err != nil {
		return nil, err
	}
	if len(payload) > dev.SRAM.Bytes() {
		return nil, fmt.Errorf("%w: payload %d bytes, SRAM %d bytes",
			ErrPayloadTooLarge, len(payload), dev.SRAM.Bytes())
	}
	hours := opts.StressHours
	if hours <= 0 {
		hours = dev.Model.EncodingHours
	}
	if appliedHours < 0 || appliedHours > hours {
		return nil, fmt.Errorf("core: resumed session claims %.2fh of %.2fh applied", appliedHours, hours)
	}
	return &EncodeSession{
		r: r, message: message, opts: opts,
		payloadLen: len(payload), totalHours: hours, applied: appliedHours,
	}, nil
}

// TotalHours is the planned soak length.
func (s *EncodeSession) TotalHours() float64 { return s.totalHours }

// AppliedHours is the stress absorbed so far (including checkpointed
// hours a resumed session inherited).
func (s *EncodeSession) AppliedHours() float64 { return s.applied }

// RemainingHours is the soak still owed.
func (s *EncodeSession) RemainingHours() float64 {
	rem := s.totalHours - s.applied
	if rem < 0 {
		return 0
	}
	return rem
}

// StressSlice soaks for hours at the session's accelerated conditions,
// clamped to the remaining schedule. Zero-remaining slices are no-ops.
func (s *EncodeSession) StressSlice(ctx context.Context, hours float64) error {
	if s.finished {
		return fmt.Errorf("core: stress slice on a finished encode session")
	}
	if hours > s.RemainingHours() {
		hours = s.RemainingHours()
	}
	if hours <= 0 {
		return nil
	}
	if err := s.r.StressForContext(ctx, hours); err != nil {
		return err
	}
	s.applied += hours
	return nil
}

// Finish completes the encode (the tail of Algorithm 1): restore
// nominal conditions, power down, camouflage, and mint the Record. The
// full soak must have been applied.
func (s *EncodeSession) Finish(ctx context.Context) (*Record, error) {
	if s.finished {
		return nil, fmt.Errorf("core: encode session already finished")
	}
	if rem := s.RemainingHours(); rem > 1e-9 {
		return nil, fmt.Errorf("core: finish with %.2fh of soak still owed", rem)
	}
	dev := s.r.Device()
	s.r.SetTemperature(dev.Model.TNomC)
	if err := s.r.SetVoltage(dev.Model.VNomV); err != nil {
		return nil, err
	}
	s.r.PowerOff()
	if !s.opts.SkipCamouflage && dev.Flash != nil {
		if err := loadCamouflage(ctx, s.r, s.opts); err != nil {
			return nil, err
		}
	}
	s.finished = true

	algo, digest := computeDigest(s.message, dev.DeviceID(), s.opts.Key)
	return &Record{
		DeviceID:     dev.DeviceID(),
		MessageBytes: len(s.message),
		PayloadBytes: s.payloadLen,
		CodecName:    s.opts.codec().Name(),
		Encrypted:    s.opts.Key != nil,
		Captures:     s.opts.captures(),
		StressHours:  s.totalHours,
		Digest:       digest,
		DigestAlgo:   algo,
	}, nil
}
