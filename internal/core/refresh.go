package core

import (
	"context"
	"fmt"

	"invisiblebits/internal/device"
	"invisiblebits/internal/rig"
)

// RefreshReport accounts for one maintenance refresh of a decaying
// carrier.
type RefreshReport struct {
	// Decode is the adaptive-decode report for the recovery step — the
	// effort it took to pin the message down before rewriting it.
	Decode *DecodeReport
	// MarginBefore/MarginAfter are the array mean margins measured
	// around the re-stress.
	MarginBefore float64
	MarginAfter  float64
	// StressHours is the re-stress soak the refresh charged.
	StressHours float64
}

// Refresh restores a decaying imprint: it recovers the message with the
// full adaptive ladder (digest-verified — a refresh must never burn a
// wrong message deeper into the silicon), rebuilds the payload, rewrites
// it into SRAM, and re-stresses at accelerated conditions. The overdrive
// step runs through the rig's safe-voltage interlock exactly like a
// first encode: a model whose ceiling forbids VAccV fails here rather
// than cooking the device. stressHours ≤ 0 uses the model's Table 4
// encoding time.
//
// On success the device's maintenance ledger gains a RefreshEvent and
// the report carries margins before/after.
func Refresh(ctx context.Context, r *rig.Rig, rec *Record, aopts AdaptiveOptions, stressHours float64) (*RefreshReport, error) {
	opts := aopts.Options
	dev := r.Device()

	before, err := probeMargin(ctx, r, opts)
	if err != nil {
		return nil, fmt.Errorf("core: refresh pre-probe: %w", err)
	}

	msg, decRep, err := DecodeAdaptive(ctx, r, rec, aopts)
	rep := &RefreshReport{Decode: decRep, MarginBefore: before}
	if err != nil {
		return rep, fmt.Errorf("core: refresh decode: %w", err)
	}

	payload, err := BuildPayload(msg, rec.DeviceID, opts)
	if err != nil {
		return rep, err
	}
	if len(payload) != rec.PayloadBytes {
		return rep, fmt.Errorf("%w: rebuilt payload is %d bytes, record claims %d",
			ErrRecordShape, len(payload), rec.PayloadBytes)
	}

	// Rewrite and re-soak: the same conditions discipline as a first
	// encode (nominal write, accelerated stress, nominal restore).
	r.SetTemperature(dev.Model.TNomC)
	if err := r.SetVoltage(dev.Model.VNomV); err != nil {
		return rep, err
	}
	if err := writePayloadToSRAM(ctx, r, payload, opts); err != nil {
		return rep, err
	}
	if dev.Model.RequiresRegulatorBypass {
		if err := r.BypassRegulator(); err != nil {
			return rep, err
		}
	}
	if err := r.SetVoltage(dev.Model.VAccV); err != nil {
		return rep, err
	}
	r.SetTemperature(dev.Model.TAccC)
	hours := stressHours
	if hours <= 0 {
		hours = dev.Model.EncodingHours
	}
	rep.StressHours = hours
	if err := r.StressForContext(ctx, hours); err != nil {
		return rep, err
	}
	r.SetTemperature(dev.Model.TNomC)
	if err := r.SetVoltage(dev.Model.VNomV); err != nil {
		return rep, err
	}
	r.PowerOff()
	if !opts.SkipCamouflage && dev.Flash != nil {
		// Re-arm camouflage so a refreshed carrier looks no different
		// from a freshly encoded one.
		if err := loadCamouflage(ctx, r, opts); err != nil {
			return rep, err
		}
	}

	after, err := probeMargin(ctx, r, opts)
	if err != nil {
		return rep, fmt.Errorf("core: refresh post-probe: %w", err)
	}
	rep.MarginAfter = after
	dev.RecordRefresh(device.RefreshEvent{
		ClockHours:   r.ClockHours(),
		StressHours:  hours,
		MarginBefore: before,
		MarginAfter:  after,
	})
	return rep, nil
}

// probeMargin runs a health probe under the options' retry policy and
// returns the array mean margin.
func probeMargin(ctx context.Context, r *rig.Rig, opts Options) (float64, error) {
	var hr *rig.HealthReport
	err := opts.retry(ctx, r, func() error {
		var perr error
		hr, perr = r.ProbeHealthContext(ctx, 0, 0)
		return perr
	})
	if err != nil {
		return 0, err
	}
	return hr.MeanMargin, nil
}
