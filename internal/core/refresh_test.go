package core

import (
	"bytes"
	"context"
	"testing"

	"invisiblebits/internal/device"
)

func TestRefreshExtendsRetention(t *testing.T) {
	// Mid-life maintenance: after a year of hot shelf the imprint is
	// re-read through the ladder, verified against the digest, and
	// re-soaked. A second year of shelf then lands on a rejuvenated
	// imprint, and plain fixed-effort decode succeeds where the
	// unrefreshed twin (see the retention sweep) has already failed.
	ctx := context.Background()
	r, opts, aopts, msg := decayCampaign(t, "vault-refresh-2y")

	rec, err := EncodeContext(ctx, r, msg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.ShelveAtFor(365*24, 45); err != nil {
		t.Fatal(err)
	}

	rr, err := Refresh(ctx, r, rec, aopts, opts.StressHours)
	if err != nil {
		t.Fatalf("Refresh: %v", err)
	}
	if rr.Decode == nil || !rr.Decode.Verified {
		t.Fatalf("refresh decode report: %+v", rr.Decode)
	}
	if rr.StressHours != opts.StressHours {
		t.Fatalf("StressHours = %v, want %v", rr.StressHours, opts.StressHours)
	}
	if rr.MarginAfter <= rr.MarginBefore {
		t.Fatalf("margin %0.4f -> %0.4f, want the re-soak to recover margin",
			rr.MarginBefore, rr.MarginAfter)
	}

	// The maintenance event lands in the device's tamper-evident ledger
	// and survives an image save/load round trip (image format v2).
	log := r.Device().RefreshLog()
	if len(log) != 1 {
		t.Fatalf("refresh ledger has %d events, want 1", len(log))
	}
	if log[0].StressHours != opts.StressHours || log[0].MarginAfter != rr.MarginAfter {
		t.Fatalf("ledger event %+v does not match report %+v", log[0], rr)
	}
	var buf bytes.Buffer
	if err := r.Device().Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := device.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := restored.RefreshLog(); len(got) != 1 || got[0] != log[0] {
		t.Fatalf("ledger after save/load = %+v, want %+v", got, log)
	}

	// Second year of shelf on the refreshed imprint.
	if err := r.ShelveAtFor(365*24, 45); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeContext(ctx, r, rec, opts)
	if err != nil {
		t.Fatalf("post-refresh hard decode: %v", err)
	}
	if err := rec.VerifyMessage(got, opts.Key); err != nil {
		t.Fatalf("post-refresh digest: %v", err)
	}
	if string(got) != string(msg) {
		t.Fatal("post-refresh decode returned wrong message")
	}
}
