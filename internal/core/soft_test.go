package core

import (
	"bytes"
	"testing"

	"invisiblebits/internal/ecc"
	"invisiblebits/internal/rng"
	"invisiblebits/internal/stats"
	"invisiblebits/internal/stegocrypt"
)

func TestSoftDecodeRoundTrip(t *testing.T) {
	r := newRig(t, "MSP432P401", "soft1", 8<<10)
	key := stegocrypt.KeyFromPassphrase("soft")
	rep, err := ecc.NewRepetition(7)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Codec: rep, Key: &key}
	msg := make([]byte, 512)
	rng.NewSource(61).Bytes(msg)
	rec, err := Encode(r, msg, opts)
	if err != nil {
		t.Fatal(err)
	}
	softOpts := opts
	softOpts.Soft = true
	got, err := Decode(r, rec, softOpts)
	if err != nil {
		t.Fatal(err)
	}
	// rep(7) alone leaves a ~0.06% residual on the 6.5% channel; require
	// the soft path to land at or below that (exact equality is for the
	// composite paper codec, tested separately).
	if ber := stats.BitErrorRate(got, msg); ber > 0.005 {
		t.Fatalf("soft decode residual = %v", ber)
	}
}

func TestSoftDecodeNotWorseThanHard(t *testing.T) {
	// On a deliberately weak encoding (2h stress, 3 copies) both decoders
	// leave residual errors; soft must not be worse.
	r := newRig(t, "MSP432P401", "soft2", 8<<10)
	rep, err := ecc.NewRepetition(3)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Codec: rep, StressHours: 2}
	msg := make([]byte, 2<<10)
	rng.NewSource(62).Bytes(msg)
	rec, err := Encode(r, msg, opts)
	if err != nil {
		t.Fatal(err)
	}
	hard, err := Decode(r, rec, opts)
	if err != nil {
		t.Fatal(err)
	}
	softOpts := opts
	softOpts.Soft = true
	soft, err := Decode(r, rec, softOpts)
	if err != nil {
		t.Fatal(err)
	}
	eHard := stats.BitErrorRate(hard, msg)
	eSoft := stats.BitErrorRate(soft, msg)
	if eSoft > eHard+0.002 {
		t.Errorf("soft decode (%v) worse than hard (%v)", eSoft, eHard)
	}
}

func TestSoftDecodeRequiresSoftCodec(t *testing.T) {
	r := newRig(t, "MSP432P401", "soft3", 4<<10)
	opts := Options{Codec: ecc.Hamming74{}}
	msg := []byte("hi")
	rec, err := Encode(r, msg, opts)
	if err != nil {
		t.Fatal(err)
	}
	softOpts := opts
	softOpts.Soft = true
	if _, err := Decode(r, rec, softOpts); err == nil {
		t.Fatal("hard-only codec accepted for soft decoding")
	}
}

func TestSoftDecodeEncryptedMatchesHard(t *testing.T) {
	// The keystream confidence-flip must be exactly consistent with hard
	// XOR decryption: with strong encoding both paths recover the message.
	r := newRig(t, "MSP432P401", "soft4", 8<<10)
	key := stegocrypt.KeyFromPassphrase("flip")
	opts := Options{Codec: paperCodec(t), Key: &key}
	msg := []byte("keystream flip consistency")
	rec, err := Encode(r, msg, opts)
	if err != nil {
		t.Fatal(err)
	}
	hard, err := Decode(r, rec, opts)
	if err != nil {
		t.Fatal(err)
	}
	softOpts := opts
	softOpts.Soft = true
	soft, err := Decode(r, rec, softOpts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(hard, soft) || !bytes.Equal(soft, msg) {
		t.Fatalf("hard %q vs soft %q vs msg %q", hard, soft, msg)
	}
}

func TestSoftDecodeMissingKey(t *testing.T) {
	r := newRig(t, "MSP432P401", "soft5", 4<<10)
	key := stegocrypt.KeyFromPassphrase("k")
	rep, err := ecc.NewRepetition(3)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Codec: rep, Key: &key}
	rec, err := Encode(r, []byte("x"), opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(r, rec, Options{Codec: rep, Soft: true}); err == nil {
		t.Fatal("missing key accepted on soft path")
	}
}
