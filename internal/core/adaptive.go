package core

import (
	"context"
	"errors"
	"fmt"
	"math/bits"

	"invisiblebits/internal/ecc"
	"invisiblebits/internal/rig"
	"invisiblebits/internal/stegocrypt"
)

// Adaptive-decode defaults.
const (
	// DefaultInitialCaptures is the cheap first rung: three captures is
	// the minimum odd majority, a fraction of the paper's five.
	DefaultInitialCaptures = 3
	// DefaultMaxAdaptiveCaptures caps the ladder's total capture budget
	// per decode (5× the paper's count at the deepest rung).
	DefaultMaxAdaptiveCaptures = 25
	// DefaultErasureDeadZone is the half-width around P=0.5 inside which
	// a coded bit's vote confidence is declared an erasure: with 15
	// captures, |votes/15 − 0.5| ≤ 0.15 means the cell split at worst
	// 10–5 — channel noise, not imprint.
	DefaultErasureDeadZone = 0.15
)

// Rung names used in DecodeReport.
const (
	RungHard     = "hard"
	RungHardMore = "hard+captures"
	RungSoft     = "soft"
	RungErasure  = "erasure"
)

// AdaptiveOptions configures DecodeAdaptive. The embedded Options carry
// the codec/key/retry policy; Captures is ignored (the ladder sets its
// own schedule from InitialCaptures/MaxCaptures).
type AdaptiveOptions struct {
	Options
	// InitialCaptures is the first rung's capture count (rounded up to
	// odd); 0 means DefaultInitialCaptures.
	InitialCaptures int
	// MaxCaptures caps total captures across all rungs; 0 means
	// DefaultMaxAdaptiveCaptures.
	MaxCaptures int
	// ErasureDeadZone is the confidence half-width around 0.5 that marks
	// a coded bit as erased on the deepest rung; 0 means
	// DefaultErasureDeadZone, values are clamped to (0, 0.5].
	ErasureDeadZone float64
}

func (a AdaptiveOptions) initial() int {
	n := a.InitialCaptures
	if n <= 0 {
		n = DefaultInitialCaptures
	}
	if n%2 == 0 {
		n++
	}
	return n
}

func (a AdaptiveOptions) max() int {
	m := a.MaxCaptures
	if m <= 0 {
		m = DefaultMaxAdaptiveCaptures
	}
	if m < a.initial() {
		m = a.initial()
	}
	return m
}

func (a AdaptiveOptions) deadZone() float64 {
	dz := a.ErasureDeadZone
	if dz <= 0 {
		return DefaultErasureDeadZone
	}
	if dz > 0.5 {
		return 0.5
	}
	return dz
}

// RungResult records one attempt of the escalation ladder.
type RungResult struct {
	Name     string // RungHard, RungHardMore, RungSoft, RungErasure
	Captures int    // cumulative captures available to this rung
	Verified bool   // digest matched on this rung
	Skipped  bool   // rung not applicable (codec lacks soft/erasure support)
	Note     string // failure or skip reason
}

// DecodeReport is the structured account of an adaptive decode: which
// rungs ran, how much capture effort was spent, and how noisy the
// channel looked once the message was pinned down.
type DecodeReport struct {
	Rungs         []RungResult
	CapturesSpent int    // total power-on captures consumed
	Verified      bool   // digest verified on some rung
	VerifiedRung  string // name of the verifying rung ("" if none)
	// ResidualChannelError is the fraction of payload bits whose
	// accumulated hard majority disagrees with the re-encoded verified
	// message — the channel error the ladder decoded through. −1 when
	// unknown (no verified message to re-encode).
	ResidualChannelError float64
	// UnresolvedBits counts message bits the erasure rung left open
	// (only meaningful when the erasure rung ran).
	UnresolvedBits int
}

// Escalated reports whether the ladder needed more than its first rung:
// extra captures were spent beyond the initial burst, or the verifying
// rung was not the first one attempted.
func (rep *DecodeReport) Escalated() bool {
	if rep == nil || len(rep.Rungs) == 0 {
		return false
	}
	if rep.CapturesSpent > rep.Rungs[0].Captures {
		return true
	}
	return rep.Verified && rep.VerifiedRung != rep.Rungs[0].Name
}

// DecodeAdaptive runs the self-verifying escalation ladder against the
// rig's device. It starts with a cheap low-capture hard decode, checks
// the record's integrity digest, and escalates only on mismatch:
//
//	hard @ I captures → hard @ 3I → soft @ Max → erasure-aware @ Max
//
// (capped at MaxCaptures). Captures accumulate across rungs — vote
// counts from earlier bursts are reused, never re-sampled from scratch
// — so the ladder's total cost is the deepest rung's capture count, not
// the sum. The deepest rung marks coded bits whose vote confidence sits
// inside the dead zone as erasures (requires the codec to implement
// ecc.ErasureDecoder; skipped otherwise).
//
// On success the verified message and a DecodeReport are returned. On
// exhaustion the report is still returned alongside ErrDigestMismatch
// so callers can see how hard the ladder tried. Records without a
// digest fail fast with ErrNoDigest.
func DecodeAdaptive(ctx context.Context, r *rig.Rig, rec *Record, aopts AdaptiveOptions) ([]byte, *DecodeReport, error) {
	if rec == nil {
		return nil, nil, errors.New("core: nil record")
	}
	if !rec.HasDigest() {
		return nil, nil, ErrNoDigest
	}
	opts := aopts.Options
	codec := opts.codec()
	if codec.Name() != rec.CodecName {
		return nil, nil, fmt.Errorf("core: codec %q does not match record's %q", codec.Name(), rec.CodecName)
	}
	codedLen, err := recordCodedLen(rec, codec)
	if err != nil {
		return nil, nil, err
	}
	if rec.Encrypted && opts.Key == nil {
		return nil, nil, errors.New("core: record is encrypted but no key supplied")
	}
	if err := prepareDecode(ctx, r, opts); err != nil {
		return nil, nil, err
	}

	arena := opts.Arena
	report := &DecodeReport{ResidualChannelError: -1}
	// Accumulated vote counts and total captures so far. sampleTo tops
	// the accumulator up to a target count; earlier bursts are never
	// discarded. With an arena, the accumulator and per-burst scratch
	// are arena-owned and the burst is sampled in place.
	var votes []uint16
	total := 0
	sampleTo := func(target int) error {
		delta := target - total
		if delta <= 0 {
			return nil
		}
		var burst []uint16
		if arena != nil {
			burst = arena.burstBuf(r.Device().SRAM.Cells())
			if err := opts.retry(ctx, r, func() error {
				return r.SampleVotesIntoContext(ctx, delta, burst)
			}); err != nil {
				return err
			}
		} else if err := opts.retry(ctx, r, func() error {
			var serr error
			burst, serr = r.SampleVotesContext(ctx, delta)
			return serr
		}); err != nil {
			return err
		}
		if votes == nil {
			if rec.PayloadBytes*8 > len(burst) {
				return fmt.Errorf("core: record claims %d payload bits but SRAM has %d cells",
					rec.PayloadBytes*8, len(burst))
			}
			if arena != nil {
				votes = arena.votesBuf(len(burst))
				copy(votes, burst)
			} else {
				votes = burst
			}
		} else {
			for i := range votes {
				votes[i] += burst[i]
			}
		}
		total = target
		report.CapturesSpent = total
		return nil
	}

	// hardPayload hard-decides the accumulated votes and decrypts,
	// through arena scratch when one is supplied.
	hardPayload := func() ([]byte, error) {
		if arena != nil {
			p := arena.payloadBuf(rec.PayloadBytes)
			payloadFromVotesInto(p, votes, total)
			if err := arena.decryptInPlace(p, rec, opts); err != nil {
				return nil, err
			}
			return p, nil
		}
		return decryptPayload(payloadFromVotes(votes, total, rec.PayloadBytes), rec, opts)
	}

	// Capture schedule: I, then 3I, then the full budget. Odd totals
	// keep hard majorities tie-free. The deep rungs spend everything:
	// weak cells are per-capture coin flips, and their vote fractions
	// concentrate around ½ (where soft combining neutralizes them and
	// the dead zone erases them) only with a deep burst.
	initial := aopts.initial()
	maxCap := aopts.max()
	mid := oddCap(3*initial, maxCap)
	deep := oddCap(maxCap, maxCap)

	finish := func(rung string, msg []byte) ([]byte, *DecodeReport, error) {
		report.Verified = true
		report.VerifiedRung = rung
		last := &report.Rungs[len(report.Rungs)-1]
		last.Verified = true
		// Residual channel error: re-encode the verified message and
		// compare against the accumulated hard majority in the channel
		// (encrypted-payload) domain.
		if expected, err := BuildPayload(msg, rec.DeviceID, opts); err == nil && len(expected) == rec.PayloadBytes {
			var observed []byte
			if arena != nil {
				observed = arena.payloadBuf(rec.PayloadBytes)
				payloadFromVotesInto(observed, votes, total)
			} else {
				observed = payloadFromVotes(votes, total, rec.PayloadBytes)
			}
			report.ResidualChannelError = bitDiffFraction(observed, expected)
		}
		return msg, report, nil
	}

	type rung struct {
		name     string
		captures int
	}
	ladder := []rung{{RungHard, initial}}
	if mid > initial {
		ladder = append(ladder, rung{RungHardMore, mid})
	}
	ladder = append(ladder, rung{RungSoft, deep}, rung{RungErasure, deep})

	for _, step := range ladder {
		res := RungResult{Name: step.name, Captures: step.captures}
		var msg []byte
		var decErr error
		switch step.name {
		case RungSoft:
			soft, ok := codec.(ecc.SoftDecoder)
			if !ok {
				res.Skipped = true
				res.Note = fmt.Sprintf("codec %s has no soft decoder", codec.Name())
				report.Rungs = append(report.Rungs, res)
				continue
			}
			if err := sampleTo(step.captures); err != nil {
				return nil, report, err
			}
			var conf []float64
			var err error
			if arena != nil {
				conf, err = arena.confidences(votes, total, rec, opts)
			} else {
				conf, err = payloadConfidences(votes, total, rec, opts)
			}
			if err != nil {
				return nil, report, err
			}
			msg, decErr = soft.DecodeSoft(conf[:codedLen*8], rec.MessageBytes)
		case RungErasure:
			ed, ok := codec.(ecc.ErasureDecoder)
			if !ok {
				res.Skipped = true
				res.Note = fmt.Sprintf("codec %s has no erasure decoder", codec.Name())
				report.Rungs = append(report.Rungs, res)
				continue
			}
			if err := sampleTo(step.captures); err != nil {
				return nil, report, err
			}
			plain, err := hardPayload()
			if err != nil {
				return nil, report, err
			}
			var erased []bool
			if arena != nil {
				erased = arena.erasureMaskInto(votes, total, rec.PayloadBytes*8, aopts.deadZone())
			} else {
				erased = erasureMask(votes, total, rec.PayloadBytes*8, aopts.deadZone())
			}
			var unresolved []bool
			msg, unresolved, decErr = ed.DecodeErasure(plain[:codedLen], erased[:codedLen*8], rec.MessageBytes)
			if decErr == nil {
				report.UnresolvedBits = ecc.CountUnresolved(unresolved)
			}
		default: // hard rungs
			if err := sampleTo(step.captures); err != nil {
				return nil, report, err
			}
			plain, err := hardPayload()
			if err != nil {
				return nil, report, err
			}
			if arena != nil {
				m := arena.msgBuf(rec.MessageBytes)
				decErr = arena.pipelineFor(codec).DecodeInto(m, plain[:codedLen], rec.MessageBytes)
				if decErr == nil {
					msg = m
				}
			} else {
				msg, decErr = codec.Decode(plain[:codedLen], rec.MessageBytes)
			}
		}
		if decErr != nil {
			res.Note = decErr.Error()
			report.Rungs = append(report.Rungs, res)
			continue
		}
		verify := rec.VerifyMessage
		if arena != nil {
			verify = func(m []byte, k *stegocrypt.Key) error { return arena.verifyMessage(rec, m, k) }
		}
		if verr := verify(msg, opts.Key); verr != nil {
			if errors.Is(verr, ErrDigestNeedsKey) {
				return nil, report, verr
			}
			res.Note = verr.Error()
			report.Rungs = append(report.Rungs, res)
			continue
		}
		report.Rungs = append(report.Rungs, res)
		return finish(step.name, msg)
	}
	return nil, report, fmt.Errorf("%w: ladder exhausted after %d rungs and %d captures",
		ErrDigestMismatch, len(report.Rungs), report.CapturesSpent)
}

// oddCap clamps n to max and rounds down to odd so hard majorities
// never tie.
func oddCap(n, max int) int {
	if n > max {
		n = max
	}
	if n%2 == 0 {
		n--
	}
	return n
}

// payloadFromVotes hard-decides the accumulated vote counts into
// payload bytes: payload bit = ¬(power-on majority).
func payloadFromVotes(votes []uint16, total, payloadBytes int) []byte {
	out := make([]byte, payloadBytes)
	for i := 0; i < payloadBytes*8; i++ {
		if 2*int(votes[i]) < total {
			out[i/8] |= 1 << (i % 8)
		}
	}
	return out
}

// erasureMask marks payload bits whose vote fraction sits within
// deadZone of 0.5 — cells the channel gave no real information about.
func erasureMask(votes []uint16, total, payloadBits int, deadZone float64) []bool {
	mask := make([]bool, payloadBits)
	half := float64(total) / 2
	band := deadZone * float64(total)
	for i := range mask {
		d := float64(votes[i]) - half
		if d < 0 {
			d = -d
		}
		mask[i] = d <= band
	}
	return mask
}

// bitDiffFraction is the fraction of differing bits between equal-length
// byte slices.
func bitDiffFraction(a, b []byte) float64 {
	if len(a) == 0 {
		return 0
	}
	diff := 0
	for i := range a {
		diff += bits.OnesCount8(a[i] ^ b[i])
	}
	return float64(diff) / float64(8*len(a))
}
