package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"invisiblebits/internal/ecc"
)

// fuzzCodecs spans every codec family the record geometry check must
// hold against, including the paper's production composite.
func fuzzCodecs(t testing.TB) []ecc.Codec {
	rep3, err := ecc.NewRepetition(3)
	if err != nil {
		t.Fatal(err)
	}
	rep5, err := ecc.NewRepetition(5)
	if err != nil {
		t.Fatal(err)
	}
	return []ecc.Codec{
		ecc.Identity{},
		rep3,
		ecc.Hamming74{},
		ecc.Composite{Outer: ecc.Hamming74{}, Inner: rep5},
		ecc.Interleaver{Depth: 8, Next: ecc.Composite{Outer: ecc.Hamming74{}, Inner: rep3}},
	}
}

// recordSeeds returns the seed corpus: a well-formed record for each
// codec, plus adversarial shapes — zero/negative geometry, overflow-bait
// sizes, payload too small, and non-record JSON. Checked in under
// testdata/fuzz/FuzzRecordShape (regenerate with IB_REGEN_FUZZ=1).
func recordSeeds(t testing.TB) [][]byte {
	var seeds [][]byte
	for _, c := range fuzzCodecs(t) {
		rec := Record{
			DeviceID:     "MSP432P401:fuzz",
			MessageBytes: 32,
			PayloadBytes: c.EncodedLen(32),
			CodecName:    c.Name(),
			Captures:     5,
			StressHours:  120,
		}
		blob, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		seeds = append(seeds, blob)
	}
	return append(seeds,
		[]byte(`{"MessageBytes":0,"PayloadBytes":0}`),
		[]byte(`{"MessageBytes":-7,"PayloadBytes":100}`),
		[]byte(`{"MessageBytes":9223372036854775807,"PayloadBytes":1}`),
		[]byte(`{"MessageBytes":3074457345618258603,"PayloadBytes":8}`),
		[]byte(`{"MessageBytes":64,"PayloadBytes":63}`),
		[]byte(`[1,2,3]`),
		[]byte(`not json`),
	)
}

// FuzzRecordShape feeds arbitrary JSON through the wire-format Record
// and asserts the geometry gate holds its contract: any record either
// yields a coded length inside (0, PayloadBytes] or fails with
// ErrRecordShape — never a panic, never an out-of-range length that a
// later slice would trip over. This is the boundary where attacker- or
// corruption-controlled bytes first meet arithmetic.
func FuzzRecordShape(f *testing.F) {
	for _, seed := range recordSeeds(f) {
		f.Add(seed)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		var rec Record
		if err := json.Unmarshal(data, &rec); err != nil {
			return // malformed JSON is the decoder's problem, not ours
		}
		for _, codec := range fuzzCodecs(t) {
			n, err := recordCodedLen(&rec, codec)
			if err != nil {
				if !errors.Is(err, ErrRecordShape) {
					t.Fatalf("codec %s: geometry rejection must wrap ErrRecordShape, got %v", codec.Name(), err)
				}
				continue
			}
			if n <= 0 || n > rec.PayloadBytes {
				t.Fatalf("codec %s: accepted coded length %d outside (0, %d]", codec.Name(), n, rec.PayloadBytes)
			}
		}
	})
}

// TestRegenFuzzCorpus rewrites the checked-in seed corpus from
// recordSeeds. Gated so normal runs never touch testdata; run with
// IB_REGEN_FUZZ=1 after changing the seed set.
func TestRegenFuzzCorpus(t *testing.T) {
	if os.Getenv("IB_REGEN_FUZZ") == "" {
		t.Skip("set IB_REGEN_FUZZ=1 to regenerate testdata/fuzz seed corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzRecordShape")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, seed := range recordSeeds(t) {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", seed)
		name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
