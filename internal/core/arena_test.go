package core

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"invisiblebits/internal/ecc"
	"invisiblebits/internal/rng"
	"invisiblebits/internal/stegocrypt"
)

// Equivalence suite for the arena decode tail: every cached/table/
// branchless twin in arena.go is compared against its scalar original
// — the plaintext and every intermediate plane must be bit-identical,
// not merely close.

// TestPayloadFromVotesIntoMatchesScalar: the branchless 8-lane
// hard-decision extract agrees with the scalar comparison for every
// vote value at odd and even capture totals, including the tie count.
func TestPayloadFromVotesIntoMatchesScalar(t *testing.T) {
	src := rng.NewSource(0xa0e0)
	for _, total := range []int{1, 2, 3, 5, 6, 15, 16, 255} {
		// Exhaustive per-value check: one byte per possible count.
		votes := make([]uint16, (total+1+7)/8*8)
		for v := 0; v <= total; v++ {
			votes[v] = uint16(v)
		}
		want := payloadFromVotes(votes, total, len(votes)/8)
		got := make([]byte, len(votes)/8)
		payloadFromVotesInto(got, votes, total)
		if !bytes.Equal(got, want) {
			t.Fatalf("total=%d: exhaustive extract diverges: %x vs %x", total, got, want)
		}
		// Random planes at sizes straddling the unrolled byte loop.
		for _, nBytes := range []int{1, 7, 8, 9, 64, 257} {
			votes := make([]uint16, nBytes*8)
			for i := range votes {
				votes[i] = uint16(src.Intn(total + 1))
			}
			want := payloadFromVotes(votes, total, nBytes)
			got := make([]byte, nBytes)
			payloadFromVotesInto(got, votes, total)
			if !bytes.Equal(got, want) {
				t.Fatalf("total=%d/%dB: extract diverges", total, nBytes)
			}
		}
	}
}

// TestErasureMaskIntoMatchesScalar: the cached integer band reproduces
// the float dead-zone predicate exactly, over totals and dead zones
// including degenerate (0, full-width) bands.
func TestErasureMaskIntoMatchesScalar(t *testing.T) {
	a := NewDecodeArena()
	for _, total := range []int{1, 3, 5, 15, 16, 100} {
		for _, deadZone := range []float64{0, 0.01, 0.1, 1.0 / 7, 0.25, 0.5} {
			votes := make([]uint16, (total+1+7)/8*8)
			for v := 0; v <= total; v++ {
				votes[v] = uint16(v)
			}
			want := erasureMask(votes, total, len(votes), deadZone)
			got := a.erasureMaskInto(votes, total, len(votes), deadZone)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("total=%d dz=%v: mask diverges at count %d", total, deadZone, i)
				}
			}
		}
	}
}

// arenaRecord encodes a message on a fresh rig and returns everything
// the tail-equivalence tests need: the rig, record, options and the
// original message.
func arenaRecord(t *testing.T, serial string, key *stegocrypt.Key) (*Record, []uint16, Options, []byte) {
	t.Helper()
	r := newRig(t, "MSP432P401", serial, 4<<10)
	opts := Options{Codec: paperCodec(t), Key: key}
	msg := make([]byte, 128)
	rng.NewSource(0xa0e1).Bytes(msg)
	rec, err := Encode(r, msg, opts)
	if err != nil {
		t.Fatal(err)
	}
	votes, err := r.SampleVotes(DefaultCaptures)
	if err != nil {
		t.Fatal(err)
	}
	return rec, votes, opts, msg
}

// scalarTail decodes accumulated votes with the original scalar chain:
// allocate-per-stage hard decision, decrypt, scalar ECC, VerifyMessage.
func scalarTail(rec *Record, votes []uint16, total int, opts Options) ([]byte, error) {
	codec := opts.codec()
	codedLen, err := recordCodedLen(rec, codec)
	if err != nil {
		return nil, err
	}
	payload := payloadFromVotes(votes, total, rec.PayloadBytes)
	payload, err = decryptPayload(payload, rec, opts)
	if err != nil {
		return nil, err
	}
	msg, err := ecc.DecodeScalar(codec, payload[:codedLen], rec.MessageBytes)
	if err != nil {
		return nil, err
	}
	if rec.HasDigest() {
		if err := rec.VerifyMessage(msg, opts.Key); err != nil {
			return nil, err
		}
	}
	return msg, nil
}

// TestArenaDecodeVotesMatchesScalarTail: the arena's fused decode tail
// produces the exact plaintext of the scalar chain, and a warm arena
// decode performs zero heap allocations — the property BENCH_7 gates.
func TestArenaDecodeVotesMatchesScalarTail(t *testing.T) {
	key := stegocrypt.KeyFromPassphrase("arena-tail")
	for _, tc := range []struct {
		name string
		key  *stegocrypt.Key
	}{
		{"encrypted-hmac", &key},
		{"plaintext-crc", nil},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rec, votes, opts, msg := arenaRecord(t, "arena-"+tc.name, tc.key)
			want, err := scalarTail(rec, votes, DefaultCaptures, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(want, msg) {
				t.Fatal("scalar tail failed to recover the message")
			}
			a := NewDecodeArena()
			got, err := a.DecodeVotes(rec, votes, DefaultCaptures, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatal("arena tail diverges from scalar tail")
			}
			// Package-level convenience copies the message out.
			own, err := DecodeVotes(rec, votes, DefaultCaptures, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(own, want) {
				t.Fatal("package DecodeVotes diverges")
			}
			// Warm steady state: zero allocations.
			if n := testing.AllocsPerRun(50, func() {
				if _, err := a.DecodeVotes(rec, votes, DefaultCaptures, opts); err != nil {
					t.Fatal(err)
				}
			}); n != 0 {
				t.Errorf("warm arena DecodeVotes allocates %.1f objects/op", n)
			}
		})
	}
}

// TestArenaDecodeVotesErrors: the arena tail rejects exactly what the
// scalar chain rejects — codec mismatch, short vote plane, tampered
// digest — with the same sentinel errors.
func TestArenaDecodeVotesErrors(t *testing.T) {
	key := stegocrypt.KeyFromPassphrase("arena-err")
	rec, votes, opts, _ := arenaRecord(t, "arena-errs", &key)
	a := NewDecodeArena()

	if _, err := a.DecodeVotes(nil, votes, DefaultCaptures, opts); err == nil {
		t.Error("nil record accepted")
	}
	if _, err := a.DecodeVotes(rec, votes, DefaultCaptures, Options{Key: &key}); err == nil {
		t.Error("codec mismatch accepted")
	}
	if _, err := a.DecodeVotes(rec, votes[:rec.PayloadBytes*8-8], DefaultCaptures, opts); err == nil {
		t.Error("short vote plane accepted")
	}
	bad := *rec
	bad.Digest = "0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef"
	if _, err := a.DecodeVotes(&bad, votes, DefaultCaptures, opts); err != ErrDigestMismatch {
		t.Errorf("tampered digest: err = %v, want ErrDigestMismatch", err)
	}
	noKey := opts
	noKey.Key = nil
	if _, err := a.DecodeVotes(rec, votes, DefaultCaptures, noKey); err == nil {
		t.Error("encrypted record without key accepted")
	}
}

// TestArenaVerifyMessageMatchesRecord: the alloc-free verifier and
// Record.VerifyMessage accept and reject the same inputs for both
// digest algorithms, including malformed digests.
func TestArenaVerifyMessageMatchesRecord(t *testing.T) {
	key := stegocrypt.KeyFromPassphrase("verify-twin")
	otherKey := stegocrypt.KeyFromPassphrase("wrong")
	msg := []byte("the digest twin must agree")
	a := NewDecodeArena()

	for _, algo := range []struct {
		name string
		key  *stegocrypt.Key
	}{
		{"crc32", nil},
		{"hmac", &key},
	} {
		rec := &Record{DeviceID: "dev:verify"}
		rec.DigestAlgo, rec.Digest = computeDigest(msg, rec.DeviceID, algo.key)

		cases := []struct {
			name string
			msg  []byte
			key  *stegocrypt.Key
			rec  *Record
		}{
			{"accept", msg, algo.key, rec},
			{"wrong-msg", []byte("not the message"), algo.key, rec},
			{"empty-msg", nil, algo.key, rec},
		}
		if algo.key != nil {
			cases = append(cases,
				struct {
					name string
					msg  []byte
					key  *stegocrypt.Key
					rec  *Record
				}{"wrong-key", msg, &otherKey, rec},
				struct {
					name string
					msg  []byte
					key  *stegocrypt.Key
					rec  *Record
				}{"nil-key", msg, nil, rec},
			)
		}
		trunc := *rec
		trunc.Digest = rec.Digest[:len(rec.Digest)-1]
		cases = append(cases, struct {
			name string
			msg  []byte
			key  *stegocrypt.Key
			rec  *Record
		}{"truncated-digest", msg, algo.key, &trunc})
		none := *rec
		none.Digest = ""
		cases = append(cases, struct {
			name string
			msg  []byte
			key  *stegocrypt.Key
			rec  *Record
		}{"no-digest", msg, algo.key, &none})
		unknown := *rec
		unknown.DigestAlgo = "md5"
		cases = append(cases, struct {
			name string
			msg  []byte
			key  *stegocrypt.Key
			rec  *Record
		}{"unknown-algo", msg, algo.key, &unknown})

		for _, tc := range cases {
			want := tc.rec.VerifyMessage(tc.msg, tc.key)
			got := a.verifyMessage(tc.rec, tc.msg, tc.key)
			if (got == nil) != (want == nil) || (got != nil && want != nil && got.Error() != want.Error()) {
				t.Errorf("%s/%s: arena err %v, record err %v", algo.name, tc.name, got, want)
			}
		}
	}
}

// TestArenaConfidencesMatchScalar: the per-vote-value confidence table
// reproduces payloadConfidences bit-for-bit, plain and encrypted.
func TestArenaConfidencesMatchScalar(t *testing.T) {
	key := stegocrypt.KeyFromPassphrase("conf-twin")
	src := rng.NewSource(0xa0e2)
	for _, encrypted := range []bool{false, true} {
		rec := &Record{DeviceID: "dev:conf", PayloadBytes: 96, MessageBytes: 8, Encrypted: encrypted}
		opts := Options{}
		if encrypted {
			opts.Key = &key
		}
		total := 15
		votes := make([]uint16, rec.PayloadBytes*8+32) // extra cells beyond the payload
		for i := range votes {
			votes[i] = uint16(src.Intn(total + 1))
		}
		want, err := payloadConfidences(votes, total, rec, opts)
		if err != nil {
			t.Fatal(err)
		}
		a := NewDecodeArena()
		got, err := a.confidences(votes, total, rec, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("encrypted=%v: length %d vs %d", encrypted, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("encrypted=%v: confidence %d diverges: %v vs %v", encrypted, i, got[i], want[i])
			}
		}
	}
}

// TestDecodeContextWithArena: Options.Arena routes DecodeContext through
// the fused tail and still recovers the exact message.
func TestDecodeContextWithArena(t *testing.T) {
	r := newRig(t, "MSP432P401", "ctx-arena", 4<<10)
	key := stegocrypt.KeyFromPassphrase("ctx")
	msg := []byte("arena-backed DecodeContext")
	opts := Options{Codec: paperCodec(t), Key: &key}
	rec, err := Encode(r, msg, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Arena = NewDecodeArena()
	got, err := DecodeContext(context.Background(), r, rec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("recovered %q, want %q", got, msg)
	}
}

// TestDecodeAdaptiveArenaReportIdentical: two identical hostile rigs —
// one decoded plain, one through an arena — must produce byte-identical
// plaintext and deeply equal DecodeReports: the arena may change
// allocation behavior only, never the ladder's decisions.
func TestDecodeAdaptiveArenaReportIdentical(t *testing.T) {
	run := func(withArena bool) ([]byte, *DecodeReport) {
		t.Helper()
		// Same serial ⇒ same device noise, same injector stream: the
		// two runs observe identical captures.
		r, opts, aopts, msg := decayCampaign(t, "arena-ladder")
		rec, err := Encode(r, msg, opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.ShelveFor(2 * 365 * 24); err != nil {
			t.Fatal(err)
		}
		if withArena {
			aopts.Options.Arena = NewDecodeArena()
		}
		got, rep, err := DecodeAdaptive(context.Background(), r, rec, aopts)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatal("adaptive decode corrupted the message")
		}
		out := make([]byte, len(got))
		copy(out, got)
		return out, rep
	}
	plainMsg, plainRep := run(false)
	arenaMsg, arenaRep := run(true)
	if !bytes.Equal(plainMsg, arenaMsg) {
		t.Fatal("arena-backed adaptive decode returned different plaintext")
	}
	if !reflect.DeepEqual(plainRep, arenaRep) {
		t.Fatalf("reports diverge:\nplain: %+v\narena: %+v", plainRep, arenaRep)
	}
}
