package core

import (
	"bytes"
	"context"
	"testing"

	"invisiblebits/internal/device"
	"invisiblebits/internal/ecc"
	"invisiblebits/internal/rig"
)

func sessionRig(t *testing.T, serial string) *rig.Rig {
	t.Helper()
	m, err := device.ByName("MSP430G2553")
	if err != nil {
		t.Fatal(err)
	}
	d, err := device.New(m, serial)
	if err != nil {
		t.Fatal(err)
	}
	return rig.New(d)
}

// TestStagedEncodeMatchesOneShot pins the session contract: a soak
// diced into slices produces the same record shape and a decodable
// message, and the sliced device's image equals a device soaked with
// the same slice sequence driven externally (determinism of slicing).
func TestStagedEncodeMatchesOneShot(t *testing.T) {
	ctx := context.Background()
	msg := []byte("staged encode equivalence")
	rep, err := ecc.NewRepetition(7)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Codec: ecc.Composite{Outer: ecc.Hamming74{}, Inner: rep}}

	// Two identical devices, both soaked as full-length 2.5h slices.
	mk := func() (*rig.Rig, *Record) {
		r := sessionRig(t, "session-equiv")
		s, err := BeginEncode(ctx, r, msg, opts)
		if err != nil {
			t.Fatal(err)
		}
		for s.RemainingHours() > 0 {
			if err := s.StressSlice(ctx, 2.5); err != nil {
				t.Fatal(err)
			}
		}
		rec, err := s.Finish(ctx)
		if err != nil {
			t.Fatal(err)
		}
		return r, rec
	}
	r1, rec1 := mk()
	r2, rec2 := mk()
	if *rec1 != *rec2 {
		t.Fatalf("records differ: %+v vs %+v", rec1, rec2)
	}
	var img1, img2 bytes.Buffer
	if err := r1.Device().Save(&img1); err != nil {
		t.Fatal(err)
	}
	if err := r2.Device().Save(&img2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(img1.Bytes(), img2.Bytes()) {
		t.Fatal("identical slice schedules produced different device images")
	}

	got, err := Decode(r1, rec1, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("decoded %q, want %q", got, msg)
	}
}

// TestResumeEncodeContinuesSoak proves ResumeEncode + remaining slices
// equals the uninterrupted sliced soak bit-for-bit: the "crash" here is
// simulated by snapshotting device + rig state at a slice boundary and
// rebuilding both from the snapshot.
func TestResumeEncodeContinuesSoak(t *testing.T) {
	ctx := context.Background()
	msg := []byte("resume mid-soak")
	opts := Options{StressHours: 4}

	// Uninterrupted reference: 4 × 1h slices.
	ref := sessionRig(t, "session-resume")
	s, err := BeginEncode(ctx, ref, msg, opts)
	if err != nil {
		t.Fatal(err)
	}
	for s.RemainingHours() > 0 {
		if err := s.StressSlice(ctx, 1); err != nil {
			t.Fatal(err)
		}
	}
	refRec, err := s.Finish(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var refImg bytes.Buffer
	if err := ref.Device().Save(&refImg); err != nil {
		t.Fatal(err)
	}

	// Interrupted run: soak 2 slices, checkpoint, rebuild, resume.
	crashed := sessionRig(t, "session-resume")
	cs, err := BeginEncode(ctx, crashed, msg, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := cs.StressSlice(ctx, 1); err != nil {
			t.Fatal(err)
		}
	}
	var ckpt bytes.Buffer
	if err := crashed.Device().Save(&ckpt); err != nil {
		t.Fatal(err)
	}
	rigState := crashed.State()

	restored, err := device.Load(bytes.NewReader(ckpt.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	r2 := rig.New(restored)
	if err := r2.RestoreState(rigState); err != nil {
		t.Fatal(err)
	}
	rs, err := ResumeEncode(ctx, r2, msg, opts, cs.AppliedHours())
	if err != nil {
		t.Fatal(err)
	}
	if rs.RemainingHours() != 2 {
		t.Fatalf("resumed session owes %.1fh, want 2", rs.RemainingHours())
	}
	for rs.RemainingHours() > 0 {
		if err := rs.StressSlice(ctx, 1); err != nil {
			t.Fatal(err)
		}
	}
	rec, err := rs.Finish(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if *rec != *refRec {
		t.Fatalf("resumed record %+v differs from reference %+v", rec, refRec)
	}
	var img bytes.Buffer
	if err := r2.Device().Save(&img); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(img.Bytes(), refImg.Bytes()) {
		t.Fatal("resumed device image differs from uninterrupted run")
	}
	if r2.ClockHours() != ref.ClockHours() {
		t.Fatalf("resumed clock %.4fh, reference %.4fh", r2.ClockHours(), ref.ClockHours())
	}
}

// TestSessionGuards pins the misuse errors: finishing early, stressing
// after finish, resuming with an impossible applied-hours claim.
func TestSessionGuards(t *testing.T) {
	ctx := context.Background()
	msg := []byte("guards")
	opts := Options{StressHours: 2}

	r := sessionRig(t, "session-guards")
	s, err := BeginEncode(ctx, r, msg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Finish(ctx); err == nil {
		t.Fatal("Finish before the soak completed must fail")
	}
	if err := s.StressSlice(ctx, 5); err != nil { // clamped to remaining
		t.Fatal(err)
	}
	if s.RemainingHours() != 0 {
		t.Fatalf("remaining %.2fh after clamped slice", s.RemainingHours())
	}
	if _, err := s.Finish(ctx); err != nil {
		t.Fatal(err)
	}
	if err := s.StressSlice(ctx, 1); err == nil {
		t.Fatal("StressSlice after Finish must fail")
	}
	if _, err := s.Finish(ctx); err == nil {
		t.Fatal("double Finish must fail")
	}

	if _, err := ResumeEncode(ctx, sessionRig(t, "session-guards-2"), msg, opts, 99); err == nil {
		t.Fatal("ResumeEncode with applied > total must fail")
	}
}
