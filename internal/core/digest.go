package core

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"

	"invisiblebits/internal/stegocrypt"
)

// Digest algorithm names carried in Record.DigestAlgo.
const (
	// DigestCRC32 is the unkeyed integrity check: CRC32 (IEEE) of the
	// plaintext message. It detects channel corruption but is forgeable;
	// it is used only when no key was supplied at encode time.
	DigestCRC32 = "crc32"
	// DigestHMACSHA256 is the keyed check: HMAC-SHA256 over a
	// domain-separated tuple of the device ID and the plaintext. Because
	// it is keyed it reveals nothing about the message to a record
	// observer, and it cannot be satisfied by a forged plaintext.
	DigestHMACSHA256 = "hmac-sha256"
)

// Digest errors.
var (
	// ErrNoDigest marks records minted before the digest scheme (or
	// stripped in transit): adaptive decode cannot self-verify them.
	ErrNoDigest = errors.New("core: record carries no integrity digest")
	// ErrDigestMismatch means the decoded bytes are not the message the
	// record was minted for.
	ErrDigestMismatch = errors.New("core: decoded message fails the record's integrity digest")
	// ErrDigestNeedsKey means the record's digest is keyed (HMAC) and
	// cannot be checked without the pre-shared key.
	ErrDigestNeedsKey = errors.New("core: record digest is keyed but no key supplied")
)

// digestDomain separates the digest HMAC from any other use of the
// pre-shared key (the AES-CTR layer keys off the device-ID nonce).
const digestDomain = "invisible-bits/digest/v1"

// computeDigest derives the record digest for a plaintext message:
// CRC32 without a key, HMAC-SHA256 bound to the device ID with one.
func computeDigest(msg []byte, deviceID string, key *stegocrypt.Key) (algo, digest string) {
	if key == nil {
		return DigestCRC32, fmt.Sprintf("%08x", crc32.ChecksumIEEE(msg))
	}
	mac := hmac.New(sha256.New, key[:])
	mac.Write([]byte(digestDomain))
	mac.Write([]byte{0})
	mac.Write([]byte(deviceID))
	mac.Write([]byte{0})
	mac.Write(msg)
	return DigestHMACSHA256, hex.EncodeToString(mac.Sum(nil))
}

// VerifyMessage checks a candidate plaintext against the record's
// integrity digest. It returns nil when the digest matches,
// ErrDigestMismatch when it does not, ErrNoDigest for pre-digest
// records, and ErrDigestNeedsKey when a keyed digest is checked
// without its key.
func (rec *Record) VerifyMessage(msg []byte, key *stegocrypt.Key) error {
	if rec.Digest == "" {
		return ErrNoDigest
	}
	switch rec.DigestAlgo {
	case DigestCRC32:
		_, want := computeDigest(msg, rec.DeviceID, nil)
		if want != rec.Digest {
			return ErrDigestMismatch
		}
	case DigestHMACSHA256:
		if key == nil {
			return ErrDigestNeedsKey
		}
		_, want := computeDigest(msg, rec.DeviceID, key)
		if !hmac.Equal([]byte(want), []byte(rec.Digest)) {
			return ErrDigestMismatch
		}
	default:
		return fmt.Errorf("core: unknown digest algorithm %q", rec.DigestAlgo)
	}
	return nil
}

// HasDigest reports whether the record can self-verify a decode.
func (rec *Record) HasDigest() bool { return rec.Digest != "" }
