package core

import (
	"errors"
	"testing"

	"invisiblebits/internal/stegocrypt"
)

func TestDigestUnkeyedCRC32(t *testing.T) {
	r := newRig(t, "MSP432P401", "digest-crc", 2<<10)
	opts := Options{Codec: paperCodec(t)}
	msg := []byte("integrity without a shared key")
	rec, err := Encode(r, msg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rec.DigestAlgo != DigestCRC32 || rec.Digest == "" {
		t.Fatalf("record digest = %q/%q, want CRC32 populated", rec.DigestAlgo, rec.Digest)
	}
	if err := rec.VerifyMessage(msg, nil); err != nil {
		t.Fatalf("VerifyMessage on the true message: %v", err)
	}
	wrong := append([]byte(nil), msg...)
	wrong[0] ^= 1
	if err := rec.VerifyMessage(wrong, nil); !errors.Is(err, ErrDigestMismatch) {
		t.Fatalf("VerifyMessage on a flipped bit = %v, want ErrDigestMismatch", err)
	}
}

func TestDigestKeyedHMAC(t *testing.T) {
	r := newRig(t, "MSP432P401", "digest-hmac", 2<<10)
	key := stegocrypt.KeyFromPassphrase("digest key")
	opts := Options{Codec: paperCodec(t), Key: &key}
	msg := []byte("keyed integrity")
	rec, err := Encode(r, msg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rec.DigestAlgo != DigestHMACSHA256 {
		t.Fatalf("DigestAlgo = %q, want %q", rec.DigestAlgo, DigestHMACSHA256)
	}
	if err := rec.VerifyMessage(msg, &key); err != nil {
		t.Fatal(err)
	}
	// Verifying a keyed digest without the key must fail loudly, not
	// silently pass or report a plain mismatch.
	if err := rec.VerifyMessage(msg, nil); !errors.Is(err, ErrDigestNeedsKey) {
		t.Fatalf("keyless verify = %v, want ErrDigestNeedsKey", err)
	}
	other := stegocrypt.KeyFromPassphrase("not the digest key")
	if err := rec.VerifyMessage(msg, &other); !errors.Is(err, ErrDigestMismatch) {
		t.Fatalf("wrong-key verify = %v, want ErrDigestMismatch", err)
	}
}

func TestDigestBoundToDevice(t *testing.T) {
	// The digest domain includes the device ID, so the same message on
	// a different carrier produces a different keyed digest — a record
	// cannot be replayed against another device's image.
	key := stegocrypt.KeyFromPassphrase("digest key")
	opts := Options{Codec: paperCodec(t), Key: &key}
	msg := []byte("bound to its carrier")

	recA, err := Encode(newRig(t, "MSP432P401", "carrier-a", 2<<10), msg, opts)
	if err != nil {
		t.Fatal(err)
	}
	recB, err := Encode(newRig(t, "MSP432P401", "carrier-b", 2<<10), msg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if recA.Digest == recB.Digest {
		t.Fatal("keyed digests identical across devices; domain separation is broken")
	}
}

func TestVerifyMessageWithoutDigest(t *testing.T) {
	rec := &Record{}
	if rec.HasDigest() {
		t.Fatal("empty record claims a digest")
	}
	if err := rec.VerifyMessage([]byte("x"), nil); !errors.Is(err, ErrNoDigest) {
		t.Fatalf("err = %v, want ErrNoDigest", err)
	}
}

func TestDecodeRejectsMalformedRecordShape(t *testing.T) {
	// The record-shape validation must reject truncated or corrupted
	// records up front in both decode paths instead of slicing past the
	// payload bounds.
	r := newRig(t, "MSP432P401", "bad-shape", 2<<10)
	opts := Options{Codec: paperCodec(t)}
	rec, err := Encode(r, []byte("well formed"), opts)
	if err != nil {
		t.Fatal(err)
	}
	for name, mutate := range map[string]func(*Record){
		"zero message bytes":  func(rc *Record) { rc.MessageBytes = 0 },
		"zero payload bytes":  func(rc *Record) { rc.PayloadBytes = 0 },
		"payload too small":   func(rc *Record) { rc.PayloadBytes = 1 },
		"oversized message":   func(rc *Record) { rc.MessageBytes = 1 << 20 },
		"negative payload":    func(rc *Record) { rc.PayloadBytes = -4 },
	} {
		bad := *rec
		mutate(&bad)
		if _, err := Decode(r, &bad, opts); !errors.Is(err, ErrRecordShape) {
			t.Errorf("%s: hard decode err = %v, want ErrRecordShape", name, err)
		}
		soft := opts
		soft.Soft = true
		if _, err := Decode(r, &bad, soft); !errors.Is(err, ErrRecordShape) {
			t.Errorf("%s: soft decode err = %v, want ErrRecordShape", name, err)
		}
	}
}
