// Package cpu interprets IB32 programs against a memory bus. In the
// Invisible Bits workflow the CPU executes the payload-writer program
// from (simulated) Flash — "the instructions in the assembly program run
// from non-volatile memory on the device, i.e., not the SRAM" (§4.2) —
// and its stores land in the device's SRAM array, setting the state that
// accelerated aging then encodes.
package cpu

import (
	"errors"
	"fmt"

	"invisiblebits/internal/isa"
)

// Bus is the CPU's view of device memory. Implementations route address
// ranges to Flash, SRAM, or peripherals.
type Bus interface {
	Load32(addr uint32) (uint32, error)
	Store32(addr uint32, v uint32) error
	Load8(addr uint32) (byte, error)
	Store8(addr uint32, v byte) error
}

// StopReason explains why Run returned.
type StopReason int

// Stop reasons.
const (
	// StopHalted: the program executed HALT.
	StopHalted StopReason = iota
	// StopBusyWait: the program entered a `b .` self-loop — the paper's
	// payload writers and retainers end this way ("halts execution by
	// busy waiting", §4).
	StopBusyWait
	// StopStepLimit: the step budget was exhausted.
	StopStepLimit
	// StopFault: a bus error, decode error, or alignment fault occurred.
	StopFault
)

func (r StopReason) String() string {
	switch r {
	case StopHalted:
		return "halted"
	case StopBusyWait:
		return "busy-wait"
	case StopStepLimit:
		return "step-limit"
	case StopFault:
		return "fault"
	default:
		return fmt.Sprintf("stop(%d)", int(r))
	}
}

// CPU is an IB32 interpreter. The zero value is ready once Bus is set;
// use New for clarity.
type CPU struct {
	Regs [isa.NumRegisters]uint32
	PC   uint32
	// Flags from the last CMP.
	FlagZ  bool // equal
	FlagLT bool // signed less-than
	Bus    Bus
	// Steps counts retired instructions across Run calls.
	Steps uint64
}

// New returns a CPU wired to bus with PC at entry.
func New(bus Bus, entry uint32) *CPU {
	return &CPU{Bus: bus, PC: entry}
}

// ErrNoBus is returned when the CPU runs without a memory bus.
var ErrNoBus = errors.New("cpu: no bus attached")

// Fault wraps an execution fault with its PC.
type Fault struct {
	PC  uint32
	Err error
}

func (f *Fault) Error() string { return fmt.Sprintf("cpu: fault at pc=%#08x: %v", f.PC, f.Err) }
func (f *Fault) Unwrap() error { return f.Err }

// Step executes one instruction. It returns (done, reason) when the
// program reached a terminal state (halt or busy-wait).
func (c *CPU) Step() (bool, StopReason, error) {
	if c.Bus == nil {
		return true, StopFault, ErrNoBus
	}
	if c.PC%4 != 0 {
		return true, StopFault, &Fault{PC: c.PC, Err: errors.New("unaligned pc")}
	}
	word, err := c.Bus.Load32(c.PC)
	if err != nil {
		return true, StopFault, &Fault{PC: c.PC, Err: err}
	}
	ins, err := isa.Decode(word)
	if err != nil {
		return true, StopFault, &Fault{PC: c.PC, Err: err}
	}
	c.Steps++
	next := c.PC + 4

	switch ins.Op {
	case isa.OpNOP:
	case isa.OpHALT:
		return true, StopHalted, nil
	case isa.OpMOVI:
		c.Regs[ins.Rd] = uint32(ins.Imm) & 0xFFFF
	case isa.OpMOVT:
		c.Regs[ins.Rd] = (uint32(ins.Imm)&0xFFFF)<<16 | (c.Regs[ins.Rd] & 0xFFFF)
	case isa.OpMOV:
		c.Regs[ins.Rd] = c.Regs[ins.Rs]
	case isa.OpADD:
		c.Regs[ins.Rd] = c.Regs[ins.Rs] + c.Regs[ins.Rt]
	case isa.OpSUB:
		c.Regs[ins.Rd] = c.Regs[ins.Rs] - c.Regs[ins.Rt]
	case isa.OpAND:
		c.Regs[ins.Rd] = c.Regs[ins.Rs] & c.Regs[ins.Rt]
	case isa.OpORR:
		c.Regs[ins.Rd] = c.Regs[ins.Rs] | c.Regs[ins.Rt]
	case isa.OpXOR:
		c.Regs[ins.Rd] = c.Regs[ins.Rs] ^ c.Regs[ins.Rt]
	case isa.OpLSL:
		c.Regs[ins.Rd] = c.Regs[ins.Rs] << (c.Regs[ins.Rt] & 31)
	case isa.OpLSR:
		c.Regs[ins.Rd] = c.Regs[ins.Rs] >> (c.Regs[ins.Rt] & 31)
	case isa.OpADDI:
		c.Regs[ins.Rd] = c.Regs[ins.Rs] + uint32(ins.Imm)
	case isa.OpLDR:
		addr := c.Regs[ins.Rs] + uint32(ins.Imm)
		v, err := c.loadAligned32(addr)
		if err != nil {
			return true, StopFault, err
		}
		c.Regs[ins.Rd] = v
	case isa.OpSTR:
		addr := c.Regs[ins.Rs] + uint32(ins.Imm)
		if err := c.storeAligned32(addr, c.Regs[ins.Rt]); err != nil {
			return true, StopFault, err
		}
	case isa.OpLDRB:
		v, err := c.Bus.Load8(c.Regs[ins.Rs] + uint32(ins.Imm))
		if err != nil {
			return true, StopFault, &Fault{PC: c.PC, Err: err}
		}
		c.Regs[ins.Rd] = uint32(v)
	case isa.OpSTRB:
		if err := c.Bus.Store8(c.Regs[ins.Rs]+uint32(ins.Imm), byte(c.Regs[ins.Rt])); err != nil {
			return true, StopFault, &Fault{PC: c.PC, Err: err}
		}
	case isa.OpCMP:
		a, b := c.Regs[ins.Rs], c.Regs[ins.Rt]
		c.FlagZ = a == b
		c.FlagLT = int32(a) < int32(b)
	case isa.OpB:
		if ins.Imm == -1 {
			return true, StopBusyWait, nil
		}
		next = c.PC + 4 + uint32(ins.Imm)*4
	case isa.OpBEQ:
		if c.FlagZ {
			next = c.PC + 4 + uint32(ins.Imm)*4
		}
	case isa.OpBNE:
		if !c.FlagZ {
			next = c.PC + 4 + uint32(ins.Imm)*4
		}
	case isa.OpBLT:
		if c.FlagLT {
			next = c.PC + 4 + uint32(ins.Imm)*4
		}
	case isa.OpBGE:
		if !c.FlagLT {
			next = c.PC + 4 + uint32(ins.Imm)*4
		}
	case isa.OpBL:
		c.Regs[isa.LinkRegister] = c.PC + 4
		next = c.PC + 4 + uint32(ins.Imm)*4
	case isa.OpRET:
		next = c.Regs[isa.LinkRegister]
	default:
		return true, StopFault, &Fault{PC: c.PC, Err: fmt.Errorf("unimplemented %v", ins.Op)}
	}
	c.PC = next
	return false, 0, nil
}

func (c *CPU) loadAligned32(addr uint32) (uint32, error) {
	if addr%4 != 0 {
		return 0, &Fault{PC: c.PC, Err: fmt.Errorf("unaligned load at %#08x", addr)}
	}
	v, err := c.Bus.Load32(addr)
	if err != nil {
		return 0, &Fault{PC: c.PC, Err: err}
	}
	return v, nil
}

func (c *CPU) storeAligned32(addr uint32, v uint32) error {
	if addr%4 != 0 {
		return &Fault{PC: c.PC, Err: fmt.Errorf("unaligned store at %#08x", addr)}
	}
	if err := c.Bus.Store32(addr, v); err != nil {
		return &Fault{PC: c.PC, Err: err}
	}
	return nil
}

// Run executes until the program halts, busy-waits, faults, or maxSteps
// instructions retire.
func (c *CPU) Run(maxSteps uint64) (StopReason, error) {
	for i := uint64(0); i < maxSteps; i++ {
		done, reason, err := c.Step()
		if done {
			return reason, err
		}
	}
	return StopStepLimit, nil
}
