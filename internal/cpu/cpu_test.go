package cpu

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"invisiblebits/internal/asm"
)

// ramBus is a simple flat test bus over one byte slice at base 0.
type ramBus struct{ mem []byte }

func (b *ramBus) check(addr uint32, n int) error {
	if int(addr)+n > len(b.mem) {
		return fmt.Errorf("bus: access at %#08x out of range", addr)
	}
	return nil
}

func (b *ramBus) Load32(addr uint32) (uint32, error) {
	if err := b.check(addr, 4); err != nil {
		return 0, err
	}
	return uint32(b.mem[addr]) | uint32(b.mem[addr+1])<<8 |
		uint32(b.mem[addr+2])<<16 | uint32(b.mem[addr+3])<<24, nil
}

func (b *ramBus) Store32(addr uint32, v uint32) error {
	if err := b.check(addr, 4); err != nil {
		return err
	}
	b.mem[addr] = byte(v)
	b.mem[addr+1] = byte(v >> 8)
	b.mem[addr+2] = byte(v >> 16)
	b.mem[addr+3] = byte(v >> 24)
	return nil
}

func (b *ramBus) Load8(addr uint32) (byte, error) {
	if err := b.check(addr, 1); err != nil {
		return 0, err
	}
	return b.mem[addr], nil
}

func (b *ramBus) Store8(addr uint32, v byte) error {
	if err := b.check(addr, 1); err != nil {
		return err
	}
	b.mem[addr] = v
	return nil
}

// runProgram assembles src at origin 0, loads it into a 64 KB bus, and
// runs to completion.
func runProgram(t *testing.T, src string, maxSteps uint64) (*CPU, StopReason) {
	t.Helper()
	prog, err := asm.Assemble(src, 0)
	if err != nil {
		t.Fatal(err)
	}
	bus := &ramBus{mem: make([]byte, 64<<10)}
	copy(bus.mem, prog.Image)
	c := New(bus, 0)
	reason, err := c.Run(maxSteps)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return c, reason
}

func TestArithmeticLoop(t *testing.T) {
	// Sum 1..10 into r0.
	c, reason := runProgram(t, `
        movi r0, #0
        movi r1, #1
        movi r2, #11
loop:   add  r0, r0, r1
        addi r1, r1, #1
        cmp  r1, r2
        bne  loop
        halt
`, 1000)
	if reason != StopHalted {
		t.Fatalf("reason = %v", reason)
	}
	if c.Regs[0] != 55 {
		t.Errorf("sum = %d, want 55", c.Regs[0])
	}
}

func TestMemoryCopyProgram(t *testing.T) {
	// The shape of the paper's payload writer: copy a block of words from
	// "flash" (here: data appended after code) to a destination region,
	// then busy-wait.
	c, reason := runProgram(t, `
        la   r1, payload     ; src
        movi r2, #0x8000     ; dst
        movi r3, #4          ; words remaining
        movi r6, #0
copy:   cmp  r3, r6
        beq  done
        ldr  r4, [r1, #0]
        str  r4, [r2, #0]
        addi r1, r1, #4
        addi r2, r2, #4
        addi r3, r3, #-1
        b    copy
done:
wait:   b    wait
payload:
        .word 0x11111111, 0x22222222, 0x33333333, 0x44444444
`, 10000)
	if reason != StopBusyWait {
		t.Fatalf("reason = %v", reason)
	}
	bus := c.Bus.(*ramBus)
	for i, want := range []uint32{0x11111111, 0x22222222, 0x33333333, 0x44444444} {
		got, _ := bus.Load32(uint32(0x8000 + 4*i))
		if got != want {
			t.Errorf("word %d = %#x, want %#x", i, got, want)
		}
	}
}

func TestLogicAndShifts(t *testing.T) {
	c, _ := runProgram(t, `
        movi r1, #0xF0F0
        movi r2, #0x0FF0
        and  r3, r1, r2
        orr  r4, r1, r2
        xor  r5, r1, r2
        movi r6, #4
        lsl  r7, r1, r6
        lsr  r8, r1, r6
        halt
`, 100)
	if c.Regs[3] != 0x00F0 || c.Regs[4] != 0xFFF0 || c.Regs[5] != 0xFF00 {
		t.Errorf("logic: %x %x %x", c.Regs[3], c.Regs[4], c.Regs[5])
	}
	if c.Regs[7] != 0xF0F00 || c.Regs[8] != 0x0F0F {
		t.Errorf("shifts: %x %x", c.Regs[7], c.Regs[8])
	}
}

func TestSignedBranches(t *testing.T) {
	// -1 < 1 signed, but not unsigned; BLT must take the signed view.
	c, _ := runProgram(t, `
        movi r1, #0
        addi r1, r1, #-1     ; r1 = -1
        movi r2, #1
        movi r0, #0
        cmp  r1, r2
        bge  skip
        movi r0, #7
skip:   halt
`, 100)
	if c.Regs[0] != 7 {
		t.Errorf("signed comparison failed: r0 = %d", c.Regs[0])
	}
}

func TestSubroutineCall(t *testing.T) {
	c, reason := runProgram(t, `
        movi r1, #5
        bl   double
        bl   double
        halt
double: add  r1, r1, r1
        ret
`, 100)
	if reason != StopHalted {
		t.Fatalf("reason = %v", reason)
	}
	if c.Regs[1] != 20 {
		t.Errorf("r1 = %d, want 20", c.Regs[1])
	}
}

func TestByteAccess(t *testing.T) {
	c, _ := runProgram(t, `
        movi r1, #0x9000
        movi r2, #0xAB
        strb r2, [r1, #2]
        ldrb r3, [r1, #2]
        halt
`, 100)
	if c.Regs[3] != 0xAB {
		t.Errorf("byte round trip = %#x", c.Regs[3])
	}
	bus := c.Bus.(*ramBus)
	if bus.mem[0x9002] != 0xAB {
		t.Error("byte not stored")
	}
}

func TestBusyWaitDetection(t *testing.T) {
	_, reason := runProgram(t, "wait: b wait\n", 100)
	if reason != StopBusyWait {
		t.Errorf("reason = %v, want busy-wait", reason)
	}
}

func TestStepLimit(t *testing.T) {
	// A two-instruction infinite loop is not a self-branch; the limit
	// must stop it.
	_, reason := runProgram(t, `
loop:   nop
        b loop
`, 50)
	if reason != StopStepLimit {
		t.Errorf("reason = %v, want step-limit", reason)
	}
}

func TestFaults(t *testing.T) {
	prog, err := asm.Assemble(`
        movi r1, #0x0001
        ldr  r2, [r1, #0]    ; unaligned
        halt
`, 0)
	if err != nil {
		t.Fatal(err)
	}
	bus := &ramBus{mem: make([]byte, 1024)}
	copy(bus.mem, prog.Image)
	c := New(bus, 0)
	reason, err := c.Run(100)
	if reason != StopFault || err == nil {
		t.Fatalf("reason=%v err=%v", reason, err)
	}
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("error %T lacks Fault", err)
	}
	if f.PC != 4 {
		t.Errorf("fault pc = %#x", f.PC)
	}
	if !strings.Contains(err.Error(), "unaligned") {
		t.Errorf("fault message: %v", err)
	}
}

func TestBusErrorPropagates(t *testing.T) {
	prog, _ := asm.Assemble(`
        movi r1, #0x7000
        movt r1, #0x00FF     ; far out of range
        ldr  r2, [r1, #0]
        halt
`, 0)
	bus := &ramBus{mem: make([]byte, 1024)}
	copy(bus.mem, prog.Image)
	c := New(bus, 0)
	reason, err := c.Run(100)
	if reason != StopFault || err == nil {
		t.Fatalf("reason=%v err=%v", reason, err)
	}
}

func TestNoBus(t *testing.T) {
	c := &CPU{}
	_, reason, err := c.Step()
	if reason != StopFault || !errors.Is(err, ErrNoBus) {
		t.Fatalf("reason=%v err=%v", reason, err)
	}
}

func TestUndefinedInstructionFault(t *testing.T) {
	bus := &ramBus{mem: make([]byte, 64)}
	bus.mem[3] = 0xFF // opcode 63: undefined
	c := New(bus, 0)
	reason, err := c.Run(10)
	if reason != StopFault || err == nil {
		t.Fatalf("reason=%v err=%v", reason, err)
	}
}

func TestStepsCounter(t *testing.T) {
	c, _ := runProgram(t, `
        nop
        nop
        halt
`, 100)
	if c.Steps != 3 {
		t.Errorf("steps = %d, want 3", c.Steps)
	}
}

func BenchmarkCPUThroughput(b *testing.B) {
	prog, err := asm.Assemble(`
        movi r0, #0
        movi r1, #1
loop:   add  r0, r0, r1
        b    loop
`, 0)
	if err != nil {
		b.Fatal(err)
	}
	bus := &ramBus{mem: make([]byte, 1024)}
	copy(bus.mem, prog.Image)
	c := New(bus, 0)
	b.ReportAllocs()
	b.ResetTimer()
	if reason, err := c.Run(uint64(b.N)); err != nil || reason == StopFault {
		b.Fatal(reason, err)
	}
}
