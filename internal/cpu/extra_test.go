package cpu

import (
	"errors"
	"strings"
	"testing"

	"invisiblebits/internal/asm"
)

func TestStopReasonStrings(t *testing.T) {
	cases := map[StopReason]string{
		StopHalted:     "halted",
		StopBusyWait:   "busy-wait",
		StopStepLimit:  "step-limit",
		StopFault:      "fault",
		StopReason(99): "stop(99)",
	}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", r, got, want)
		}
	}
}

func TestFaultUnwrap(t *testing.T) {
	inner := errors.New("bus exploded")
	f := &Fault{PC: 0x40, Err: inner}
	if !errors.Is(f, inner) {
		t.Error("Unwrap broken")
	}
	if !strings.Contains(f.Error(), "0x00000040") && !strings.Contains(f.Error(), "40") {
		t.Errorf("fault message %q lacks PC", f.Error())
	}
}

func TestUnalignedStoreFault(t *testing.T) {
	prog, err := asm.Assemble(`
        movi r1, #0x0002
        movi r2, #7
        str  r2, [r1, #0]    ; address 2: unaligned
        halt
`, 0)
	if err != nil {
		t.Fatal(err)
	}
	bus := &ramBus{mem: make([]byte, 1024)}
	copy(bus.mem, prog.Image)
	c := New(bus, 0)
	reason, err := c.Run(100)
	if reason != StopFault || err == nil {
		t.Fatalf("reason=%v err=%v", reason, err)
	}
	if !strings.Contains(err.Error(), "unaligned store") {
		t.Errorf("message: %v", err)
	}
}

func TestUnalignedPCFault(t *testing.T) {
	bus := &ramBus{mem: make([]byte, 64)}
	c := New(bus, 2)
	_, reason, err := c.Step()
	if reason != StopFault || err == nil {
		t.Fatalf("reason=%v err=%v", reason, err)
	}
}

func TestByteStoreBusErrorPropagates(t *testing.T) {
	prog, err := asm.Assemble(`
        movi r1, #0x0000
        movt r1, #0x7FFF     ; far outside the test bus
        strb r1, [r1, #0]
        halt
`, 0)
	if err != nil {
		t.Fatal(err)
	}
	bus := &ramBus{mem: make([]byte, 64)}
	copy(bus.mem, prog.Image)
	c := New(bus, 0)
	reason, err := c.Run(10)
	if reason != StopFault || err == nil {
		t.Fatalf("reason=%v err=%v", reason, err)
	}
}

func TestByteLoadBusErrorPropagates(t *testing.T) {
	prog, err := asm.Assemble(`
        movi r1, #0x0000
        movt r1, #0x7FFF
        ldrb r2, [r1, #0]
        halt
`, 0)
	if err != nil {
		t.Fatal(err)
	}
	bus := &ramBus{mem: make([]byte, 64)}
	copy(bus.mem, prog.Image)
	c := New(bus, 0)
	reason, err := c.Run(10)
	if reason != StopFault || err == nil {
		t.Fatalf("reason=%v err=%v", reason, err)
	}
}

func TestBranchConditionsTakenAndNot(t *testing.T) {
	c, _ := runProgram(t, `
        movi r0, #0
        movi r1, #5
        movi r2, #5
        cmp  r1, r2
        beq  eq1
        movi r0, #99        ; must be skipped
eq1:    addi r0, r0, #1
        cmp  r1, r2
        bne  bad
        addi r0, r0, #2
bad:    movi r3, #4
        cmp  r3, r1         ; 4 < 5
        blt  lt1
        movi r0, #99
lt1:    addi r0, r0, #4
        cmp  r1, r3         ; 5 >= 4
        bge  ge1
        movi r0, #99
ge1:    addi r0, r0, #8
        halt
`, 1000)
	if c.Regs[0] != 15 {
		t.Errorf("branch path sum = %d, want 15", c.Regs[0])
	}
}
