package fsck

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"invisiblebits/internal/campaign"
	"invisiblebits/internal/faults"
	"invisiblebits/internal/sched"
	"invisiblebits/internal/stegocrypt"
)

func testKey() *stegocrypt.Key {
	k := stegocrypt.KeyFromPassphrase("fsck-drill")
	return &k
}

func testSpec(id string, serials []string) campaign.Spec {
	return campaign.Spec{
		ID:              id,
		Model:           "MSP430G2553",
		Serials:         serials,
		Message:         []byte("payload for " + id),
		Codec:           "paper",
		StressHours:     7.5,
		SliceHours:      2.5,
		CheckpointEvery: 2,
	}
}

// killCampaign runs a campaign under a kill switch so the directory is
// mid-flight: journal, checkpoints, maybe temp litter.
func killCampaign(t *testing.T, dir string, spec campaign.Spec) {
	t.Helper()
	ks := faults.NewKillSwitch(9)
	_, err := campaign.Run(context.Background(), dir, spec, campaign.Options{Key: testKey(), Hook: ks.Hook()})
	if !ks.Fired() || err == nil {
		t.Fatalf("kill switch did not fire (err=%v)", err)
	}
}

// TestCampaignRepairDrill is the acceptance drill: corrupt a campaign
// state dir (journal garbage + temp litter), repair it offline, and the
// repaired directory must resume cleanly and decode.
func TestCampaignRepairDrill(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "c")
	spec := testSpec("drill", []string{"dr-0"})
	killCampaign(t, dir, spec)

	jpath := filepath.Join(dir, "journal.jsonl")
	if f, err := os.OpenFile(jpath, os.O_APPEND|os.O_WRONLY, 0o644); err != nil {
		t.Fatal(err)
	} else {
		fmt.Fprint(f, "w2 999 deadbeef {\"seq\":99}\ngarbage that never was a record")
		f.Close()
	}
	litter := filepath.Join(dir, "result.json.tmp77")
	if err := os.WriteFile(litter, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err := Audit(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kind != KindCampaign {
		t.Fatalf("kind = %q, want campaign", rep.Kind)
	}
	if rep.Clean() || rep.DroppedBytes == 0 || len(rep.TempFiles) != 1 {
		t.Fatalf("audit missed the damage: %+v", rep)
	}
	if rep.Repaired {
		t.Fatal("audit must not repair")
	}
	// Audit is read-only: the garbage is still there.
	if b, _ := os.ReadFile(jpath); !bytes.Contains(b, []byte("garbage")) {
		t.Fatal("audit modified the journal")
	}

	rrep, err := Repair(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rrep.Repaired {
		t.Fatal("repair did not run")
	}
	if _, err := os.Stat(litter); !os.IsNotExist(err) {
		t.Fatal("repair left the temp litter")
	}

	clean, err := Audit(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	if !clean.Clean() {
		t.Fatalf("repaired directory does not audit clean: %+v", clean)
	}

	res, err := campaign.Resume(context.Background(), dir, campaign.Options{Key: testKey()})
	if err != nil || res == nil {
		t.Fatalf("repaired campaign did not resume: %v", err)
	}
	got, err := campaign.DecodeResult(context.Background(), dir, testKey())
	if err != nil || !bytes.Equal(got, spec.Message) {
		t.Fatalf("repaired campaign decoded wrong: %v", err)
	}
}

// TestCampaignAuditCutsLostFinalImage: a final image that fails its
// seal strands the encoded record; repair cuts the journal before it so
// resume deterministically re-runs the slot.
func TestCampaignAuditCutsLostFinalImage(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "c")
	spec := testSpec("finalrot", []string{"fr-0"})
	res, err := campaign.Run(context.Background(), dir, spec, campaign.Options{Key: testKey()})
	if err != nil {
		t.Fatal(err)
	}
	refImage, err := os.ReadFile(filepath.Join(dir, res.Images[0]))
	if err != nil {
		t.Fatal(err)
	}

	imgPath := filepath.Join(dir, res.Images[0])
	b, err := os.ReadFile(imgPath)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0x77
	if err := os.WriteFile(imgPath, b, 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err := Repair(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DroppedRecords == 0 {
		t.Fatalf("repair did not cut the stranded encoded record: %+v", rep)
	}

	res2, err := campaign.Resume(context.Background(), dir, campaign.Options{Key: testKey()})
	if err != nil {
		t.Fatalf("resume after final-image cut: %v", err)
	}
	regen, err := os.ReadFile(filepath.Join(dir, res2.Images[0]))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(regen, refImage) {
		t.Fatal("re-run slot did not regenerate the identical final image")
	}
	got, err := campaign.DecodeResult(context.Background(), dir, testKey())
	if err != nil || !bytes.Equal(got, spec.Message) {
		t.Fatalf("decode after re-run: %v", err)
	}
}

// TestAuditFlagsUnrecoverableSpec: a rotten spec.json cannot be
// repaired — the audit must say so instead of pretending.
func TestAuditFlagsUnrecoverableSpec(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "c")
	killCampaign(t, dir, testSpec("specrot", []string{"sr-0"}))
	if err := os.WriteFile(filepath.Join(dir, "spec.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := Audit(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Unrecoverable() {
		t.Fatalf("audit did not flag the unrecoverable spec: %+v", rep)
	}
}

// TestSchedulerRepairDrill: the same drill against a multi-tenant
// scheduler directory — repair, then a clean resume that finishes every
// campaign.
func TestSchedulerRepairDrill(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "s")
	keyFor := func(tenant, id string) *stegocrypt.Key {
		k := stegocrypt.KeyFromPassphrase("fsck|" + tenant + "|" + id)
		return &k
	}
	cfg := sched.Config{KeyFor: keyFor}
	s, err := sched.New(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sub := sched.Submission{Tenant: "alice", Spec: testSpec("sd-a", []string{"sda-0"})}
	if err := s.Submit(sub); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60e9)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	// Chop the journal mid-record (torn tail) and drop litter in the
	// campaign subdirectory.
	jpath := filepath.Join(dir, "journal.jsonl")
	j, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(jpath, j[:len(j)-9], 0o644); err != nil {
		t.Fatal(err)
	}
	litter := filepath.Join(dir, "campaigns", "sd-a", "spec.json.tmp3")
	if err := os.WriteFile(litter, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err := Audit(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kind != KindScheduler || rep.Clean() || !rep.TornTail {
		t.Fatalf("audit = %+v, want a torn scheduler journal", rep)
	}
	if len(rep.TempFiles) != 1 {
		t.Fatalf("audit found temps %v, want the campaign-dir litter", rep.TempFiles)
	}

	if _, err := Repair(nil, dir); err != nil {
		t.Fatal(err)
	}
	clean, err := Audit(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	if !clean.Clean() {
		t.Fatalf("repaired scheduler dir does not audit clean: %+v", clean)
	}

	rs, err := sched.Resume(dir, cfg)
	if err != nil {
		t.Fatalf("resume repaired scheduler: %v", err)
	}
	if err := rs.Submit(sub); err != nil && !errors.Is(err, sched.ErrDuplicateCampaign) {
		// The cut may have dropped the done record; resubmission must
		// either be a duplicate or re-admit cleanly.
		t.Fatalf("re-submit: %v", err)
	}
	if err := rs.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	cs, ok := rs.Campaign("sd-a")
	if !ok || cs.State != "done" {
		t.Fatalf("campaign after repair+resume: %+v", cs)
	}
	got, err := campaign.DecodeResult(context.Background(), filepath.Join(dir, "campaigns", "sd-a"), keyFor("alice", "sd-a"))
	if err != nil || !bytes.Equal(got, sub.Spec.Message) {
		t.Fatalf("decode after scheduler repair: %v", err)
	}
}
