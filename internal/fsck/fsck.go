// Package fsck audits and repairs campaign and scheduler state
// directories offline — the disk-side mirror of the salvage logic that
// campaign.Resume and sched.Resume run at startup.
//
// An audit never writes: it reads the journal with the same
// frame-verification and structural-replay rules the resume paths use,
// verifies every checkpoint image, final image, result file, and spec
// the surviving journal prefix references, and reports what a resume
// would salvage, strike, rebuild, or quarantine. A repair applies the
// subset of fixes that are safe to do offline:
//
//   - sweep stale temp files left by interrupted atomic writes;
//   - truncate the journal to its externally consistent prefix — the
//     longest prefix that frame-verifies, replays, and whose encoded
//     records point at final images that still pass verification.
//
// Everything else is deliberately left to resume, which has the
// machinery to handle it: corrupt checkpoint images are struck there
// via ckptbad records (an older generation or a from-scratch rebuild
// steps in), a rotten result.json is rebuilt from the journal, and a
// campaign whose spec.json is unrecoverable is quarantined. Repair
// never deletes device images — older generations are exactly what
// degraded resume falls back on.
package fsck

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"sort"
	"strings"

	"invisiblebits/internal/campaign"
	"invisiblebits/internal/device"
	"invisiblebits/internal/ioatomic"
	"invisiblebits/internal/sched"
	"invisiblebits/internal/storage"
	"invisiblebits/internal/wal"
)

// Directory kinds Audit can recognise.
const (
	KindCampaign  = "campaign"  // campaign.Run/Resume state dir (spec.json + journal.jsonl)
	KindScheduler = "scheduler" // sched.New/Resume state dir (journal.jsonl + campaigns/)
)

// Finding severities.
const (
	// SevInfo notes state that is unusual but fully handled (e.g. a
	// campaign that an earlier resume already quarantined).
	SevInfo = "info"
	// SevWarn marks damage resume recovers from on its own (a struck
	// checkpoint, a rebuildable result.json, a stale temp file).
	SevWarn = "warn"
	// SevError marks damage that needs a repair to resume cleanly
	// (journal corruption, a lost final image) or that no repair can
	// undo (an unrecoverable spec — the message itself is gone).
	SevError = "error"
)

// Finding is one problem an audit discovered.
type Finding struct {
	Severity string `json:"severity"`
	// Path is the offending file, relative to the audited directory.
	Path string `json:"path"`
	// Problem says what is wrong; Action says what repair (or the next
	// resume) will do about it.
	Problem string `json:"problem"`
	Action  string `json:"action"`
}

// Report is the outcome of an audit or repair pass.
type Report struct {
	Dir  string `json:"dir"`
	Kind string `json:"kind"`

	// JournalRecords counts records in the externally consistent prefix;
	// DroppedRecords/DroppedBytes measure what lies beyond it.
	JournalRecords int    `json:"journal_records"`
	DroppedRecords int    `json:"dropped_records,omitempty"`
	DroppedBytes   int64  `json:"dropped_bytes,omitempty"`
	ValidLen       int64  `json:"valid_len"`
	TornTail       bool   `json:"torn_tail,omitempty"`
	Reason         string `json:"reason,omitempty"`

	// TempFiles lists stale "*.tmp*" leftovers found (audit) or removed
	// (repair).
	TempFiles []string  `json:"temp_files,omitempty"`
	Findings  []Finding `json:"findings,omitempty"`

	// Repaired is set when a repair pass applied its fixes.
	Repaired bool `json:"repaired,omitempty"`
}

// Clean reports whether the directory needs no repair and resume will
// not degrade: no findings, no stale temps, no journal bytes to drop.
func (r *Report) Clean() bool {
	return len(r.Findings) == 0 && len(r.TempFiles) == 0 && r.DroppedBytes == 0
}

// Unrecoverable reports whether any finding describes damage neither
// repair nor resume can undo (a lost or mismatched spec.json).
func (r *Report) Unrecoverable() bool {
	for _, f := range r.Findings {
		if strings.Contains(f.Action, "quarantine") || strings.Contains(f.Action, "cannot resume") {
			return true
		}
	}
	return false
}

func (r *Report) add(sev, path, problem, action string) {
	r.Findings = append(r.Findings, Finding{Severity: sev, Path: path, Problem: problem, Action: action})
}

// Audit inspects a state directory without modifying it. The kind
// (campaign vs scheduler) is detected from the layout: a scheduler dir
// has a campaigns/ subdirectory, a campaign dir has spec.json.
func Audit(fsys storage.FS, dir string) (*Report, error) {
	return inspect(storage.Default(fsys), dir, false)
}

// Repair audits and then applies the offline-safe fixes: stale temp
// files are removed and the journal is truncated to its externally
// consistent prefix. The returned report describes the directory as it
// was found; after a successful repair the directory audits clean of
// every repairable finding.
func Repair(fsys storage.FS, dir string) (*Report, error) {
	return inspect(storage.Default(fsys), dir, true)
}

func inspect(fsys storage.FS, dir string, repair bool) (*Report, error) {
	jpath := filepath.Join(dir, "journal.jsonl")
	if _, err := fsys.Stat(jpath); err != nil {
		return nil, fmt.Errorf("fsck: %s: no journal.jsonl — not a state directory: %w", dir, err)
	}
	rep := &Report{Dir: dir}
	if _, err := fsys.Stat(filepath.Join(dir, "campaigns")); err == nil {
		rep.Kind = KindScheduler
		if err := auditScheduler(fsys, dir, rep); err != nil {
			return rep, err
		}
	} else if _, err := fsys.Stat(filepath.Join(dir, "spec.json")); err == nil {
		rep.Kind = KindCampaign
		if err := auditCampaign(fsys, dir, rep); err != nil {
			return rep, err
		}
	} else {
		return nil, fmt.Errorf("fsck: %s: neither campaigns/ nor spec.json — cannot tell scheduler from campaign state", dir)
	}
	if repair {
		if err := applyRepair(fsys, dir, rep); err != nil {
			return rep, err
		}
		rep.Repaired = true
	}
	return rep, nil
}

// cutAt maps a structural record cut to the byte offset a truncation
// uses: everything past record index `used` is dropped.
func cutAt(sal wal.Salvage, used int) int64 {
	if used >= sal.Entries {
		return sal.ValidLen
	}
	if used <= 0 {
		return 0
	}
	return sal.Offsets[used-1]
}

// sweepList returns the stale temp files under dir (names containing
// ".tmp", the ioatomic scratch suffix), relative to root.
func sweepList(fsys storage.FS, root, dir string) []string {
	ents, err := fsys.ReadDir(dir)
	if err != nil {
		return nil
	}
	var out []string
	for _, e := range ents {
		if e.IsDir() || !strings.Contains(e.Name(), ".tmp") {
			continue
		}
		rel, err := filepath.Rel(root, filepath.Join(dir, e.Name()))
		if err != nil {
			rel = e.Name()
		}
		out = append(out, rel)
	}
	sort.Strings(out)
	return out
}

func auditCampaign(fsys storage.FS, dir string, rep *Report) error {
	rep.TempFiles = sweepList(fsys, dir, dir)
	for _, t := range rep.TempFiles {
		rep.add(SevWarn, t, "stale temp file from an interrupted atomic write", "repair removes it; resume sweeps it")
	}

	entries, sal, err := campaign.ReadJournalSalvage(fsys, filepath.Join(dir, "journal.jsonl"))
	if err != nil {
		return err
	}
	st, used, serr := campaign.ReplaySalvage(entries)
	cut := used

	// The spec is the one file with no fallback: without it (or with a
	// digest that no longer matches the journal) the campaign cannot be
	// resumed — the message content is gone.
	spec, specErr := campaign.LoadSpec(fsys, dir)
	switch {
	case specErr != nil:
		rep.add(SevError, "spec.json", specErr.Error(), "campaign cannot resume: spec is unrecoverable")
	case st != nil && st.Campaign != "" && spec.ScheduleDigest() != st.Digest:
		rep.add(SevError, "spec.json",
			fmt.Sprintf("schedule digest mismatch: journal %.12s…, spec %.12s…", st.Digest, spec.ScheduleDigest()),
			"campaign cannot resume: spec is unrecoverable")
	}

	// Verify every device image the surviving prefix references. A
	// corrupt checkpoint is survivable (resume strikes it and an older
	// generation or a scratch rebuild steps in); a corrupt final image
	// is not — the encoded record it anchors must be cut so resume
	// re-runs the slot deterministically.
	if st != nil {
		for i, sl := range st.Slots {
			for _, ck := range sl.Ckpts {
				if _, err := device.LoadFileFS(fsys, filepath.Join(dir, ck.Image)); err != nil {
					rep.add(SevWarn, ck.Image,
						fmt.Sprintf("slot %d checkpoint fails verification: %v", i, err),
						"resume strikes it (ckptbad) and falls back to an older generation")
				}
			}
			if sl.FinalImage != "" {
				if _, err := device.LoadFileFS(fsys, filepath.Join(dir, sl.FinalImage)); err != nil {
					k := earliestBadEncoded(entriesKinds(entries[:used]), sl.FinalImage)
					if k >= 0 && k < cut {
						cut = k
					}
					rep.add(SevError, sl.FinalImage,
						fmt.Sprintf("slot %d final image fails verification: %v", i, err),
						"repair cuts the journal before the encoded record so resume re-runs the slot")
				}
			}
		}
		if st.Done {
			if _, _, err := ioatomic.ReadFileSealed(fsys, filepath.Join(dir, "result.json")); err != nil {
				rep.add(SevWarn, "result.json",
					fmt.Sprintf("fails verification: %v", err),
					"resume rebuilds it from the journal")
			}
		}
	}

	rep.ValidLen = cutAt(sal, cut)
	rep.JournalRecords = cut
	rep.DroppedRecords = sal.Entries - cut
	rep.DroppedBytes = sal.ValidLen - rep.ValidLen + sal.DroppedBytes
	rep.TornTail = sal.TornTail
	switch {
	case serr != nil && cut == used:
		rep.Reason = serr.Error()
	case sal.Reason != "":
		rep.Reason = sal.Reason
	}
	if rep.DroppedBytes > 0 {
		rep.add(SevError, "journal.jsonl",
			fmt.Sprintf("only %d of %d records verify (%d bytes beyond the consistent prefix)", cut, sal.Entries, rep.DroppedBytes),
			fmt.Sprintf("repair truncates to %d bytes; resume salvages the same prefix", rep.ValidLen))
	}
	return nil
}

func auditScheduler(fsys storage.FS, dir string, rep *Report) error {
	rep.TempFiles = sweepList(fsys, dir, dir)
	croot := filepath.Join(dir, "campaigns")
	if ents, err := fsys.ReadDir(croot); err == nil {
		for _, e := range ents {
			if e.IsDir() {
				rep.TempFiles = append(rep.TempFiles, sweepList(fsys, dir, filepath.Join(croot, e.Name()))...)
			}
		}
	}
	for _, t := range rep.TempFiles {
		rep.add(SevWarn, t, "stale temp file from an interrupted atomic write", "repair removes it; resume sweeps it")
	}

	entries, sal, err := sched.ReadJournalSalvage(fsys, filepath.Join(dir, "journal.jsonl"))
	if err != nil {
		return err
	}
	st, used, serr := sched.ReplaySalvage(entries)
	cut := used

	if st != nil {
		for _, id := range st.Order {
			cr := st.Campaigns[id]
			cdir := filepath.Join(croot, id)
			if cr.Quarantined {
				rep.add(SevInfo, filepath.Join("campaigns", id),
					"campaign already quarantined by an earlier resume", "no action; quarantine is terminal")
				continue
			}
			// Mirror sched.rebuildCampaign's spec acceptance: raw
			// unmarshal, digest compare. Failure means the next resume
			// quarantines this campaign (and only it).
			if err := checkSchedSpec(fsys, cdir, cr.Digest, len(cr.Slots)); err != nil {
				rep.add(SevError, filepath.Join("campaigns", id, "spec.json"),
					err.Error(), "resume will quarantine this campaign; other tenants are unaffected")
			}
			for si, sl := range cr.Slots {
				for _, ck := range sl.Ckpts {
					if _, err := device.LoadFileFS(fsys, filepath.Join(cdir, ck.Image)); err != nil {
						rep.add(SevWarn, filepath.Join("campaigns", id, ck.Image),
							fmt.Sprintf("slot %d checkpoint fails verification: %v", si, err),
							"resume strikes it (ckptbad) and falls back to an older generation")
					}
				}
				if sl.FinalImage != "" {
					if _, err := device.LoadFileFS(fsys, filepath.Join(cdir, sl.FinalImage)); err != nil {
						k := earliestBadEncodedSched(entries[:used], id, sl.FinalImage)
						if k >= 0 && k < cut {
							cut = k
						}
						rep.add(SevError, filepath.Join("campaigns", id, sl.FinalImage),
							fmt.Sprintf("slot %d final image fails verification: %v", si, err),
							"repair cuts the journal before the encoded record so resume re-runs the slot")
					}
				}
			}
			if cr.Done {
				if _, _, err := ioatomic.ReadFileSealed(fsys, filepath.Join(cdir, "result.json")); err != nil {
					rep.add(SevWarn, filepath.Join("campaigns", id, "result.json"),
						fmt.Sprintf("fails verification: %v", err),
						"report only: decode needs campaign.DecodeResult against surviving images")
				}
			}
		}
	}

	rep.ValidLen = cutAt(sal, cut)
	rep.JournalRecords = cut
	rep.DroppedRecords = sal.Entries - cut
	rep.DroppedBytes = sal.ValidLen - rep.ValidLen + sal.DroppedBytes
	rep.TornTail = sal.TornTail
	switch {
	case serr != nil && cut == used:
		rep.Reason = serr.Error()
	case sal.Reason != "":
		rep.Reason = sal.Reason
	}
	if rep.DroppedBytes > 0 {
		rep.add(SevError, "journal.jsonl",
			fmt.Sprintf("only %d of %d records verify (%d bytes beyond the consistent prefix)", cut, sal.Entries, rep.DroppedBytes),
			fmt.Sprintf("repair truncates to %d bytes; resume salvages the same prefix", rep.ValidLen))
	}
	return nil
}

// checkSchedSpec reproduces sched.rebuildCampaign's spec validation
// without building the campaign: readable JSON, matching schedule
// digest, matching slot count.
func checkSchedSpec(fsys storage.FS, cdir, digest string, slots int) error {
	b, err := fsys.ReadFile(filepath.Join(cdir, "spec.json"))
	if err != nil {
		return err
	}
	var spec campaign.Spec
	if err := json.Unmarshal(b, &spec); err != nil {
		return fmt.Errorf("parse spec.json: %w", err)
	}
	if d := spec.ScheduleDigest(); d != digest {
		return fmt.Errorf("schedule digest mismatch: journal %.12s…, spec %.12s…", digest, d)
	}
	if len(spec.Serials) != slots {
		return fmt.Errorf("journal plans %d slots, spec has %d", slots, len(spec.Serials))
	}
	return nil
}

type kindImage struct {
	kind  string
	image string
}

func entriesKinds(entries []campaign.Entry) []kindImage {
	out := make([]kindImage, len(entries))
	for i, e := range entries {
		out[i] = kindImage{kind: e.Type, image: e.Image}
	}
	return out
}

// earliestBadEncoded finds the first "encoded" record naming image, the
// cut point that un-journals a final image that no longer verifies.
func earliestBadEncoded(entries []kindImage, image string) int {
	for i, e := range entries {
		if e.kind == "encoded" && e.image == image {
			return i
		}
	}
	return -1
}

func earliestBadEncodedSched(entries []sched.Entry, id, image string) int {
	for i := range entries {
		if entries[i].Type == "encoded" && entries[i].Campaign == id && entries[i].Image == image {
			return i
		}
	}
	return -1
}

// applyRepair performs the offline-safe fixes an audit planned: sweep
// temps, truncate the journal. Device images are never removed.
func applyRepair(fsys storage.FS, dir string, rep *Report) error {
	for _, rel := range rep.TempFiles {
		if err := fsys.Remove(filepath.Join(dir, rel)); err != nil {
			return fmt.Errorf("fsck: sweep %s: %w", rel, err)
		}
	}
	if rep.DroppedBytes > 0 {
		jpath := filepath.Join(dir, "journal.jsonl")
		if err := fsys.Truncate(jpath, rep.ValidLen); err != nil {
			return fmt.Errorf("fsck: truncate journal: %w", err)
		}
		if err := fsys.SyncDir(dir); err != nil {
			return fmt.Errorf("fsck: sync %s: %w", dir, err)
		}
	}
	return nil
}
