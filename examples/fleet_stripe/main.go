// Fleet stripe: §5.3 at system scale. A large document does not fit on
// one microcontroller, so the sender (a) characterizes a batch of devices
// in parallel to find the best silicon, (b) asks the ECC planner for the
// highest-capacity code meeting the reliability target, and (c) stripes
// the document across the fleet — every shard independently encrypted
// under its own device nonce, every device individually deniable.
package main

import (
	"bytes"
	"fmt"
	"log"

	ib "invisiblebits"
)

func main() {
	model, err := ib.Model("MSP432P401")
	if err != nil {
		log.Fatal(err)
	}

	// Two batches from the same lot: characterization soaks are
	// destructive (they encode a calibration pattern), so a sample batch
	// is sacrificed to measure the lot and a fresh batch carries the
	// actual message.
	newBatch := func(prefix string, n int) []*ib.Carrier {
		out := make([]*ib.Carrier, n)
		for i := range out {
			dev, err := ib.NewDeviceSampled(model, fmt.Sprintf("%s-%02d", prefix, i), 8<<10)
			if err != nil {
				log.Fatal(err)
			}
			out[i] = ib.NewCarrier(dev)
		}
		return out
	}
	sample := newBatch("lot7-sample", 5)
	carriers := newBatch("lot7-ship", 3)

	// (a) Characterize the sample batch in parallel — the soak dominates
	// encoding time and all devices share the thermal chamber (§5.3).
	chars, err := ib.CharacterizeFleet(sample, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("batch characterization (single-copy channel error):")
	for _, c := range chars {
		fmt.Printf("  device %d (%s): %.2f%%\n", c.Index, c.DeviceID, 100*c.ChannelError)
	}
	best, err := ib.SelectBestDevice(chars)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("best silicon: device %d at %.2f%%\n\n", best.Index, 100*best.ChannelError)

	// (b) Plan the code against the worst sampled device plus a lot-
	// variation margin (every shard on the shipping batch must meet the
	// target).
	worst := chars[0]
	for _, c := range chars {
		if c.ChannelError > worst.ChannelError {
			worst = c
		}
	}
	plan, err := ib.BestECC(worst.ChannelError*1.2, 1e-6, 8<<10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("planner: %v\n\n", plan)

	// (c) Stripe a document larger than any single device's capacity.
	key := ib.KeyFromPassphrase("fleet pre-shared key")
	opts := ib.Options{Codec: plan.Codec, Key: &key}
	perDevice := ib.MaxMessageBytes(8<<10, plan.Codec)
	sentence := []byte("ARTICLE 19: Everyone has the right to freedom of opinion and expression. ")
	document := bytes.Repeat(sentence, (perDevice*3-len(sentence))/len(sentence))
	fmt.Printf("document: %d bytes (%d-byte capacity per device)\n", len(document), perDevice)

	striped, err := ib.StripeMessage(carriers, document, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("striped across %d devices\n", len(striped.Shards))

	// The fleet ships; each device spends a month in transit.
	for _, c := range carriers {
		if err := c.Shelve(30 * 24); err != nil {
			log.Fatal(err)
		}
	}

	got, err := ib.GatherMessage(carriers, striped, opts)
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(got, document) {
		log.Fatal("document corrupted")
	}
	fmt.Printf("reassembled %d bytes after a month of shelving — intact\n", len(got))
}
