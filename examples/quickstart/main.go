// Quickstart: hide a message in a simulated MSP432's SRAM analog domain
// and recover it — the minimal Invisible Bits round trip.
package main

import (
	"fmt"
	"log"

	ib "invisiblebits"
)

func main() {
	// Pick a device from the paper's Table 1 catalog and give it a serial
	// number; the serial determines the chip's silicon fingerprint.
	model, err := ib.Model("MSP432P401")
	if err != nil {
		log.Fatal(err)
	}
	dev, err := ib.NewDevice(model, "quickstart-0001")
	if err != nil {
		log.Fatal(err)
	}
	carrier := ib.NewCarrier(dev)

	// The paper's end-to-end configuration (Fig. 13): Hamming(7,4) under
	// 7-copy repetition, AES-CTR keyed by a pre-shared passphrase with the
	// device ID as nonce.
	key := ib.KeyFromPassphrase("correct horse battery staple")
	opts := ib.Options{Codec: ib.PaperCodec(), Key: &key}

	message := []byte("Invisible Bits: the message is in the transistors, not the memory.")
	fmt.Printf("capacity with this codec: %d bytes\n", ib.MaxMessageBytes(dev.SRAM.Bytes(), opts.Codec))

	// Hide: ECC → encrypt → payload-writer firmware → 10 simulated hours
	// at 3.3 V / 85 °C → camouflage firmware.
	rec, err := carrier.Hide(message, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("encoded %d bytes (payload %d bytes) in %.1f simulated hours\n",
		rec.MessageBytes, rec.PayloadBytes, rec.StressHours)

	// The device ships; it spends two weeks in transit.
	if err := carrier.Shelve(14 * 24); err != nil {
		log.Fatal(err)
	}

	// Reveal: 5 power-on captures → majority vote → invert → decrypt → ECC.
	got, err := carrier.Reveal(rec, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered: %q\n", got)
	if string(got) != string(message) {
		log.Fatal("round trip failed")
	}
	fmt.Println("round trip OK")
}
