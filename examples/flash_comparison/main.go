// Flash comparison: the §5.3 / Table 3 head-to-head. Runs all three
// on-chip hiding schemes on the same (simulated) MSP432-class part —
// Wang et al.'s Flash program-time channel, Zuck et al.'s Flash
// threshold-voltage channel, and Invisible Bits' SRAM aging channel —
// then subjects each to the active adversary's rewrite attack.
package main

import (
	"fmt"
	"log"

	ib "invisiblebits"
	"invisiblebits/internal/analog"
	"invisiblebits/internal/flash"
	"invisiblebits/internal/flashsteg"
	"invisiblebits/internal/rng"
	"invisiblebits/internal/stats"
)

func main() {
	model, err := ib.Model("MSP432P401")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("target: %s — %d KB Flash, %d KB SRAM\n\n",
		model.Name, model.FlashBytes>>10, model.SRAMBytes>>10)

	// --- capacities ---------------------------------------------------------
	fspec := flash.DefaultSpec()
	fspec.PageBytes = 512
	fspec.Pages = model.FlashBytes / fspec.PageBytes
	f, err := flash.New(fspec)
	if err != nil {
		log.Fatal(err)
	}
	wang, err := flashsteg.NewWang(f, 0xA11CE)
	if err != nil {
		log.Fatal(err)
	}
	zuck, err := flashsteg.NewZuck(f, 0xB0B)
	if err != nil {
		log.Fatal(err)
	}
	rep5, err := ib.Repetition(5)
	if err != nil {
		log.Fatal(err)
	}
	ibCap := ib.MaxMessageBytes(model.SRAMBytes, rep5)
	fmt.Println("capacity at comparable (<0.3%) error:")
	fmt.Printf("  Wang et al. (program time):   %6d bytes\n", wang.CapacityBytes())
	fmt.Printf("  Zuck et al. (voltage level):  %6d bytes\n", zuck.CapacityBytes())
	fmt.Printf("  Invisible Bits (5-copy rep):  %6d bytes  (%.0fx Wang)\n\n",
		ibCap, float64(ibCap)/float64(wang.CapacityBytes()))

	// --- rewrite-attack resilience -------------------------------------------
	fmt.Println("active adversary: copy the public data, erase, re-program it unchanged (§8)")

	// Zuck: hidden data rides on Vt of the cover cells — destroyed.
	cover := make([]byte, 64<<10)
	rng.NewSource(1).Bytes(cover)
	zmsg := make([]byte, 64)
	rng.NewSource(2).Bytes(zmsg)
	if err := zuck.EncodeWithCover(cover, zmsg); err != nil {
		log.Fatal(err)
	}
	if err := flashsteg.RewriteAttack(f, len(cover)); err != nil {
		log.Fatal(err)
	}
	zgot, err := zuck.Decode(len(cover), len(zmsg))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  Zuck et al.:    hidden-message error %.0f%% — message DESTROYED\n",
		100*stats.BitErrorRate(zgot, zmsg))

	// Wang: wear is permanent — survives, but capacity was tiny.
	wmsg := make([]byte, 64)
	rng.NewSource(3).Bytes(wmsg)
	if err := wang.Encode(wmsg); err != nil {
		log.Fatal(err)
	}
	if err := flashsteg.RewriteAttack(f, 64<<10); err != nil {
		log.Fatal(err)
	}
	wgot, err := wang.Decode(len(wmsg))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  Wang et al.:    hidden-message error %.1f%% — survives (wear is physical)\n",
		100*stats.BitErrorRate(wgot, wmsg))

	// Invisible Bits: the adversary can overwrite all of SRAM freely.
	dev, err := ib.NewDeviceSampled(model, "cmp", 8<<10)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := dev.PowerOn(25); err != nil {
		log.Fatal(err)
	}
	payload := make([]byte, dev.SRAM.Bytes())
	rng.NewSource(4).Bytes(payload)
	if err := dev.SRAM.Write(payload); err != nil {
		log.Fatal(err)
	}
	if err := dev.Stress(model.Accelerated(), model.EncodingHours); err != nil {
		log.Fatal(err)
	}
	w := rng.NewWorkloadWriter(5, 0)
	if err := dev.SRAM.OperateRandom(w,
		analog.Conditions{VoltageV: model.VNomV, TempC: 25}, 2, 0.5); err != nil {
		log.Fatal(err)
	}
	maj, err := dev.SRAM.CaptureMajority(5, 25)
	if err != nil {
		log.Fatal(err)
	}
	inv := make([]byte, len(maj))
	for i, b := range maj {
		inv[i] = ^b
	}
	fmt.Printf("  Invisible Bits: hidden-message error %.1f%% after 2h of adversary writes — survives\n",
		100*stats.BitErrorRate(inv, payload))

	fmt.Println("\nTable 3 in one line: Flash channels trade away either resilience (Zuck)")
	fmt.Println("or capacity (Wang); SRAM aging keeps both, plus analog-domain deniability.")
}
