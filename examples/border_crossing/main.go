// Border crossing: the paper's full threat scenario (§3). Alice encodes
// an encrypted message into an ordinary-looking microcontroller. At the
// border, an inspector has temporary possession: they run the device,
// dump and overwrite its memory, and statistically analyze its power-on
// state — the non-invasive adversary of the threat model. The device then
// sits in a mail depot for a month before Bob extracts the message.
package main

import (
	"fmt"
	"log"

	ib "invisiblebits"
	"invisiblebits/internal/analog"
	"invisiblebits/internal/rng"
	"invisiblebits/internal/stats"
)

func main() {
	model, err := ib.Model("MSP432P401")
	if err != nil {
		log.Fatal(err)
	}
	dev, err := ib.NewDevice(model, "border-042")
	if err != nil {
		log.Fatal(err)
	}
	carrier := ib.NewCarrier(dev)
	key := ib.KeyFromPassphrase("the pre-shared key Alice and Bob agreed on")
	opts := ib.Options{Codec: ib.PaperCodec(), Key: &key}

	secret := []byte("Evidence archive key: 9F-3A-77-B2. Courier compromised; use the northern route.")

	fmt.Println("== Alice: encoding ==")
	rec, err := carrier.Hide(secret, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hidden %d bytes behind %s + AES-CTR; device looks like a counter gadget\n\n",
		rec.MessageBytes, rec.CodecName)

	fmt.Println("== Border inspection (adversary with temporary possession) ==")
	// 1. The inspector powers the device and watches it run (it executes
	//    the camouflage firmware: a tick counter).
	if _, err := dev.PowerOn(25); err != nil {
		log.Fatal(err)
	}
	if _, err := dev.Run(5000); err != nil {
		log.Fatal(err)
	}
	mem, err := dev.ReadSRAM()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("device functions normally (tick counter at %d)\n",
		uint32(mem[0])|uint32(mem[1])<<8|uint32(mem[2])<<16|uint32(mem[3])<<24)

	// 2. They copy and overwrite the digital contents ("they can inspect,
	//    copy, overwrite, and erase", §3): an hour of random writes.
	w := rng.NewWorkloadWriter(0xb0bde, 0)
	if err := dev.SRAM.OperateRandom(w, analog.Conditions{VoltageV: model.VNomV, TempC: 25}, 1, 0.25); err != nil {
		log.Fatal(err)
	}
	fmt.Println("inspector overwrote all of SRAM with their own data")

	// 3. They take multiple power-on snapshots and run steganalysis.
	dev.PowerOff(true)
	snap, err := dev.SRAM.CaptureMajority(5, 25)
	if err != nil {
		log.Fatal(err)
	}
	bits := make([]byte, dev.SRAM.Cells())
	for i := range bits {
		if snap[i/8]&(1<<(i%8)) != 0 {
			bits[i] = 1
		}
	}
	moran, err := stats.MoranIBits(bits, dev.SRAM.Rows(), dev.SRAM.Cols())
	if err != nil {
		log.Fatal(err)
	}
	bias := stats.MeanBias(snap)
	entropy := stats.NormalizedByteEntropy(snap)
	fmt.Printf("steganalysis: bias=%.4f  Moran's I=%.4f  entropy=%.4f\n", bias, moran.I, entropy)
	if bias > 0.49 && bias < 0.51 && moran.I < 0.05 && entropy > 0.029 {
		fmt.Println("verdict: indistinguishable from a clean device — Alice passes")
		fmt.Println()
	} else {
		fmt.Println("verdict: SUSPICIOUS — plausible deniability failed!")
		fmt.Println()
	}

	fmt.Println("== Transit: one month in a mail depot ==")
	if err := carrier.Shelve(30 * 24); err != nil {
		log.Fatal(err)
	}
	fmt.Println("natural recovery has eroded some of the encoding")
	fmt.Println()

	fmt.Println("== Bob: decoding ==")
	got, err := carrier.Reveal(rec, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered: %q\n", got)
	if string(got) != string(secret) {
		log.Fatal("message corrupted in transit")
	}
	fmt.Println("message survived inspection, overwrite, and a month on the shelf")
}
