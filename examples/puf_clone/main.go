// PUF clone: footnote 2 of the paper notes that "the results of our
// extreme/controlled aging suggest that it is possible to clone SRAM
// PUFs." This example uses the puf package to demonstrate both
// consequences of directed aging for SRAM-PUF security:
//
//  1. Denial of service: aging a victim device with its own power-on
//     state flips its marginal cells, breaking fingerprint matching
//     (the Roelke & Stan attack the paper cites as [37]).
//  2. Cloning: aging a blank device while it holds the *complement* of a
//     target fingerprint drives its power-on state toward that
//     fingerprint, yielding a physical clone that passes enrollment.
package main

import (
	"fmt"
	"log"

	ib "invisiblebits"
	"invisiblebits/internal/puf"
)

func main() {
	model, err := ib.Model("ATSAML11E16A")
	if err != nil {
		log.Fatal(err)
	}

	victim, err := ib.NewDeviceSampled(model, "victim", 8<<10)
	if err != nil {
		log.Fatal(err)
	}
	fp, err := puf.Enroll(victim, 5)
	if err != nil {
		log.Fatal(err)
	}
	res, err := fp.Authenticate(victim, puf.DefaultThreshold)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("victim PUF enrolled; re-measurement distance %.2f%% (match=%v)\n",
		100*res.Distance, res.Match)
	fmt.Printf("response entropy: %.2f bits/byte\n\n", fp.ResponseEntropy())

	blank, err := ib.NewDeviceSampled(model, "attacker-blank", 8<<10)
	if err != nil {
		log.Fatal(err)
	}
	res, err = fp.Authenticate(blank, puf.DefaultThreshold)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("blank device distance to victim: %.1f%% (match=%v)\n\n", 100*res.Distance, res.Match)

	fmt.Println("== attack 1: DoS by self-state aging ==")
	if err := puf.DoSAttack(victim, model.Accelerated(), 6); err != nil {
		log.Fatal(err)
	}
	res, err = fp.Authenticate(victim, puf.DefaultThreshold)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("victim distance after 6h directed aging: %.1f%% (match=%v)\n", 100*res.Distance, res.Match)
	if !res.Match {
		fmt.Println("authentication now FAILS — DoS successful")
	}

	fmt.Println("\n== attack 2: cloning by complement-directed aging ==")
	if err := puf.CloneOnto(blank, fp, model.Accelerated(), model.EncodingHours); err != nil {
		log.Fatal(err)
	}
	res, err = fp.Authenticate(blank, puf.DefaultThreshold)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cloned device distance to victim enrollment: %.1f%% (match=%v)\n", 100*res.Distance, res.Match)
	if res.Match {
		fmt.Println("clone PASSES authentication")
	}

	cloneFP, err := puf.Enroll(blank, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clone response entropy: %.2f bits/byte — statistically healthy, attack invisible\n",
		cloneFP.ResponseEntropy())
	fmt.Println("\nconclusion: SRAM PUFs are only as trustworthy as the analog state they measure;")
	fmt.Println("directed aging can both destroy and forge that state (paper, footnote 2).")
}
