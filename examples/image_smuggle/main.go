// Image smuggle: the Fig. 1 / Fig. 8 demonstration. A bitmap is tiled
// across SRAM as a repetition code and encoded into the analog domain;
// the program renders the power-on state before encoding, after encoding
// (the "negative" of the image, §4.3), and the majority-voted
// reconstruction at increasing copy counts.
package main

import (
	"fmt"
	"log"

	ib "invisiblebits"
	"invisiblebits/internal/imaging"
	"invisiblebits/internal/stats"
)

func main() {
	model, err := ib.Model("MSP432P401")
	if err != nil {
		log.Fatal(err)
	}
	// An 8 KB sample keeps the demo fast; capacity math is unaffected.
	dev, err := ib.NewDeviceSampled(model, "smuggler", 8<<10)
	if err != nil {
		log.Fatal(err)
	}

	glyph := imaging.Glyph()
	packed := glyph.Pack()
	fmt.Println("secret image:")
	fmt.Println(glyph.ASCII())

	// Pre-encoding power-on state (Fig. 1a): random silicon fingerprint.
	pre, err := dev.PowerOn(25)
	if err != nil {
		log.Fatal(err)
	}
	window, err := imaging.Unpack(pre, glyph.W, glyph.H)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("power-on state before encoding (first 32x32 window):")
	fmt.Println(window.ASCII())

	// Tile the image across the whole SRAM — a free repetition code.
	copies := dev.SRAM.Bytes() / len(packed)
	if copies%2 == 0 {
		copies--
	}
	payload := make([]byte, 0, copies*len(packed))
	for i := 0; i < copies; i++ {
		payload = append(payload, packed...)
	}
	full := make([]byte, dev.SRAM.Bytes())
	copy(full, payload)
	if err := dev.SRAM.Write(full); err != nil {
		log.Fatal(err)
	}
	// A short 4-hour soak leaves visible noise, like Fig. 8's 1-copy pane.
	if err := dev.Stress(model.Accelerated(), 4); err != nil {
		log.Fatal(err)
	}

	maj, err := dev.SRAM.CaptureMajority(5, 25)
	if err != nil {
		log.Fatal(err)
	}
	inv := make([]byte, len(maj))
	for i, b := range maj {
		inv[i] = ^b
	}

	for _, n := range []int{1, 3, 7, copies} {
		if n > copies {
			n = copies
		}
		voted := voteAcross(inv, len(packed), n)
		img, err := imaging.Unpack(voted, glyph.W, glyph.H)
		if err != nil {
			log.Fatal(err)
		}
		e, err := imaging.ErrorRate(img, glyph)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("reconstruction with %d cop%s (pixel error %.2f%%):\n",
			n, map[bool]string{true: "y", false: "ies"}[n == 1], 100*e)
		fmt.Println(img.ASCII())
	}

	single := stats.BitErrorRate(inv[:len(packed)], packed)
	fmt.Printf("single-copy channel error after a 4h soak: %.1f%% — the repetition code absorbs it\n", 100*single)
}

func voteAcross(recovered []byte, unitBytes, n int) []byte {
	out := make([]byte, unitBytes)
	for bit := 0; bit < unitBytes*8; bit++ {
		votes := 0
		for c := 0; c < n; c++ {
			idx := c*unitBytes*8 + bit
			if recovered[idx/8]&(1<<(idx%8)) != 0 {
				votes++
			}
		}
		if votes >= n/2+1 {
			out[bit/8] |= 1 << (bit % 8)
		}
	}
	return out
}
