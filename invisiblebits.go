// Package invisiblebits is a Go implementation and full-system simulation
// of "Invisible Bits: Hiding Secret Messages in SRAM's Analog Domain"
// (Mahmod & Hicks, ASPLOS 2022): a steganographic channel that encodes
// data by directing and accelerating NBTI transistor aging in a device's
// embedded SRAM, and reads it back through the SRAM's power-on state.
//
// The public API wraps the internal pipeline:
//
//	model, _ := invisiblebits.Model("MSP432P401")
//	dev, _ := invisiblebits.NewDevice(model, "serial-0001")
//	carrier := invisiblebits.NewCarrier(dev)
//
//	key := invisiblebits.KeyFromPassphrase("pre-shared secret")
//	rec, _ := carrier.Hide([]byte("message"), invisiblebits.Options{
//	    Codec: invisiblebits.PaperCodec(),
//	    Key:   &key,
//	})
//	// ... the device travels across a border, is inspected, shelved ...
//	msg, _ := carrier.Reveal(rec, invisiblebits.Options{
//	    Codec: invisiblebits.PaperCodec(),
//	    Key:   &key,
//	})
//
// Everything physical — the SRAM cell array, transistor aging, the
// thermal chamber, the target CPU executing payload-writer firmware — is
// simulated; see DESIGN.md for the substitution map and calibration
// anchors, and EXPERIMENTS.md for the paper-vs-measured results.
package invisiblebits

import (
	"context"
	"io"
	"net/http"

	"invisiblebits/internal/analog"
	"invisiblebits/internal/campaign"
	"invisiblebits/internal/core"
	"invisiblebits/internal/device"
	"invisiblebits/internal/ecc"
	"invisiblebits/internal/faults"
	"invisiblebits/internal/fleet"
	"invisiblebits/internal/parallel"
	"invisiblebits/internal/rig"
	"invisiblebits/internal/sched"
	"invisiblebits/internal/sram"
	"invisiblebits/internal/stegocrypt"
)

// Noise-plane versions. Every array replays its power-on noise from a
// counter-keyed sampler; the version selects which sampler. Devices
// record their version in saved images, so a loaded device keeps
// producing bit-identical captures forever — fresh devices use the
// current (ziggurat) plane, images written before versioning restore as
// Box–Muller.
const (
	// NoiseGenBoxMuller is the original polar Box–Muller sampler
	// (unbounded tails).
	NoiseGenBoxMuller = sram.NoiseGenBoxMuller
	// NoiseGenZiggurat is the v2 ziggurat sampler, truncated at ±8σ,
	// which unlocks deterministic-cell pruning on the capture path.
	NoiseGenZiggurat = sram.NoiseGenZiggurat
)

// NoiseGen reports which noise-plane version the device's SRAM replays.
func NoiseGen(dev *Device) int { return dev.SRAM.NoiseGen() }

// Re-exported building blocks. The concrete types live in internal
// packages; these aliases are the supported public surface.
type (
	// DeviceModel is a catalog entry from the paper's Table 1.
	DeviceModel = device.Model
	// Device is an instantiated board with simulated silicon.
	Device = device.Device
	// Rig is the evaluation platform driving power/temperature (Fig. 5).
	Rig = rig.Rig
	// Options configures Hide/Reveal (ECC codec, encryption key, stress
	// time, capture count).
	Options = core.Options
	// Record is the encode receipt holding the pre-shared parameters.
	Record = core.Record
	// Codec is an error-correcting code layered on the channel (§5.2).
	Codec = ecc.Codec
	// Key is a pre-shared AES-256 key.
	Key = stegocrypt.Key
	// Conditions is a voltage/temperature operating point.
	Conditions = analog.Conditions
)

// Model looks up a device model by name (e.g. "MSP432P401"). See Models
// for the full Table 1 catalog.
func Model(name string) (DeviceModel, error) { return device.ByName(name) }

// Models returns the paper's Table 1 device catalog.
func Models() []DeviceModel {
	out := make([]DeviceModel, len(device.Catalog))
	copy(out, device.Catalog)
	return out
}

// NewDevice instantiates a model with a serial number. The serial seeds
// the simulated process variation, so a given (model, serial) pair always
// exhibits the same SRAM fingerprint — like a real chip.
func NewDevice(model DeviceModel, serial string) (*Device, error) {
	return device.New(model, serial)
}

// NewDeviceSampled instantiates a device with its SRAM capped at
// sramBytes — useful for fast experimentation with large parts (the
// BCM2837 carries 768 KB of cache). Capacity math still uses the model's
// real size.
func NewDeviceSampled(model DeviceModel, serial string, sramBytes int) (*Device, error) {
	return device.New(model, serial, device.WithSRAMLimit(sramBytes))
}

// SetCaptureWorkers bounds the capture engine's parallelism across the
// given carriers with one shared worker pool of size workers (<= 0 means
// GOMAXPROCS). Captures are bit-identical under any worker count — the
// per-cell noise is counter-derived — so this knob trades only
// throughput, never results. By default all carriers already share a
// GOMAXPROCS-wide process pool.
func SetCaptureWorkers(carriers []*Carrier, workers int) {
	fleet.UseCapturePool(rigsOf(carriers), parallel.New(workers))
}

// Carrier couples a device to an evaluation rig and exposes the
// steganographic operations.
type Carrier struct {
	rig *rig.Rig
}

// NewCarrier mounts a device on a fresh rig at nominal conditions.
func NewCarrier(dev *Device) *Carrier { return &Carrier{rig: rig.New(dev)} }

// FaultProfile parameterizes deterministic fault injection: flaky
// debugger links, supply brownouts, chamber excursions, stuck/weak SRAM
// cells, and scheduled device death. The zero value injects nothing; a
// given (Seed, serial) pair replays the same failure sequence.
type FaultProfile = faults.Profile

// NewFaultyCarrier mounts a device on a rig with a seeded fault injector
// — the lab's hazard model made explicit, for rehearsing campaigns
// against the failures a real bench produces. A zero profile leaves the
// carrier's behaviour bit-identical to NewCarrier.
func NewFaultyCarrier(dev *Device, p FaultProfile) *Carrier {
	return &Carrier{rig: rig.New(dev, rig.WithInjector(faults.New(p, dev.Serial)))}
}

// IsTransientFault reports whether err is a retryable bench fault (e.g.
// a dropped debugger link) as opposed to a permanent one.
func IsTransientFault(err error) bool { return faults.IsTransient(err) }

// IsPermanentFault reports whether err is unrecoverable (device death).
func IsPermanentFault(err error) bool { return faults.IsPermanent(err) }

// Rig exposes the underlying evaluation platform for advanced workflows
// (custom stress schedules, event logs, simulated clock).
func (c *Carrier) Rig() *Rig { return c.rig }

// Device returns the mounted device.
func (c *Carrier) Device() *Device { return c.rig.Device() }

// Hide encodes message into the device's analog domain (Algorithm 1):
// optional ECC and AES-CTR layers, payload-writer firmware, accelerated
// aging, camouflage firmware. The returned Record carries the pre-shared
// decode parameters (never the key).
func (c *Carrier) Hide(message []byte, opts Options) (*Record, error) {
	return core.Encode(c.rig, message, opts)
}

// Reveal extracts the message (Algorithm 2): retainer firmware, N
// power-on captures, majority vote, inversion, decryption, ECC decode.
func (c *Carrier) Reveal(rec *Record, opts Options) ([]byte, error) {
	return core.Decode(c.rig, rec, opts)
}

// Shelve stores the unpowered device for the given number of simulated
// hours; stress-induced changes partially recover (§5.1.3).
func (c *Carrier) Shelve(hours float64) error { return c.rig.ShelveFor(hours) }

// ShelveAt stores the device at a specific temperature. Hot storage
// accelerates natural recovery — an adversary can "bake" a suspect
// device to degrade a potential message, but the permanent component of
// the encoding bounds the damage (see the sram baking-attack test).
// Shelf time is charged to the rig's simulated clock, so time-keyed
// fault profiles stay aligned with the aging timeline.
func (c *Carrier) ShelveAt(hours, tempC float64) error {
	return c.rig.ShelveAtFor(hours, tempC)
}

// KeyFromPassphrase derives a pre-shared key from a passphrase.
func KeyFromPassphrase(pass string) Key { return stegocrypt.KeyFromPassphrase(pass) }

// --- adaptive decode and retention health --------------------------------------

type (
	// AdaptiveOptions configures RevealAdaptive's escalation ladder
	// (initial/max captures, erasure dead zone) on top of Options.
	AdaptiveOptions = core.AdaptiveOptions
	// DecodeReport is the structured account of an adaptive decode:
	// rungs attempted, captures spent, residual channel error.
	DecodeReport = core.DecodeReport
	// RefreshOutcome reports a maintenance refresh: the decode effort
	// and the margins before/after the re-stress.
	RefreshOutcome = core.RefreshReport
	// HealthReport is a plaintext-free retention-margin estimate.
	HealthReport = rig.HealthReport
	// RegionHealth is one SRAM region's margin estimate.
	RegionHealth = rig.RegionHealth
)

// RevealAdaptive runs the self-verifying escalation ladder: a cheap
// low-capture hard decode first, then — only if the record's integrity
// digest rejects the result — more captures, soft-decision decoding,
// and erasure-aware decoding, accumulating captures across rungs. The
// report shows how hard the ladder had to work. Requires a record
// minted with a digest (any Hide since the digest scheme).
func (c *Carrier) RevealAdaptive(rec *Record, opts AdaptiveOptions) ([]byte, *DecodeReport, error) {
	return core.DecodeAdaptive(context.Background(), c.rig, rec, opts)
}

// RevealAdaptiveContext is RevealAdaptive with cancellation.
func (c *Carrier) RevealAdaptiveContext(ctx context.Context, rec *Record, opts AdaptiveOptions) ([]byte, *DecodeReport, error) {
	return core.DecodeAdaptive(ctx, c.rig, rec, opts)
}

// ProbeHealth estimates the carrier's retention margin from power-on
// captures alone — no plaintext or key needed. captures ≤ 0 uses the
// probing default; regionBytes ≤ 0 treats the array as one region.
func (c *Carrier) ProbeHealth(captures, regionBytes int) (*HealthReport, error) {
	return c.rig.ProbeHealth(captures, regionBytes)
}

// Refresh restores a decaying imprint: the message is recovered with
// the full adaptive ladder (digest-verified), rewritten, and
// re-stressed under the safe-voltage interlock. stressHours ≤ 0 uses
// the model's encoding time. The device's maintenance ledger (persisted
// by SaveDevice) records the event.
func (c *Carrier) Refresh(rec *Record, opts AdaptiveOptions, stressHours float64) (*RefreshOutcome, error) {
	return core.Refresh(context.Background(), c.rig, rec, opts, stressHours)
}

// RefreshLog returns the carrier's maintenance ledger.
func (c *Carrier) RefreshLog() []device.RefreshEvent { return c.rig.Device().RefreshLog() }

// --- codecs -------------------------------------------------------------------

// Repetition returns an n-copy repetition codec (odd n), the paper's
// high-error-regime workhorse.
func Repetition(n int) (Codec, error) { return ecc.NewRepetition(n) }

// Hamming74 returns the Hamming(7,4) codec for the low-error regime.
func Hamming74() Codec { return ecc.Hamming74{} }

// Compose chains two codecs; inner is nearest the channel.
func Compose(outer, inner Codec) Codec { return ecc.Composite{Outer: outer, Inner: inner} }

// PaperCodec returns the end-to-end system's code from Fig. 13:
// Hamming(7,4) followed by 7-copy repetition.
func PaperCodec() Codec {
	rep, err := ecc.NewRepetition(7)
	if err != nil {
		panic(err) // 7 is statically odd; cannot fail
	}
	return ecc.Composite{Outer: ecc.Hamming74{}, Inner: rep}
}

// MaxMessageBytes returns the largest message that fits on sramBytes of
// SRAM under codec (nil = no ECC) — the §5.3 capacity measure.
func MaxMessageBytes(sramBytes int, codec Codec) int {
	return core.MaxMessageBytes(sramBytes, codec)
}

// Hamming1511 returns the higher-rate (15,11) Hamming codec.
func Hamming1511() Codec { return ecc.Hamming1511{} }

// Secded84 returns the extended Hamming(8,4) SECDED codec (corrects
// single errors, detects doubles without miscorrecting).
func Secded84() Codec { return ecc.Secded84{} }

// Plan is one feasible ECC configuration for a measured channel.
type Plan = ecc.Plan

// RecommendECC enumerates ECC configurations meeting targetError on a
// channel with the given single-copy error, sorted by capacity — §5.2's
// code-selection guidance as an algorithm.
func RecommendECC(channelError, targetError float64, sramBytes int) ([]Plan, error) {
	return ecc.Recommend(channelError, targetError, sramBytes)
}

// BestECC returns the highest-capacity plan meeting the target.
func BestECC(channelError, targetError float64, sramBytes int) (Plan, error) {
	return ecc.Best(channelError, targetError, sramBytes)
}

// --- fleet operations ----------------------------------------------------------

// FleetCharacterization is one device's measured channel quality.
type FleetCharacterization = fleet.Characterization

// StripedMessage describes a message striped across several carriers.
type StripedMessage = fleet.StripeResult

func rigsOf(carriers []*Carrier) []*rig.Rig {
	rigs := make([]*rig.Rig, len(carriers))
	for i, c := range carriers {
		rigs[i] = c.rig
	}
	return rigs
}

// CharacterizeFleet measures every carrier's single-copy channel error in
// parallel (§5.3: "one can encode many devices and select the one with
// the least error"). The devices end up holding a calibration pattern.
func CharacterizeFleet(carriers []*Carrier, captures int) ([]FleetCharacterization, error) {
	return fleet.Characterize(rigsOf(carriers), captures)
}

// SelectBestDevice picks the least-error characterization.
func SelectBestDevice(chars []FleetCharacterization) (FleetCharacterization, error) {
	return fleet.SelectBest(chars)
}

// StripeMessage splits a message across several carriers, encoding the
// shards in parallel. Each shard is independently encrypted under its
// device's nonce.
func StripeMessage(carriers []*Carrier, message []byte, opts Options) (*StripedMessage, error) {
	return fleet.Stripe(rigsOf(carriers), message, opts)
}

// GatherMessage decodes and reassembles a striped message.
func GatherMessage(carriers []*Carrier, striped *StripedMessage, opts Options) ([]byte, error) {
	return fleet.Gather(rigsOf(carriers), striped, opts)
}

// StripeResilience configures failure tolerance for StripeMessageWith.
type StripeResilience struct {
	// Spares are standby carriers; a shard whose primary dies permanently
	// is re-encoded on the next unused spare with enough capacity.
	Spares []*Carrier
	// Parity, when non-nil, carries an XOR parity shard over the data
	// segments so GatherReportFor can reconstruct any single lost shard.
	Parity *Carrier
	// Breakers, when non-nil, gates every per-device operation through
	// the shared circuit-breaker set: repeatedly failing carriers trip
	// open and re-route to spares without burning the retry budget.
	Breakers *FleetBreakers
}

// GatherOutcome reports per-shard fates from a degraded-capable gather.
type GatherOutcome = fleet.GatherReport

// StripeMessageWith is StripeMessage with cancellation, standby spares,
// and an optional parity carrier: the stripe survives one device dying
// mid-soak (re-routed to a spare) or, with parity, one shard being lost
// outright.
func StripeMessageWith(ctx context.Context, carriers []*Carrier, message []byte, opts Options, res StripeResilience) (*StripedMessage, error) {
	sopts := fleet.StripeOptions{Spares: rigsOf(res.Spares), Breakers: res.Breakers}
	if res.Parity != nil {
		sopts.ParityRig = res.Parity.rig
	}
	return fleet.StripeWithOptions(ctx, rigsOf(carriers), message, opts, sopts)
}

// GatherReportFor decodes a striped message, tolerating dead carriers:
// the report lists every shard's fate, and a single lost segment is
// rebuilt from the parity carrier when the stripe has one. The carriers
// slice must include spares and the parity carrier used at stripe time.
func GatherReportFor(ctx context.Context, carriers []*Carrier, striped *StripedMessage, opts Options) (*GatherOutcome, error) {
	return fleet.GatherContext(ctx, rigsOf(carriers), striped, opts)
}

// GatherReportWith is GatherReportFor with a circuit-breaker set:
// quarantined carriers are skipped outright (their shards fall back to
// parity reconstruction when available) and the report lists them.
func GatherReportWith(ctx context.Context, carriers []*Carrier, striped *StripedMessage, opts Options, breakers *FleetBreakers) (*GatherOutcome, error) {
	return fleet.GatherWithOptions(ctx, rigsOf(carriers), striped, opts, fleet.GatherOptions{Breakers: breakers})
}

// FleetHealth aggregates a health sweep across carriers.
type FleetHealth = fleet.HealthSweepReport

// HealthSweepConfig configures HealthSweepFleet.
type HealthSweepConfig = fleet.HealthSweepOptions

// HealthSweepFleet probes every carrier's retention margin concurrently
// (no plaintext needed), flags carriers below the margin threshold, and
// optionally refreshes the flagged ones from their records. Dead or
// flaky carriers are reported per-slot, never sinking the sweep.
func HealthSweepFleet(ctx context.Context, carriers []*Carrier, cfg HealthSweepConfig) (*FleetHealth, error) {
	return fleet.HealthSweep(ctx, rigsOf(carriers), cfg)
}

// SaveDevice serializes a device (silicon identity + aging state) so it
// can be handed to another party — the simulation's equivalent of mailing
// the physical chip or carrying it across a border.
func SaveDevice(dev *Device, w io.Writer) error { return dev.Save(w) }

// LoadDevice reconstructs a device from a SaveDevice image.
func LoadDevice(r io.Reader) (*Device, error) { return device.Load(r) }

// SaveDeviceFile writes a device image to path atomically (temp file +
// fsync + rename): a crash mid-save never leaves a torn image under the
// final name.
func SaveDeviceFile(dev *Device, path string) error { return dev.SaveFile(path) }

// LoadDeviceFile reconstructs a device from an image file.
func LoadDeviceFile(path string) (*Device, error) { return device.LoadFile(path) }

// ErrTruncatedImage marks a device image whose byte stream ended early —
// the signature of a torn write or interrupted copy. Check with
// errors.Is on LoadDevice/LoadDeviceFile errors.
var ErrTruncatedImage = device.ErrTruncatedImage

// --- circuit breakers -----------------------------------------------------------

type (
	// FleetBreakers is a set of per-device circuit breakers. A carrier
	// that keeps failing trips its breaker (closed → open with
	// exponential backoff on the simulated clock → half-open probe) and
	// is eventually quarantined, so a dying rig stops consuming retry
	// budget and spare re-routing kicks in early.
	FleetBreakers = fleet.BreakerSet
	// BreakerConfig tunes failure thresholds, backoff, and the
	// quarantine trip count; the zero value uses the defaults.
	BreakerConfig = fleet.BreakerConfig
	// BreakerStats is one device's breaker state snapshot.
	BreakerStats = fleet.BreakerStats
	// BreakerState is a breaker's position in the closed → open →
	// half-open → quarantined lifecycle.
	BreakerState = fleet.BreakerState
)

// Breaker lifecycle states, as reported in BreakerStats.
const (
	BreakerClosed      = fleet.BreakerClosed
	BreakerOpen        = fleet.BreakerOpen
	BreakerHalfOpen    = fleet.BreakerHalfOpen
	BreakerQuarantined = fleet.BreakerQuarantined
)

// NewFleetBreakers builds a breaker set shared across fleet passes —
// stripe, gather, and health sweeps all feed (and consult) the same
// per-device failure history.
func NewFleetBreakers(cfg BreakerConfig) *FleetBreakers { return fleet.NewBreakerSet(cfg) }

// FleetBreakerStats snapshots every tracked device's breaker state,
// sorted by device ID. Nil-safe: a nil set reports nothing.
func FleetBreakerStats(b *FleetBreakers) []BreakerStats { return b.Stats() }

// --- crash-safe campaigns -------------------------------------------------------

type (
	// CampaignSpec is the durable description of an imprint campaign:
	// fleet, message, codec, soak schedule, and checkpoint cadence.
	// Keys never appear in it.
	CampaignSpec = campaign.Spec
	// CampaignOptions carries the in-memory extras: the encryption key
	// and an optional breaker set.
	CampaignOptions = campaign.Options
	// CampaignResult is the campaign's durable outcome (records, final
	// image paths, equivalent bench hours, quarantine list).
	CampaignResult = campaign.Result
)

// RunCampaign starts a crash-safe imprint campaign in dir: every phase
// transition lands in a write-ahead journal and device images are
// checkpointed atomically at slice boundaries, so a host crash, power
// cut, or Ctrl-C at ANY point is recoverable with ResumeCampaign — and
// the resumed outcome is bit-identical to an uninterrupted run. A
// directory that already holds a journal is refused.
func RunCampaign(ctx context.Context, dir string, spec CampaignSpec, opts CampaignOptions) (*CampaignResult, error) {
	return campaign.Run(ctx, dir, spec, opts)
}

// ResumeCampaign re-enters a crashed campaign: it replays the journal
// (verifying the schedule digest), rebuilds every carrier from its
// latest checkpoint, skips completed slices, and drives the rest.
// Resuming a finished campaign just returns its sealed result.
func ResumeCampaign(ctx context.Context, dir string, opts CampaignOptions) (*CampaignResult, error) {
	return campaign.Resume(ctx, dir, opts)
}

// DecodeCampaign reloads a finished campaign's final device images and
// gathers the message back — the receiving party's side, driven purely
// from the campaign directory plus the pre-shared key.
func DecodeCampaign(ctx context.Context, dir string, key *Key) ([]byte, error) {
	return campaign.DecodeResult(ctx, dir, key)
}

// --- multi-tenant scheduling ----------------------------------------------------

type (
	// Scheduler multiplexes many tenants' campaigns over one shared
	// chamber, batching compatible stress slices into shared passes and
	// journaling every decision for crash-safe resume.
	Scheduler = sched.Scheduler
	// SchedulerConfig tunes admission (quotas, queue depth), batching,
	// and fault handling for a Scheduler.
	SchedulerConfig = sched.Config
	// SchedulerQuota bounds one tenant's slice of the shared pool.
	SchedulerQuota = sched.Quota
	// CampaignSubmission is one tenant's campaign plus its spare
	// carriers.
	CampaignSubmission = sched.Submission
	// SchedulerStatus is a point-in-time snapshot: chamber economics,
	// per-tenant counters, latency percentiles.
	SchedulerStatus = sched.Status
)

// Scheduler admission rejections, for errors.Is retry policy.
var (
	ErrSchedulerQuota     = sched.ErrQuotaExceeded
	ErrSchedulerSaturated = sched.ErrSaturated
	ErrSchedulerDraining  = sched.ErrDraining
)

// NewScheduler starts a multi-tenant campaign scheduler in dir. Every
// admission, batch assignment, and slice of progress is journaled;
// killing the process at any point and calling ResumeScheduler on the
// same directory continues every campaign bit-identically.
func NewScheduler(dir string, cfg SchedulerConfig) (*Scheduler, error) {
	return sched.New(dir, cfg)
}

// ResumeScheduler re-enters a crashed (or stopped) scheduler: the
// journal is replayed, every spec re-verified against its digest, every
// in-flight slot rebuilt from its latest durable checkpoint.
func ResumeScheduler(dir string, cfg SchedulerConfig) (*Scheduler, error) {
	return sched.Resume(dir, cfg)
}

// NewSchedulerServer wraps a scheduler in its net/http JSON facade —
// the service surface cmd/ibserve exposes.
func NewSchedulerServer(s *Scheduler) http.Handler { return sched.NewServer(s) }
