package invisiblebits

import (
	"bytes"
	"fmt"
	"testing"
)

func TestPlannerPublicAPI(t *testing.T) {
	plans, err := RecommendECC(0.065, 0.003, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) == 0 {
		t.Fatal("no plans")
	}
	best, err := BestECC(0.065, 0.003, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	if best.Rate < plans[len(plans)-1].Rate {
		t.Error("BestECC not the top-rated plan")
	}
	// The planner should beat the paper's rep(5) capacity at its own
	// operating point (hamming(15,11)+rep(3) reaches 16 KB vs 12.8 KB).
	if best.CapacityBytes <= 64<<10/5 {
		t.Errorf("best plan capacity %d does not beat rep(5)'s 13107", best.CapacityBytes)
	}
}

func TestExtendedCodecsPublic(t *testing.T) {
	for _, c := range []Codec{Hamming1511(), Secded84()} {
		msg := []byte("extended codec round trip")
		enc, err := c.Encode(msg)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := c.Decode(enc, len(msg))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(dec, msg) {
			t.Errorf("%s round trip failed", c.Name())
		}
	}
}

func TestSoftDecodingPublicAPI(t *testing.T) {
	model, err := Model("MSP432P401")
	if err != nil {
		t.Fatal(err)
	}
	dev, err := NewDeviceSampled(model, "api-soft", 8<<10)
	if err != nil {
		t.Fatal(err)
	}
	carrier := NewCarrier(dev)
	key := KeyFromPassphrase("soft api")
	opts := Options{Codec: PaperCodec(), Key: &key}
	msg := []byte("soft decision through the public API")
	rec, err := carrier.Hide(msg, opts)
	if err != nil {
		t.Fatal(err)
	}
	soft := opts
	soft.Soft = true
	got, err := carrier.Reveal(rec, soft)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("soft reveal failed")
	}
}

func TestFleetPublicAPI(t *testing.T) {
	model, err := Model("MSP432P401")
	if err != nil {
		t.Fatal(err)
	}
	carriers := make([]*Carrier, 3)
	for i := range carriers {
		dev, err := NewDeviceSampled(model, fmt.Sprintf("api-fleet-%d", i), 4<<10)
		if err != nil {
			t.Fatal(err)
		}
		carriers[i] = NewCarrier(dev)
	}
	chars, err := CharacterizeFleet(carriers, 5)
	if err != nil {
		t.Fatal(err)
	}
	best, err := SelectBestDevice(chars)
	if err != nil {
		t.Fatal(err)
	}
	if best.ChannelError <= 0 || best.ChannelError > 0.12 {
		t.Errorf("best channel error = %v", best.ChannelError)
	}

	// Stripe across a fresh batch (characterization is destructive).
	fresh := make([]*Carrier, 3)
	for i := range fresh {
		dev, err := NewDeviceSampled(model, fmt.Sprintf("api-ship-%d", i), 4<<10)
		if err != nil {
			t.Fatal(err)
		}
		fresh[i] = NewCarrier(dev)
	}
	key := KeyFromPassphrase("fleet api")
	opts := Options{Codec: PaperCodec(), Key: &key}
	per := MaxMessageBytes(4<<10, opts.Codec)
	msg := make([]byte, per*2)
	for i := range msg {
		msg[i] = byte(i * 13)
	}
	striped, err := StripeMessage(fresh, msg, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := GatherMessage(fresh, striped, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("fleet stripe round trip failed")
	}
}
