// Command ibserve runs the multi-tenant campaign scheduler as a JSON
// service: tenants POST campaign submissions, the scheduler multiplexes
// them over one simulated chamber (batching compatible campaigns into
// shared stress passes), and every admission decision and slice of
// progress is journaled so a killed server resumes exactly where it
// died — point it at the same -dir and restart.
//
// Per-campaign encryption keys are derived on demand from the master
// passphrase, the tenant, and the campaign ID; nothing secret is ever
// persisted. Decoding a finished campaign therefore needs the same
// passphrase and the campaign directory (ibdecode, or
// campaign.DecodeResult).
//
// Usage:
//
//	ibserve -dir /var/lib/ibserve -passphrase "..." -addr :8080
//	ibserve -dir /var/lib/ibserve -passphrase "..." -slots 32 -quota-campaigns 4
//
// Routes:
//
//	POST /api/submit          {tenant, spec, spares} → 202 {campaign}
//	GET  /api/status          scheduler-wide counters and latency percentiles
//	GET  /api/campaigns/{id}  one campaign's state
//	POST /api/drain           202; drain continues server-side, poll /api/status
//	GET  /healthz             liveness (503 once the scheduler loop has died)
//	GET  /readyz              readiness (503 while draining/stopping/dead)
//
// Lifecycle: SIGINT or SIGTERM triggers a graceful stop — the listener
// stops accepting, in-flight requests get -shutdown-timeout to finish,
// the scheduler halts at the next pass boundary, and the journal is
// closed cleanly so the next start resumes bit-identically.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"invisiblebits/internal/sched"
	"invisiblebits/internal/stegocrypt"
)

func main() {
	var (
		dir        = flag.String("dir", "ibserve-data", "state directory (journal + campaign artifacts)")
		addr       = flag.String("addr", ":8080", "listen address")
		passphrase = flag.String("passphrase", "", "master passphrase for per-campaign key derivation (required)")
		slots      = flag.Int("slots", sched.DefaultChamberSlots, "chamber carrier slots per pass")
		setup      = flag.Float64("setup-hours", sched.DefaultSetupHours, "chamber re-targeting cost when the operating point changes")
		queued     = flag.Int("queue", sched.DefaultMaxQueued, "max campaigns in flight before submissions bounce with 429")
		campaigns  = flag.Int("quota-campaigns", 0, "per-tenant active-campaign quota (0 = unlimited)")
		devices    = flag.Int("quota-devices", 0, "per-tenant device quota (0 = unlimited)")
		hours      = flag.Float64("quota-hours", 0, "per-tenant chamber-hour quota (0 = unlimited)")
		batch      = flag.Bool("batch", true, "coalesce compatible campaigns into shared chamber passes")

		readTimeout     = flag.Duration("read-timeout", 10*time.Second, "max time to read a request (headers + body)")
		writeTimeout    = flag.Duration("write-timeout", 30*time.Second, "max time to write a response")
		idleTimeout     = flag.Duration("idle-timeout", 2*time.Minute, "keep-alive idle connection timeout")
		shutdownTimeout = flag.Duration("shutdown-timeout", 30*time.Second, "grace period for in-flight requests and the scheduler on SIGINT/SIGTERM")
		maxBody         = flag.Int64("max-body", sched.DefaultMaxBodyBytes, "request body cap in bytes (oversize submissions get 413)")
		rate            = flag.Float64("rate", 0, "per-tenant sustained submissions/sec (0 = unlimited)")
		burst           = flag.Int("burst", 0, "per-tenant submission burst size (0 = 1 when -rate is set)")
	)
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))

	if *passphrase == "" {
		fatal(errors.New("ibserve: -passphrase is required (keys are derived, never stored)"))
	}
	master := *passphrase
	cfg := sched.Config{
		ChamberSlots: *slots,
		SetupHours:   *setup,
		MaxQueued:    *queued,
		DefaultQuota: sched.Quota{
			MaxCampaigns:    *campaigns,
			MaxDevices:      *devices,
			MaxChamberHours: *hours,
		},
		DisableBatching: !*batch,
		KeyFor: func(tenant, id string) *stegocrypt.Key {
			k := stegocrypt.KeyFromPassphrase(master + "|" + tenant + "|" + id)
			return &k
		},
	}

	s, resumed, err := openScheduler(*dir, cfg)
	if err != nil {
		fatal(err)
	}
	verb := "created"
	if resumed {
		verb = "resumed"
	}
	st := s.Status()
	fmt.Printf("ibserve: %s scheduler in %s (%d active, %d done, %d failed, %.1f chamber hours)\n",
		verb, *dir, st.Active, st.Done, st.Failed, st.ChamberHours)
	if sal := s.Salvage(); sal != nil {
		if sal.Degraded() {
			fmt.Printf("ibserve: DEGRADED resume: salvaged %d journal records (%d records / %d bytes dropped: %s), %d campaigns quarantined, %d checkpoints struck, %d temp files swept\n",
				sal.JournalRecords, sal.DroppedRecords, sal.DroppedBytes, sal.Reason,
				len(sal.Quarantined), len(sal.BadCheckpoints), len(sal.TempFilesSwept))
			for _, id := range sal.Quarantined {
				fmt.Printf("ibserve: quarantined campaign %s (state unrecoverable; see /api/campaigns/%s)\n", id, id)
			}
		} else {
			fmt.Printf("ibserve: clean resume: %d journal records replayed\n", sal.JournalRecords)
		}
	}

	handler := sched.NewServerWith(s, sched.ServerConfig{
		Logger:       logger,
		MaxBodyBytes: *maxBody,
		RateLimit:    sched.RateLimit{PerSecond: *rate, Burst: *burst},
	})
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadTimeout:       *readTimeout,
		ReadHeaderTimeout: *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
		ErrorLog:          slog.NewLogLogger(logger.Handler(), slog.LevelWarn),
	}

	// The scheduler loop dying on a journal failure must take the
	// process down loudly — a serving-but-dead scheduler would 500
	// forever (and /healthz flips to 503 first, so an orchestrator can
	// beat us to it). A clean drain or stop, by contrast, keeps the
	// process up: status queries still need serving, and new
	// submissions bounce with 503.
	schedDead := make(chan error, 1)
	go func() {
		<-s.Done()
		if err := s.Err(); err != nil {
			schedDead <- err
			return
		}
		fmt.Println("ibserve: scheduler quiescent; serving status only")
	}()

	serveErr := make(chan error, 1)
	go func() {
		fmt.Printf("ibserve: listening on %s\n", *addr)
		serveErr <- httpSrv.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	select {
	case <-ctx.Done():
		stop() // restore default signal behavior: a second ^C kills us
		fmt.Println("ibserve: signal received; shutting down gracefully")
	case err := <-schedDead:
		fatal(fmt.Errorf("scheduler died: %w", err))
	case err := <-serveErr:
		fatal(err)
	}

	// Two-phase graceful stop: first quiesce the HTTP surface (stop
	// accepting, let in-flight requests finish), then halt the
	// scheduler at its next pass boundary so the journal closes with a
	// complete pass record and the next start resumes bit-identically.
	deadline, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(deadline); err != nil {
		logger.Warn("http shutdown incomplete; closing connections", "error", err)
		httpSrv.Close() //nolint:errcheck // best effort after failed graceful shutdown
	}
	if err := s.Stop(deadline); err != nil {
		fatal(fmt.Errorf("scheduler stop: %w", err))
	}
	fmt.Println("ibserve: stopped cleanly; restart with the same -dir to resume")
}

// openScheduler resumes an existing state directory or creates a fresh
// one: the presence of a journal decides, so a restart after a crash
// (or a graceful stop) picks up every in-flight campaign from its last
// durable checkpoint.
func openScheduler(dir string, cfg sched.Config) (*sched.Scheduler, bool, error) {
	if _, err := os.Stat(filepath.Join(dir, "journal.jsonl")); err == nil {
		s, rerr := sched.Resume(dir, cfg)
		return s, true, rerr
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, false, err
	}
	s, err := sched.New(dir, cfg)
	return s, false, err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ibserve:", err)
	os.Exit(1)
}
