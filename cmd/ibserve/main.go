// Command ibserve runs the multi-tenant campaign scheduler as a JSON
// service: tenants POST campaign submissions, the scheduler multiplexes
// them over one simulated chamber (batching compatible campaigns into
// shared stress passes), and every admission decision and slice of
// progress is journaled so a killed server resumes exactly where it
// died — point it at the same -dir and restart.
//
// Per-campaign encryption keys are derived on demand from the master
// passphrase, the tenant, and the campaign ID; nothing secret is ever
// persisted. Decoding a finished campaign therefore needs the same
// passphrase and the campaign directory (ibdecode, or
// campaign.DecodeResult).
//
// Usage:
//
//	ibserve -dir /var/lib/ibserve -passphrase "..." -addr :8080
//	ibserve -dir /var/lib/ibserve -passphrase "..." -slots 32 -quota-campaigns 4
//
// Routes:
//
//	POST /api/submit          {tenant, spec, spares} → 202 {campaign}
//	GET  /api/status          scheduler-wide counters and latency percentiles
//	GET  /api/campaigns/{id}  one campaign's state
//	POST /api/drain           stop admission, wait for quiescence
package main

import (
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"

	"invisiblebits/internal/sched"
	"invisiblebits/internal/stegocrypt"
)

func main() {
	var (
		dir        = flag.String("dir", "ibserve-data", "state directory (journal + campaign artifacts)")
		addr       = flag.String("addr", ":8080", "listen address")
		passphrase = flag.String("passphrase", "", "master passphrase for per-campaign key derivation (required)")
		slots      = flag.Int("slots", sched.DefaultChamberSlots, "chamber carrier slots per pass")
		setup      = flag.Float64("setup-hours", sched.DefaultSetupHours, "chamber re-targeting cost when the operating point changes")
		queued     = flag.Int("queue", sched.DefaultMaxQueued, "max campaigns in flight before submissions bounce with 429")
		campaigns  = flag.Int("quota-campaigns", 0, "per-tenant active-campaign quota (0 = unlimited)")
		devices    = flag.Int("quota-devices", 0, "per-tenant device quota (0 = unlimited)")
		hours      = flag.Float64("quota-hours", 0, "per-tenant chamber-hour quota (0 = unlimited)")
		batch      = flag.Bool("batch", true, "coalesce compatible campaigns into shared chamber passes")
	)
	flag.Parse()

	if *passphrase == "" {
		fatal(errors.New("ibserve: -passphrase is required (keys are derived, never stored)"))
	}
	master := *passphrase
	cfg := sched.Config{
		ChamberSlots: *slots,
		SetupHours:   *setup,
		MaxQueued:    *queued,
		DefaultQuota: sched.Quota{
			MaxCampaigns:    *campaigns,
			MaxDevices:      *devices,
			MaxChamberHours: *hours,
		},
		DisableBatching: !*batch,
		KeyFor: func(tenant, id string) *stegocrypt.Key {
			k := stegocrypt.KeyFromPassphrase(master + "|" + tenant + "|" + id)
			return &k
		},
	}

	s, resumed, err := openScheduler(*dir, cfg)
	if err != nil {
		fatal(err)
	}
	verb := "created"
	if resumed {
		verb = "resumed"
	}
	st := s.Status()
	fmt.Printf("ibserve: %s scheduler in %s (%d active, %d done, %d failed, %.1f chamber hours)\n",
		verb, *dir, st.Active, st.Done, st.Failed, st.ChamberHours)
	if sal := s.Salvage(); sal != nil {
		if sal.Degraded() {
			fmt.Printf("ibserve: DEGRADED resume: salvaged %d journal records (%d records / %d bytes dropped: %s), %d campaigns quarantined, %d checkpoints struck, %d temp files swept\n",
				sal.JournalRecords, sal.DroppedRecords, sal.DroppedBytes, sal.Reason,
				len(sal.Quarantined), len(sal.BadCheckpoints), len(sal.TempFilesSwept))
			for _, id := range sal.Quarantined {
				fmt.Printf("ibserve: quarantined campaign %s (state unrecoverable; see /api/campaigns/%s)\n", id, id)
			}
		} else {
			fmt.Printf("ibserve: clean resume: %d journal records replayed\n", sal.JournalRecords)
		}
	}
	fmt.Printf("ibserve: listening on %s\n", *addr)

	// The scheduler loop dying on a journal failure must take the
	// process down loudly — a serving-but-dead scheduler would 500
	// forever. A clean drain, by contrast, keeps the process up: the
	// drain response and follow-up status queries still need serving,
	// and new submissions bounce with 503 until the operator stops it.
	go func() {
		<-s.Done()
		if err := s.Err(); err != nil {
			fatal(fmt.Errorf("scheduler died: %w", err))
		}
		fmt.Println("ibserve: drain complete; serving status only")
	}()

	if err := http.ListenAndServe(*addr, sched.NewServer(s)); err != nil {
		fatal(err)
	}
}

// openScheduler resumes an existing state directory or creates a fresh
// one: the presence of a journal decides, so a restart after a crash
// (or a drain) picks up every in-flight campaign from its last durable
// checkpoint.
func openScheduler(dir string, cfg sched.Config) (*sched.Scheduler, bool, error) {
	if _, err := os.Stat(filepath.Join(dir, "journal.jsonl")); err == nil {
		s, rerr := sched.Resume(dir, cfg)
		return s, true, rerr
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, false, err
	}
	s, err := sched.New(dir, cfg)
	return s, false, err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ibserve:", err)
	os.Exit(1)
}
