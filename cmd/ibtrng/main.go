// Command ibtrng harvests true random bytes from a device's SRAM
// power-on noise (the §2 TRNG application): it calibrates the metastable
// cell population, optionally improves it with directed aging (the
// paper's citation [25]), extracts von Neumann-debiased bytes, and runs
// the health tests before emitting anything.
//
// Usage:
//
//	ibtrng -device dev.ibdev -bytes 32
//	ibtrng -model MSP432P401 -serial rng0 -bytes 64 -improve-hours 2 -hex
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"os"

	ib "invisiblebits"
	"invisiblebits/internal/trng"
)

func main() {
	var (
		devPath  = flag.String("device", "", "device image (empty: instantiate -model/-serial fresh)")
		model    = flag.String("model", "MSP432P401", "device model when no image is given")
		serial   = flag.String("serial", "trng-0", "device serial when no image is given")
		nBytes   = flag.Int("bytes", 32, "random bytes to emit")
		captures = flag.Int("captures", 15, "calibration captures")
		improve  = flag.Float64("improve-hours", 0, "age the device toward metastability first (hours)")
		hexOut   = flag.Bool("hex", false, "emit hex instead of raw bytes")
	)
	flag.Parse()

	var dev *ib.Device
	var err error
	if *devPath != "" {
		f, ferr := os.Open(*devPath)
		if ferr != nil {
			fatal(ferr)
		}
		dev, err = ib.LoadDevice(f)
		f.Close()
	} else {
		var m ib.DeviceModel
		m, err = ib.Model(*model)
		if err == nil {
			dev, err = ib.NewDeviceSampled(m, *serial, 16<<10)
		}
	}
	if err != nil {
		fatal(err)
	}

	if *improve > 0 {
		if err := trng.ImproveWithAging(dev, dev.Model.Accelerated(), *improve); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "ibtrng: aged %.1fh toward metastability\n", *improve)
	}

	src, err := trng.Calibrate(dev, *captures, 0.2, 0.8)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "ibtrng: %d metastable cells of %d (%.2f%%)\n",
		src.NoisyCellCount(), dev.SRAM.Cells(),
		100*float64(src.NoisyCellCount())/float64(dev.SRAM.Cells()))

	out := make([]byte, *nBytes)
	if _, err := src.Read(out); err != nil {
		fatal(err)
	}
	bits := trng.BitsOf(out)
	if err := trng.RepetitionCount(bits, 36); err != nil {
		fatal(fmt.Errorf("health check: %w", err))
	}
	if len(bits) >= 512 {
		if err := trng.AdaptiveProportion(bits, 512, 400); err != nil {
			fatal(fmt.Errorf("health check: %w", err))
		}
	}

	if *hexOut {
		fmt.Println(hex.EncodeToString(out))
		return
	}
	os.Stdout.Write(out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ibtrng:", err)
	os.Exit(1)
}
