// Command ibfsck audits — and with -repair, fixes — a campaign or
// scheduler state directory offline, using the same verification rules
// the resume paths apply at startup: journal frames must CRC, the
// record stream must replay, and every referenced image must pass its
// integrity seal.
//
// Usage:
//
//	ibfsck DIR              audit only; report what resume would salvage
//	ibfsck -repair DIR      sweep stale temps, truncate the journal to
//	                        its externally consistent prefix
//	ibfsck -json DIR        machine-readable report on stdout
//
// Repair never deletes device images: older checkpoint generations are
// exactly what a degraded resume falls back on. Corrupt checkpoints,
// rebuildable result files, and quarantinable campaigns are reported
// but left to resume, which has the journaled machinery (ckptbad,
// rebuild, quarantine) to handle them accountably.
//
// Exit status: 0 when the directory is clean (or repair fixed every
// repairable finding), 1 when problems remain, 2 on usage or I/O
// errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"invisiblebits/internal/fsck"
)

func main() {
	var (
		repair  = flag.Bool("repair", false, "apply offline-safe fixes (sweep temps, truncate journal)")
		jsonOut = flag.Bool("json", false, "print the report as JSON")
	)
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: ibfsck [-repair] [-json] DIR")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	dir := flag.Arg(0)

	var rep *fsck.Report
	var err error
	if *repair {
		rep, err = fsck.Repair(nil, dir)
	} else {
		rep, err = fsck.Audit(nil, dir)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ibfsck:", err)
		os.Exit(2)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "ibfsck:", err)
			os.Exit(2)
		}
	} else {
		printReport(rep)
	}

	switch {
	case rep.Clean():
		os.Exit(0)
	case rep.Repaired && !rep.Unrecoverable():
		// Every repairable finding was fixed; the directory now resumes
		// cleanly (corrupt checkpoints are struck by resume itself).
		os.Exit(0)
	default:
		os.Exit(1)
	}
}

func printReport(rep *fsck.Report) {
	fmt.Printf("ibfsck: %s state directory %s\n", rep.Kind, rep.Dir)
	fmt.Printf("  journal: %d records verify (%d bytes)", rep.JournalRecords, rep.ValidLen)
	if rep.DroppedBytes > 0 {
		fmt.Printf("; %d records / %d bytes beyond the consistent prefix", rep.DroppedRecords, rep.DroppedBytes)
		if rep.Reason != "" {
			fmt.Printf(" (%s)", rep.Reason)
		}
	}
	fmt.Println()
	for _, f := range rep.Findings {
		fmt.Printf("  [%s] %s: %s\n          -> %s\n", f.Severity, f.Path, f.Problem, f.Action)
	}
	switch {
	case rep.Repaired:
		fmt.Printf("ibfsck: repaired: %d temp files swept, journal truncated to %d bytes\n",
			len(rep.TempFiles), rep.ValidLen)
	case rep.Clean():
		fmt.Println("ibfsck: clean")
	default:
		fmt.Println("ibfsck: problems found (run with -repair to fix the repairable ones)")
	}
}
