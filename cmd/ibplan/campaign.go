package main

import (
	"fmt"
	"io"

	"invisiblebits/internal/campaign"
	"invisiblebits/internal/cliutil"
	"invisiblebits/internal/core"
	"invisiblebits/internal/device"
	"invisiblebits/internal/ecc"
	"invisiblebits/internal/fleet"
	"invisiblebits/internal/sched"
	"invisiblebits/internal/textplot"
)

// planCampaign is ibplan's schedule mode: instead of ranking ECC
// configurations, it lays out a whole crash-safe campaign — the per-slot
// message segments the stripe planner will assign, the slice/checkpoint
// cadence the supervisor will journal, and the schedule digest Resume
// will verify — so the operator can audit the plan before committing the
// fleet to a multi-day soak. The journal budget is sized in bytes by
// marshaling representative records, scheduler per-tenant overhead
// included, so an operator running many campaigns under ibserve can
// provision the journal volume.
func planCampaign(w io.Writer, spec campaign.Spec) error {
	m, err := device.ByName(spec.Model)
	if err != nil {
		return err
	}
	var codec ecc.Codec
	if spec.Codec != "" {
		if codec, err = cliutil.ParseCodec(spec.Codec); err != nil {
			return err
		}
	}
	sizes := make([]int, len(spec.Serials))
	for i := range sizes {
		sizes[i] = m.SRAMBytes
	}
	segments, err := fleet.PlanSegments(sizes, len(spec.Message), codec)
	if err != nil {
		return err
	}

	soak := spec.StressHours
	if soak <= 0 {
		soak = m.EncodingHours
	}
	slices := int(soak / spec.SliceHours)
	if float64(slices)*spec.SliceHours < soak {
		slices++
	}
	ckpts := slices / spec.CheckpointEvery
	if slices%spec.CheckpointEvery != 0 {
		ckpts++ // the final slice always checkpoints
	}

	perSlot := core.MaxMessageBytes(m.SRAMBytes, codec)
	rows := make([][]string, len(spec.Serials))
	for i, ser := range spec.Serials {
		rows[i] = []string{
			fmt.Sprintf("%d", i),
			ser,
			fmt.Sprintf("%d B", segments[i]),
			fmt.Sprintf("%.0f%%", 100*float64(segments[i])/float64(perSlot)),
			fmt.Sprintf("%.1f h", soak),
			fmt.Sprintf("%d", slices),
			fmt.Sprintf("%d", ckpts),
		}
	}
	budget := sched.EstimateJournalBudget(spec, m)

	fmt.Fprintf(w, "campaign %q: %d B message across %d× %s (%d B SRAM each)\n\n",
		spec.ID, len(spec.Message), len(spec.Serials), m.Name, m.SRAMBytes)
	fmt.Fprintln(w, textplot.Table(
		[]string{"slot", "serial", "segment", "fill", "soak", "slices", "ckpts"}, rows))
	fmt.Fprintf(w, "slice granularity:  %.2f h  (journal record per slice)\n", spec.SliceHours)
	fmt.Fprintf(w, "checkpoint cadence: every %d slices + final (atomic image per checkpoint)\n",
		spec.CheckpointEvery)
	fmt.Fprintf(w, "journal budget:     ~%d fsynced records, ~%d B for an uninterrupted run\n",
		budget.Records, budget.Bytes)
	fmt.Fprintf(w, "                    (+%d B one-time per-tenant scheduler overhead under ibserve)\n",
		budget.TenantBytes)
	fmt.Fprintf(w, "schedule digest:    %s\n", spec.ScheduleDigest())
	fmt.Fprintln(w, "                    (binds this exact message, fleet, and cadence)")
	fmt.Fprintln(w, "\na crash at any point resumes with `campaign.Resume` (see README,"+
		" \"Surviving interruptions\"); the digest above is what Resume verifies.")
	return nil
}
