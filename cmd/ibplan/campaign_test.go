package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"invisiblebits/internal/campaign"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// TestPlanCampaignGolden pins the full -campaign report — segment
// table, cadence, journal budget in records AND bytes (scheduler
// per-tenant overhead included), schedule digest — against a golden
// file. The byte budget is derived by marshaling representative journal
// records, so this test also catches accidental journal-grammar bloat.
func TestPlanCampaignGolden(t *testing.T) {
	spec := campaign.Spec{
		ID:              "golden",
		Model:           "MSP430G2553",
		Serials:         []string{"golden-0", "golden-1"},
		Message:         bytes.Repeat([]byte{0xA5}, 48),
		Codec:           "paper",
		StressHours:     7.5,
		SliceHours:      2.5,
		CheckpointEvery: 2,
	}
	var out bytes.Buffer
	if err := planCampaign(&out, spec); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "campaign_plan.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update-golden): %v", err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Fatalf("plan output drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", out.Bytes(), want)
	}

	// The budget lines must quote concrete byte counts, not zeros.
	text := out.String()
	for _, frag := range []string{"fsynced records", "B for an uninterrupted run", "per-tenant scheduler overhead"} {
		if !strings.Contains(text, frag) {
			t.Fatalf("plan output missing %q:\n%s", frag, text)
		}
	}
	if strings.Contains(text, "~0 B") || strings.Contains(text, "+0 B") {
		t.Fatalf("journal budget collapsed to zero bytes:\n%s", text)
	}
}
