// Command ibplan turns §5.2's ECC guidance into a planner: given a
// measured (or assumed) single-copy channel error and a target residual
// error, it lists the error-correction configurations that meet the
// target, ranked by message capacity.
//
// Usage:
//
//	ibplan -channel 0.065 -target 0.003                 # the paper's MSP432 point
//	ibplan -model LPC55S69JBD100 -target 0.001          # use a catalog device's error
//	ibplan -campaign demo -carriers 3 -msgbytes 96      # campaign schedule layout
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	ib "invisiblebits"
	"invisiblebits/internal/campaign"
	"invisiblebits/internal/device"
	"invisiblebits/internal/stats"
	"invisiblebits/internal/textplot"
)

func main() {
	var (
		channel = flag.Float64("channel", 0, "single-copy channel bit error rate (0 = derive from -model)")
		target  = flag.Float64("target", 0.003, "acceptable residual bit error rate")
		model   = flag.String("model", "MSP432P401", "catalog device (sizes SRAM and, if -channel is 0, sets the error)")
		top     = flag.Int("top", 10, "show at most this many plans")

		campaignID = flag.String("campaign", "", "campaign schedule mode: lay out slices, checkpoints, and segments for this campaign ID")
		carriers   = flag.Int("carriers", 2, "campaign mode: fleet size (serials are generated as <id>-N)")
		serials    = flag.String("serials", "", "campaign mode: explicit comma-separated carrier serials (overrides -carriers)")
		msgBytes   = flag.Int("msgbytes", 64, "campaign mode: message length to stripe")
		codecName  = flag.String("codec", "paper", "campaign mode: ECC codec (paper, ham, rep5, none, ...)")
		slice      = flag.Float64("slice", campaign.DefaultSliceHours, "campaign mode: journal slice granularity in hours")
		ckptEvery  = flag.Int("ckpt-every", campaign.DefaultCheckpointEvery, "campaign mode: checkpoint every N slices")
		stress     = flag.Float64("stress", 0, "campaign mode: soak hours per carrier (0 = model default)")
	)
	flag.Parse()

	if *campaignID != "" {
		spec := campaign.Spec{
			ID:              *campaignID,
			Model:           *model,
			Message:         make([]byte, *msgBytes),
			Codec:           *codecName,
			StressHours:     *stress,
			SliceHours:      *slice,
			CheckpointEvery: *ckptEvery,
		}
		if *codecName == "none" {
			spec.Codec = ""
		}
		if *serials != "" {
			spec.Serials = strings.Split(*serials, ",")
		} else {
			for i := 0; i < *carriers; i++ {
				spec.Serials = append(spec.Serials, fmt.Sprintf("%s-%d", *campaignID, i))
			}
		}
		if err := planCampaign(os.Stdout, spec); err != nil {
			fatal(err)
		}
		return
	}

	m, err := device.ByName(*model)
	if err != nil {
		fatal(err)
	}
	p := *channel
	if p == 0 {
		p = 1 - m.TargetBitRate
		fmt.Printf("using %s's characterized channel error %.2f%% (Table 4)\n", m.Name, 100*p)
	}

	plans, err := ib.RecommendECC(p, *target, m.SRAMBytes)
	if err != nil {
		fatal(err)
	}
	if len(plans) == 0 {
		fmt.Printf("no configuration reaches %.3g%% residual on a %.3g%% channel\n", 100**target, 100*p)
		fmt.Printf("channel capacity bound: %.1f%% of cells (1 − H(p))\n",
			100*stats.BinarySymmetricChannelCapacity(p))
		os.Exit(1)
	}
	if len(plans) > *top {
		plans = plans[:*top]
	}

	rows := make([][]string, len(plans))
	for i, plan := range plans {
		name := "raw channel"
		if plan.Codec != nil {
			name = plan.Codec.Name()
		}
		rows[i] = []string{
			name,
			fmt.Sprintf("%.4g%%", 100*plan.PredictedError),
			fmt.Sprintf("%.3f", plan.Rate),
			fmt.Sprintf("%d B", plan.CapacityBytes),
		}
	}
	fmt.Printf("\nplans meeting %.3g%% residual on a %.3g%% channel (%s, %d KB SRAM):\n\n",
		100**target, 100*p, m.Name, m.SRAMBytes>>10)
	fmt.Println(textplot.Table([]string{"code", "predicted error", "rate", "capacity"}, rows))
	fmt.Printf("Shannon bound at this channel: %.1f%% of cells\n",
		100*stats.BinarySymmetricChannelCapacity(p))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ibplan:", err)
	os.Exit(1)
}
