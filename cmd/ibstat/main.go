// Command ibstat plays the adversary: given a device image, it captures
// power-on states and runs the paper's steganalysis battery (§6) —
// mean power-on bias, Moran's I spatial autocorrelation, byte-symbol
// Shannon entropy, and the 128-bit-block Hamming-weight distribution —
// then renders a verdict on whether a hidden message is statistically
// detectable.
//
// With -snapshots N it additionally plays the §7.1 multiple-snapshot
// adversary, comparing captures separated by -interval-hours of simulated
// recovery for temporal discrepancies.
//
// Usage:
//
//	ibstat -device dev.ibdev
//	ibstat -device dev.ibdev -snapshots 3 -interval-hours 24
package main

import (
	"flag"
	"fmt"
	"os"

	ib "invisiblebits"
	"invisiblebits/internal/stats"
	"invisiblebits/internal/steganalysis"
	"invisiblebits/internal/textplot"
)

func main() {
	var (
		devPath   = flag.String("device", "device.ibdev", "device image to inspect")
		captures  = flag.Int("captures", 5, "power-on captures per snapshot")
		snapshots = flag.Int("snapshots", 1, "number of temporal snapshots (§7.1 adversary)")
		interval  = flag.Float64("interval-hours", 24, "simulated hours between snapshots")
		health    = flag.Bool("health", false, "probe retention health (per-region margin from vote entropy; needs no plaintext) and print the refresh ledger")
		regions   = flag.Int("health-regions", 8, "number of regions for the health probe")
	)
	flag.Parse()

	f, err := os.Open(*devPath)
	if err != nil {
		fatal(err)
	}
	dev, err := ib.LoadDevice(f)
	f.Close()
	if err != nil {
		fatal(err)
	}

	fmt.Printf("inspecting %s (%s), %d KB SRAM\n\n", dev.Model.Name, dev.DeviceID(), dev.SRAM.Bytes()>>10)

	if *health {
		printHealth(dev, *captures, *regions)
		return
	}

	rep, err := steganalysis.AnalyzeDevice(dev, *captures, steganalysis.DefaultBands())
	if err != nil {
		fatal(err)
	}

	rows := make([][]string, len(rep.Findings))
	for i, fd := range rep.Findings {
		verdict := "ok"
		if fd.Suspicious {
			verdict = "SUSPICIOUS"
		}
		rows[i] = []string{fd.Name, fmt.Sprintf("%.4f", fd.Value), fd.Band, verdict}
	}
	fmt.Println(textplot.Table([]string{"statistic", "value", "clean band", "verdict"}, rows))

	h := stats.NewHistogram(stats.IntsToFloats(rep.BlockWeights), 0, 128, 32)
	fmt.Println(textplot.Chart("128-bit block Hamming-weight density", "weight", "density",
		[]textplot.Series{{Name: "observed", X: h.BinCenters(), Y: h.Density()}}, 60, 12))

	if *snapshots > 1 {
		fmt.Printf("multiple-snapshot analysis (%d snapshots, %.0fh apart):\n", *snapshots, *interval)
		dev.PowerOff(true)
		prev, err := dev.SRAM.CaptureMajority(*captures, 25)
		if err != nil {
			fatal(err)
		}
		for s := 1; s < *snapshots; s++ {
			dev.PowerOff(true)
			if err := dev.Shelve(*interval); err != nil {
				fatal(err)
			}
			cur, err := dev.SRAM.CaptureMajority(*captures, 25)
			if err != nil {
				fatal(err)
			}
			cmp, err := steganalysis.CompareSnapshots(prev, cur, 16, 0.05)
			if err != nil {
				fatal(err)
			}
			verdict := "consistent with measurement noise"
			if cmp.Suspicious {
				verdict = "SUSPICIOUS temporal discrepancy"
			}
			fmt.Printf("  snapshot %d vs %d: drift %.3f%%, block-weight p=%.3f — %s\n",
				s, s+1, 100*cmp.DriftFraction, cmp.WelchP, verdict)
			prev = cur
		}
		fmt.Println()
	}

	fmt.Printf("VERDICT: %s\n", rep)
	if !rep.Suspicious() {
		fmt.Println("         (a correctly encrypted Invisible Bits message also produces this verdict)")
	}
}

// printHealth runs the retention-health probe: per-region margin
// estimated from vote entropy alone — the operator's view of how much
// analog life an imprint has left, without needing the plaintext.
func printHealth(dev *ib.Device, captures, regions int) {
	carrier := ib.NewCarrier(dev)
	regionBytes := 0
	if regions > 0 {
		regionBytes = (dev.SRAM.Bytes() + regions - 1) / regions
	}
	rep, err := carrier.ProbeHealth(3*captures, regionBytes)
	if err != nil {
		fatal(err)
	}
	rows := make([][]string, len(rep.Regions))
	for i, rg := range rep.Regions {
		rows[i] = []string{
			fmt.Sprintf("0x%05x", rg.Offset),
			fmt.Sprintf("%d", rg.Bytes),
			fmt.Sprintf("%.3f", rg.MeanMargin),
			fmt.Sprintf("%.3f", rg.MeanEntropy),
			fmt.Sprintf("%.1f%%", 100*rg.WeakFrac),
		}
	}
	fmt.Println(textplot.Table([]string{"region", "bytes", "margin", "entropy(b)", "weak cells"}, rows))
	fmt.Printf("array: margin %.3f, entropy %.3f bits/cell, weak %.1f%% (%d captures)\n",
		rep.MeanMargin, rep.MeanEntropy, 100*rep.WeakFrac, rep.Captures)

	if log := dev.RefreshLog(); len(log) > 0 {
		fmt.Printf("\nrefresh ledger (%d events):\n", len(log))
		for i, ev := range log {
			fmt.Printf("  %d: at t=%.0fh, %.1fh re-stress, margin %.3f -> %.3f\n",
				i+1, ev.ClockHours, ev.StressHours, ev.MarginBefore, ev.MarginAfter)
		}
	} else {
		fmt.Println("\nrefresh ledger: empty (never refreshed)")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ibstat:", err)
	os.Exit(1)
}
