// Command ibencode hides a message in a simulated device's SRAM analog
// domain (the Alice side of Fig. 4) and writes two artifacts: the device
// image (the "chip" to hand over) and a record file with the pre-shared
// decode parameters.
//
// Usage:
//
//	ibencode -model MSP432P401 -serial 0001 -message "hello" \
//	         -passphrase secret -codec paper \
//	         -device dev.ibdev -record msg.ibrec
//
// The message may instead come from a file via -in. Omitting -passphrase
// encodes plain-text (detectable by analog steganalysis — see ibstat).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	ib "invisiblebits"
	"invisiblebits/internal/cliutil"
	"invisiblebits/internal/ioatomic"
)

func main() {
	var (
		model      = flag.String("model", "MSP432P401", "device model (see Table 1; ibencode -list)")
		serial     = flag.String("serial", "0001", "device serial number (determines the silicon fingerprint)")
		message    = flag.String("message", "", "message text to hide")
		inFile     = flag.String("in", "", "read the message from this file instead of -message")
		passphrase = flag.String("passphrase", "", "pre-shared passphrase (empty = no encryption)")
		codecName  = flag.String("codec", "paper", "ECC layer: "+cliutil.KnownCodecs())
		hours      = flag.Float64("hours", 0, "stress time override in simulated hours (0 = device default)")
		sramLimit  = flag.Int("sram-limit", 0, "cap simulated SRAM bytes (0 = full size)")
		devOut     = flag.String("device", "device.ibdev", "output device image path")
		recOut     = flag.String("record", "message.ibrec", "output record path (pre-shared parameters)")
		list       = flag.Bool("list", false, "list supported device models and exit")
	)
	flag.Parse()

	if *list {
		for _, m := range ib.Models() {
			fmt.Printf("%-18s %-28s SRAM %8s  Flash %8s  (%s)\n",
				m.Name, m.CPUCore, kb(m.SRAMBytes), kb(m.FlashBytes), m.Manufacturer)
		}
		return
	}

	msg := []byte(*message)
	if *inFile != "" {
		data, err := os.ReadFile(*inFile)
		if err != nil {
			fatal(err)
		}
		msg = data
	}
	if len(msg) == 0 {
		fatal(fmt.Errorf("no message: use -message or -in"))
	}

	codec, err := cliutil.ParseCodec(*codecName)
	if err != nil {
		fatal(err)
	}
	m, err := ib.Model(*model)
	if err != nil {
		fatal(err)
	}
	var dev *ib.Device
	if *sramLimit > 0 {
		dev, err = ib.NewDeviceSampled(m, *serial, *sramLimit)
	} else {
		dev, err = ib.NewDevice(m, *serial)
	}
	if err != nil {
		fatal(err)
	}

	capacity := ib.MaxMessageBytes(dev.SRAM.Bytes(), codec)
	if len(msg) > capacity {
		fatal(fmt.Errorf("message of %d bytes exceeds capacity %d bytes (model %s, codec %s)",
			len(msg), capacity, m.Name, cliutil.CodecDisplay(codec)))
	}

	opts := ib.Options{Codec: codec, StressHours: *hours}
	if *passphrase != "" {
		key := ib.KeyFromPassphrase(*passphrase)
		opts.Key = &key
	}

	carrier := ib.NewCarrier(dev)
	rec, err := carrier.Hide(msg, opts)
	if err != nil {
		fatal(err)
	}

	// Both artifacts are written atomically (a crash mid-save must not
	// leave a torn file under the final name) and sealed with a sha256
	// footer, so a later read detects bit rot instead of decoding noise.
	if err := ib.SaveDeviceFile(dev, *devOut); err != nil {
		fatal(err)
	}
	recJSON, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := ioatomic.WriteFileSealed(nil, *recOut, append(recJSON, '\n'), 0o644); err != nil {
		fatal(err)
	}

	fmt.Printf("encoded %d bytes into %s (%s)\n", len(msg), m.Name, dev.DeviceID())
	fmt.Printf("  codec: %s, encrypted: %v, stress: %.1f simulated hours\n",
		rec.CodecName, rec.Encrypted, rec.StressHours)
	fmt.Printf("  device image: %s\n  record:       %s\n", *devOut, *recOut)
	fmt.Printf("  rig log:\n")
	for _, e := range carrier.Rig().Events() {
		fmt.Printf("    %s\n", e)
	}
}

func kb(bytes int) string {
	if bytes < 1<<10 {
		return fmt.Sprintf("%d B", bytes)
	}
	return fmt.Sprintf("%d KB", bytes>>10)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ibencode:", err)
	os.Exit(1)
}
