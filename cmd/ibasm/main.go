// Command ibasm assembles and disassembles IB32 programs — the firmware
// format the simulated devices execute (payload writers, retainers,
// camouflage, workloads).
//
// Usage:
//
//	ibasm -in prog.s -out prog.bin            assemble
//	ibasm -d -in prog.bin                     disassemble to stdout
//	ibasm -gen writer -payload data.bin       emit a payload-writer program
//	ibasm -gen retainer|camouflage|workload   emit a canned program
package main

import (
	"flag"
	"fmt"
	"os"

	"invisiblebits/internal/asm"
	"invisiblebits/internal/ioatomic"
	"invisiblebits/internal/progen"
)

func main() {
	var (
		inFile   = flag.String("in", "", "input file (assembly source, or binary with -d)")
		outFile  = flag.String("out", "", "output file (defaults to stdout for text, prog.bin for binaries)")
		disasm   = flag.Bool("d", false, "disassemble a binary image")
		origin   = flag.Uint("origin", 0, "load address")
		gen      = flag.String("gen", "", "generate a program: writer, retainer, camouflage, workload")
		payload  = flag.String("payload", "", "payload file for -gen writer")
		sramSize = flag.Int("sram", 64<<10, "SRAM size for -gen workload")
	)
	flag.Parse()

	switch {
	case *gen != "":
		src, err := generate(*gen, *payload, *sramSize)
		if err != nil {
			fatal(err)
		}
		if err := writeOut(*outFile, []byte(src)); err != nil {
			fatal(err)
		}

	case *disasm:
		if *inFile == "" {
			fatal(fmt.Errorf("-d requires -in"))
		}
		img, err := os.ReadFile(*inFile)
		if err != nil {
			fatal(err)
		}
		if err := writeOut(*outFile, []byte(asm.Disassemble(img, uint32(*origin)))); err != nil {
			fatal(err)
		}

	case *inFile != "":
		src, err := os.ReadFile(*inFile)
		if err != nil {
			fatal(err)
		}
		prog, err := asm.Assemble(string(src), uint32(*origin))
		if err != nil {
			fatal(err)
		}
		out := *outFile
		if out == "" {
			out = "prog.bin"
		}
		if err := ioatomic.WriteFile(out, prog.Image, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "ibasm: %d bytes -> %s (%d symbols)\n",
			len(prog.Image), out, len(prog.Symbols))

	default:
		flag.Usage()
		os.Exit(2)
	}
}

func generate(kind, payloadFile string, sramSize int) (string, error) {
	switch kind {
	case "writer":
		if payloadFile == "" {
			return "", fmt.Errorf("-gen writer requires -payload")
		}
		data, err := os.ReadFile(payloadFile)
		if err != nil {
			return "", err
		}
		if pad := (4 - len(data)%4) % 4; pad > 0 {
			data = append(data, make([]byte, pad)...)
		}
		return progen.WriterProgram(data)
	case "retainer":
		return progen.RetainerProgram(), nil
	case "camouflage":
		return progen.CamouflageProgram(), nil
	case "workload":
		return progen.WorkloadProgram(sramSize)
	default:
		return "", fmt.Errorf("unknown generator %q", kind)
	}
}

func writeOut(path string, data []byte) error {
	if path == "" {
		_, err := os.Stdout.Write(data)
		return err
	}
	return ioatomic.WriteFile(path, data, 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ibasm:", err)
	os.Exit(1)
}
