// Command ibbench runs the capture-path benchmark grid — array size ×
// burst length × worker count — through testing.Benchmark and records
// the trajectory as BENCH_3.json: ns/op, B/op, MB/s, and speedup of
// each parallel configuration over the serial (1-worker) baseline for
// the same grid point. Alongside each number it captures the machine
// context (GOMAXPROCS, NumCPU, go version) so trajectories from
// different hosts are comparable.
//
// Before timing, the harness cross-checks determinism: every worker
// count in the grid must produce bit-identical captures from the same
// seed, or the run aborts. Speed without equivalence is not a result.
//
// Usage:
//
//	ibbench                        # grid at workers {1, GOMAXPROCS}
//	ibbench -workers 1,2,4,8       # explicit worker grid
//	ibbench -o BENCH_3.json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"invisiblebits/internal/sram"
)

type benchPoint struct {
	Name     string  `json:"name"`
	Bytes    int     `json:"array_bytes"`
	Captures int     `json:"captures"`
	Workers  int     `json:"workers"`
	NsPerOp  float64 `json:"ns_per_op"`
	BPerOp   int64   `json:"bytes_per_op"`
	AllocsOp int64   `json:"allocs_per_op"`
	MBPerSec float64 `json:"mb_per_sec"`
	// Speedup is ns/op of the 1-worker run at the same grid point
	// divided by this run's ns/op; 1.0 for the serial baseline itself.
	Speedup float64 `json:"speedup_vs_serial"`
}

type benchReport struct {
	Schema     string       `json:"schema"`
	GoVersion  string       `json:"go_version"`
	GOOS       string       `json:"goos"`
	GOARCH     string       `json:"goarch"`
	NumCPU     int          `json:"num_cpu"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Equivalent bool         `json:"captures_bit_identical"`
	Points     []benchPoint `json:"points"`
}

func newArray(bytes, seed, workers int) (*sram.Array, error) {
	spec := sram.DefaultSpec()
	spec.Rows = 256
	spec.Cols = bytes * 8 / spec.Rows
	spec.Seed = uint64(seed)
	spec.Workers = workers
	a, err := sram.New(spec)
	if err != nil {
		return nil, err
	}
	if _, err := a.PowerOn(25); err != nil {
		return nil, err
	}
	return a, nil
}

// checkEquivalence asserts every worker count resolves identical
// captures from the same seed — the property the speedup numbers rest on.
func checkEquivalence(workerGrid []int) error {
	var want []byte
	for _, w := range workerGrid {
		a, err := newArray(4<<10, 0xbe2c, w)
		if err != nil {
			return err
		}
		got, err := a.CaptureMajority(5, 25)
		if err != nil {
			return err
		}
		if want == nil {
			want = got
			continue
		}
		if !bytes.Equal(got, want) {
			return fmt.Errorf("workers=%d: capture differs from workers=%d", w, workerGrid[0])
		}
	}
	return nil
}

func parseWorkers(s string) ([]int, error) {
	var grid []int
	seen := map[int]bool{}
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad worker count %q", f)
		}
		if !seen[n] {
			seen[n] = true
			grid = append(grid, n)
		}
	}
	return grid, nil
}

func main() {
	defaultWorkers := "1"
	if n := runtime.GOMAXPROCS(0); n > 1 {
		defaultWorkers += "," + strconv.Itoa(n)
	}
	var (
		out     = flag.String("o", "BENCH_3.json", "output path for the benchmark report")
		workers = flag.String("workers", defaultWorkers, "comma-separated worker counts (must include 1 for the serial baseline)")
	)
	flag.Parse()

	grid, err := parseWorkers(*workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ibbench:", err)
		os.Exit(1)
	}
	if grid[0] != 1 {
		fmt.Fprintln(os.Stderr, "ibbench: worker grid must start with 1 (serial baseline)")
		os.Exit(1)
	}

	if err := checkEquivalence(grid); err != nil {
		fmt.Fprintln(os.Stderr, "ibbench: determinism check failed:", err)
		os.Exit(1)
	}

	report := benchReport{
		Schema:     "invisiblebits/bench/v3",
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Equivalent: true,
	}

	sizes := []struct {
		name  string
		bytes int
	}{{"4KiB", 4 << 10}, {"64KiB", 64 << 10}}

	serial := map[string]float64{} // "size/captures" -> ns/op at workers=1
	for _, size := range sizes {
		for _, captures := range []int{5, 25} {
			for _, w := range grid {
				a, err := newArray(size.bytes, 0xbe2c, w)
				if err != nil {
					fmt.Fprintln(os.Stderr, "ibbench:", err)
					os.Exit(1)
				}
				captures := captures
				res := testing.Benchmark(func(b *testing.B) {
					b.ReportAllocs()
					b.SetBytes(int64(size.bytes * captures))
					for i := 0; i < b.N; i++ {
						if _, err := a.CaptureVotes(captures, 25); err != nil {
							b.Fatal(err)
						}
					}
				})
				nsop := float64(res.NsPerOp())
				key := fmt.Sprintf("%s/%dcap", size.name, captures)
				if w == 1 {
					serial[key] = nsop
				}
				pt := benchPoint{
					Name:     fmt.Sprintf("%s/%dw", key, w),
					Bytes:    size.bytes,
					Captures: captures,
					Workers:  w,
					NsPerOp:  nsop,
					BPerOp:   res.AllocedBytesPerOp(),
					AllocsOp: res.AllocsPerOp(),
					MBPerSec: float64(size.bytes*captures) / nsop * 1e3,
					Speedup:  serial[key] / nsop,
				}
				report.Points = append(report.Points, pt)
				fmt.Printf("%-18s %12.0f ns/op %10d B/op %8.2f MB/s %6.2fx\n",
					pt.Name, pt.NsPerOp, pt.BPerOp, pt.MBPerSec, pt.Speedup)
			}
		}
	}

	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "ibbench:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "ibbench:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", *out)
}
