// Command ibbench runs the hot-path benchmark grids — captures,
// power-on races, aging soaks, and pruning ratios — through
// testing.Benchmark and records the trajectory as BENCH_4.json. Every
// optimized number is paired with the BENCH_3-era engine (serial,
// unpruned, per-cell GrowShift aging) timed on the same host in the
// same process, so `speedup_vs_legacy` is a like-for-like measurement,
// not a cross-machine comparison.
//
// Before timing, the harness cross-checks equivalence: within each
// noise-plane version the optimized capture engine must be bit-identical
// to the reference engine (pruning and sharding are exact, not
// approximate), and the equivalent-time aging engine must agree with
// per-cell GrowShift to float rounding. Speed without equivalence is
// not a result — any violation aborts the run.
//
// Usage:
//
//	ibbench                        # grid at workers {1, GOMAXPROCS}
//	ibbench -workers 1,2,4,8       # explicit worker grid
//	ibbench -o BENCH_4.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"invisiblebits/internal/analog"
	"invisiblebits/internal/ioatomic"
	"invisiblebits/internal/sram"
)

type benchPoint struct {
	Name     string  `json:"name"`
	Bytes    int     `json:"array_bytes"`
	Captures int     `json:"captures,omitempty"`
	Workers  int     `json:"workers,omitempty"`
	NoiseGen int     `json:"noise_gen,omitempty"`
	NsPerOp  float64 `json:"ns_per_op"`
	BPerOp   int64   `json:"bytes_per_op"`
	AllocsOp int64   `json:"allocs_per_op"`
	MBPerSec float64 `json:"mb_per_sec,omitempty"`
	// LegacyNsPerOp is the BENCH_3-era engine (serial, unpruned,
	// per-cell GrowShift) timed on this host for the same grid point.
	LegacyNsPerOp float64 `json:"legacy_ns_per_op,omitempty"`
	// Speedup is LegacyNsPerOp / NsPerOp.
	Speedup float64 `json:"speedup_vs_legacy,omitempty"`
	// PruneFrac is the fraction of cells the engine resolved without
	// noise draws (prune-ratio grid only).
	PruneFrac float64 `json:"prune_frac,omitempty"`
}

type benchReport struct {
	Schema     string `json:"schema"`
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Equivalent: within each NoiseGen version, optimized captures are
	// bit-identical to the serial unpruned reference engine, and the
	// aging engines agree to float rounding. Checked before timing.
	Equivalent bool         `json:"captures_bit_identical"`
	Capture    []benchPoint `json:"capture_grid"`
	PowerOn    []benchPoint `json:"power_on_grid"`
	Stress     []benchPoint `json:"stress_grid"`
	PruneRatio []benchPoint `json:"prune_ratio_grid"`
}

const benchSeed = 0xbe2c

func newArray(bytes, workers, noiseGen int) (*sram.Array, error) {
	spec := sram.DefaultSpec()
	spec.Rows = 256
	spec.Cols = bytes * 8 / spec.Rows
	spec.Seed = benchSeed
	spec.Workers = workers
	spec.NoiseGen = noiseGen
	a, err := sram.New(spec)
	if err != nil {
		return nil, err
	}
	if _, err := a.PowerOn(25); err != nil {
		return nil, err
	}
	return a, nil
}

// imprint writes a fixed pattern and soaks it at the encoding condition,
// pushing message cells beyond the pruning bound like a real encode.
func imprint(a *sram.Array, hours float64) error {
	if hours <= 0 {
		return nil
	}
	pattern := make([]byte, a.Bytes())
	for i := range pattern {
		pattern[i] = byte(i*37 + 11)
	}
	return a.StressWithPattern(pattern, a.Spec().Aging.Ref, hours)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "ibbench:", err)
	os.Exit(1)
}

// checkEquivalence is the gate the speedup numbers rest on: within each
// noise-plane version, every worker count's pruned parallel captures
// must match the serial unpruned reference bit for bit (clean and
// heavily-imprinted arrays), and parallel equivalent-time aging must
// match per-cell GrowShift to float rounding.
func checkEquivalence(workerGrid []int) error {
	for _, gen := range []int{sram.NoiseGenBoxMuller, sram.NoiseGenZiggurat} {
		for _, soak := range []float64{0, 10} {
			ref, err := newArray(4<<10, 1, gen)
			if err != nil {
				return err
			}
			if err := imprint(ref, soak); err != nil {
				return err
			}
			want, err := ref.CaptureVotesReference(5, 25)
			if err != nil {
				return err
			}
			for _, w := range workerGrid {
				a, err := newArray(4<<10, w, gen)
				if err != nil {
					return err
				}
				if err := imprint(a, soak); err != nil {
					return err
				}
				got, err := a.CaptureVotes(5, 25)
				if err != nil {
					return err
				}
				for i := range want {
					if got[i] != want[i] {
						return fmt.Errorf("gen=%d soak=%vh workers=%d: cell %d votes %d, reference %d",
							gen, soak, w, i, got[i], want[i])
					}
				}
			}
		}
	}
	// Aging: staged stress + shelf + restress, optimized vs legacy.
	cond := analog.Conditions{VoltageV: 3.3, TempC: 85}
	run := func(legacy bool) (*sram.Array, error) {
		a, err := newArray(4<<10, 0, sram.NoiseGenZiggurat)
		if err != nil {
			return nil, err
		}
		stress := a.Stress
		if legacy {
			stress = a.StressReference
		}
		pattern := make([]byte, a.Bytes())
		for i := range pattern {
			pattern[i] = byte(i*37 + 11)
		}
		if err := a.Write(pattern); err != nil {
			return nil, err
		}
		for _, h := range []float64{2, 1, 3} {
			if err := stress(cond, h); err != nil {
				return nil, err
			}
		}
		a.PowerOff(true)
		if err := a.Shelve(100); err != nil {
			return nil, err
		}
		if _, err := a.PowerOn(25); err != nil {
			return nil, err
		}
		if err := stress(cond, 0.5); err != nil {
			return nil, err
		}
		return a, nil
	}
	fast, err := run(false)
	if err != nil {
		return err
	}
	ref, err := run(true)
	if err != nil {
		return err
	}
	for i := 0; i < fast.Cells(); i++ {
		fb, rb := fast.Bias(i), ref.Bias(i)
		if diff := math.Abs(fb - rb); diff/math.Max(1, math.Abs(rb)) > 1e-5 {
			return fmt.Errorf("stress equivalence: cell %d bias %v vs reference %v", i, fb, rb)
		}
	}
	return nil
}

func parseWorkers(s string) ([]int, error) {
	var grid []int
	seen := map[int]bool{}
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad worker count %q", f)
		}
		if !seen[n] {
			seen[n] = true
			grid = append(grid, n)
		}
	}
	return grid, nil
}

func bench(fn func(b *testing.B)) testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		fn(b)
	})
}

var sizes = []struct {
	name  string
	bytes int
}{{"4KiB", 4 << 10}, {"64KiB", 64 << 10}}

func genName(gen int) string {
	if gen == sram.NoiseGenZiggurat {
		return "zig"
	}
	return "bm"
}

func main() {
	defaultWorkers := "1"
	if n := runtime.GOMAXPROCS(0); n > 1 {
		defaultWorkers += "," + strconv.Itoa(n)
	}
	var (
		out        = flag.String("o", "", "output path for the benchmark report (default BENCH_4.json, BENCH_5.json with -sched, BENCH_6.json with -kernel)")
		workers    = flag.String("workers", defaultWorkers, "comma-separated worker counts (must include 1 for the serial baseline)")
		schedMode  = flag.Bool("sched", false, "benchmark the multi-tenant scheduler (campaigns/chamber-hour and latency at scale) instead of the hot-path grids")
		tenants    = flag.String("sched-tenants", "1000,10000", "comma-separated tenancy levels for -sched")
		kernelMode = flag.Bool("kernel", false, "benchmark the word-parallel capture kernel against the scalar and reference engines (BENCH_6.json)")
		decodeMode = flag.Bool("decodegrid", false, "benchmark the word-parallel decode pipeline against the scalar decoders (BENCH_7.json)")
		quick      = flag.Bool("quick", false, "CI smoke: equivalence gates with a minimal grid (implies -kernel unless -decodegrid)")
	)
	flag.Parse()

	if *decodeMode {
		path := *out
		if path == "" {
			path = "BENCH_7.json"
		}
		grid, err := parseWorkers(*workers)
		if err != nil {
			fail(err)
		}
		runDecodeBench(path, grid, *quick)
		return
	}
	if *kernelMode || *quick {
		path := *out
		if path == "" {
			path = "BENCH_6.json"
		}
		grid, err := parseWorkers(*workers)
		if err != nil {
			fail(err)
		}
		runKernelBench(path, grid, *quick)
		return
	}
	if *schedMode {
		path := *out
		if path == "" {
			path = "BENCH_5.json"
		}
		grid, err := parseWorkers(*tenants)
		if err != nil {
			fail(err)
		}
		runSchedBench(path, grid)
		return
	}
	if *out == "" {
		*out = "BENCH_4.json"
	}

	grid, err := parseWorkers(*workers)
	if err != nil {
		fail(err)
	}
	if grid[0] != 1 {
		fail(fmt.Errorf("worker grid must start with 1 (serial baseline)"))
	}

	if err := checkEquivalence(grid); err != nil {
		fail(fmt.Errorf("equivalence check failed: %w", err))
	}
	fmt.Println("equivalence gates passed: captures bit-identical, aging within float rounding")

	report := benchReport{
		Schema:     "invisiblebits/bench/v4",
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Equivalent: true,
	}
	emit := func(dst *[]benchPoint, pt benchPoint) {
		*dst = append(*dst, pt)
		fmt.Printf("%-26s %14.0f ns/op %12.0f legacy %7.2fx\n",
			pt.Name, pt.NsPerOp, pt.LegacyNsPerOp, pt.Speedup)
	}

	// --- capture grid: size × captures × NoiseGen × workers ---------------
	// The legacy baseline is the BENCH_3-era engine: serial, unpruned,
	// Box–Muller noise. It is timed once per (size, captures) and shared
	// by both NoiseGen rows — the Box–Muller rows show the refactor alone
	// is cost-neutral for compat-mode devices, the ziggurat rows show
	// what new silicon gains over the old engine.
	for _, size := range sizes {
		for _, captures := range []int{5, 25} {
			legacyArr, err := newArray(size.bytes, 1, sram.NoiseGenBoxMuller)
			if err != nil {
				fail(err)
			}
			captures := captures
			legacy := bench(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := legacyArr.CaptureVotesReference(captures, 25); err != nil {
						b.Fatal(err)
					}
				}
			})
			for _, gen := range []int{sram.NoiseGenBoxMuller, sram.NoiseGenZiggurat} {
				for _, w := range grid {
					a, err := newArray(size.bytes, w, gen)
					if err != nil {
						fail(err)
					}
					res := bench(func(b *testing.B) {
						b.SetBytes(int64(size.bytes * captures))
						for i := 0; i < b.N; i++ {
							if _, err := a.CaptureVotes(captures, 25); err != nil {
								b.Fatal(err)
							}
						}
					})
					nsop := float64(res.NsPerOp())
					emit(&report.Capture, benchPoint{
						Name:          fmt.Sprintf("%s/%dcap/%s/%dw", size.name, captures, genName(gen), w),
						Bytes:         size.bytes,
						Captures:      captures,
						Workers:       w,
						NoiseGen:      gen,
						NsPerOp:       nsop,
						BPerOp:        res.AllocedBytesPerOp(),
						AllocsOp:      res.AllocsPerOp(),
						MBPerSec:      float64(size.bytes*captures) / nsop * 1e3,
						LegacyNsPerOp: float64(legacy.NsPerOp()),
						Speedup:       float64(legacy.NsPerOp()) / nsop,
					})
				}
			}
		}
	}

	// --- power-on grid: size × NoiseGen (full power-cycle races) ----------
	for _, size := range sizes {
		legacyArr, err := newArray(size.bytes, 1, sram.NoiseGenBoxMuller)
		if err != nil {
			fail(err)
		}
		legacy := bench(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				legacyArr.PowerOff(true)
				if _, err := legacyArr.PowerOnReference(25); err != nil {
					b.Fatal(err)
				}
			}
		})
		for _, gen := range []int{sram.NoiseGenBoxMuller, sram.NoiseGenZiggurat} {
			a, err := newArray(size.bytes, 0, gen)
			if err != nil {
				fail(err)
			}
			res := bench(func(b *testing.B) {
				b.SetBytes(int64(size.bytes))
				for i := 0; i < b.N; i++ {
					if _, err := a.PowerCycle(25); err != nil {
						b.Fatal(err)
					}
				}
			})
			nsop := float64(res.NsPerOp())
			emit(&report.PowerOn, benchPoint{
				Name:          fmt.Sprintf("%s/%s", size.name, genName(gen)),
				Bytes:         size.bytes,
				NoiseGen:      gen,
				NsPerOp:       nsop,
				BPerOp:        res.AllocedBytesPerOp(),
				AllocsOp:      res.AllocsPerOp(),
				MBPerSec:      float64(size.bytes) / nsop * 1e3,
				LegacyNsPerOp: float64(legacy.NsPerOp()),
				Speedup:       float64(legacy.NsPerOp()) / nsop,
			})
		}
	}

	// --- stress grid: the aging hot loop (BENCH_3 never measured it) ------
	for _, size := range sizes {
		cond := analog.Conditions{VoltageV: 3.3, TempC: 85}
		legacyArr, err := newArray(size.bytes, 1, sram.NoiseGenZiggurat)
		if err != nil {
			fail(err)
		}
		legacy := bench(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := legacyArr.StressReference(cond, 0.1); err != nil {
					b.Fatal(err)
				}
			}
		})
		a, err := newArray(size.bytes, 0, sram.NoiseGenZiggurat)
		if err != nil {
			fail(err)
		}
		res := bench(func(b *testing.B) {
			b.SetBytes(int64(size.bytes))
			for i := 0; i < b.N; i++ {
				if err := a.Stress(cond, 0.1); err != nil {
					b.Fatal(err)
				}
			}
		})
		nsop := float64(res.NsPerOp())
		emit(&report.Stress, benchPoint{
			Name:          fmt.Sprintf("%s/stress", size.name),
			Bytes:         size.bytes,
			NsPerOp:       nsop,
			BPerOp:        res.AllocedBytesPerOp(),
			AllocsOp:      res.AllocsPerOp(),
			MBPerSec:      float64(size.bytes) / nsop * 1e3,
			LegacyNsPerOp: float64(legacy.NsPerOp()),
			Speedup:       float64(legacy.NsPerOp()) / nsop,
		})
	}

	// --- prune-ratio grid: capture cost vs imprint depth ------------------
	// Clean silicon already prunes ~75% of cells (P(|N(0,30σmv)| > 8·1.2mv)).
	// Encoding soaks push the ratio toward 1 and the capture cost toward
	// pure memory traffic.
	for _, soak := range []float64{0, 1, 10} {
		a, err := newArray(64<<10, 0, sram.NoiseGenZiggurat)
		if err != nil {
			fail(err)
		}
		if err := imprint(a, soak); err != nil {
			fail(err)
		}
		frac, err := a.DeterministicFrac(25)
		if err != nil {
			fail(err)
		}
		res := bench(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := a.CaptureVotes(25, 25); err != nil {
					b.Fatal(err)
				}
			}
		})
		emit(&report.PruneRatio, benchPoint{
			Name:      fmt.Sprintf("64KiB/25cap/soak%vh", soak),
			Bytes:     64 << 10,
			Captures:  25,
			NoiseGen:  sram.NoiseGenZiggurat,
			NsPerOp:   float64(res.NsPerOp()),
			BPerOp:    res.AllocedBytesPerOp(),
			AllocsOp:  res.AllocsPerOp(),
			PruneFrac: frac,
		})
	}

	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fail(err)
	}
	if err := ioatomic.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
		fail(err)
	}
	fmt.Println("wrote", *out)
}
