// Kernel-grid mode (-kernel / -quick): benchmarks the word-parallel
// capture engine against the two earlier generations of the same
// computation and records the trajectory as BENCH_6.json.
//
// Three engines, one contract:
//
//   - kernel     — Array.CaptureVotes: deterministic planes, packed
//     AVX-512 residue races, bit-sliced counters (kernel.go).
//   - scalar     — Array.CaptureVotesScalar: the BENCH_4-era engine
//     (pruned, hoisted bias, one draw at a time).
//   - reference  — Array.CaptureVotesReference: serial, unpruned,
//     per-cell oracle.
//
// Before timing, all three are required to agree bit for bit — votes,
// data plane and power-on counter — across worker counts, noise-plane
// versions and imprint depths. The steady-state batch-decode rows are
// additionally gated on zero allocations per burst: a receiver decoding
// a stream of devices reuses its buffers and the kernel must not touch
// the heap. Either gate failing aborts the run, so a BENCH_6.json with
// "captures_bit_identical": true is itself the equivalence certificate.
//
// When BENCH_4.json is present its capture rows are joined by grid-point
// name, and speedup_vs_bench4 records the generation-over-generation
// gain on identical hardware.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"invisiblebits/internal/ioatomic"
	"invisiblebits/internal/sram"
)

type kernelPoint struct {
	Name     string  `json:"name"`
	Bytes    int     `json:"array_bytes"`
	Captures int     `json:"captures"`
	Workers  int     `json:"workers"`
	NoiseGen int     `json:"noise_gen"`
	NsPerOp  float64 `json:"ns_per_op"`
	BPerOp   int64   `json:"bytes_per_op"`
	AllocsOp int64   `json:"allocs_per_op"`
	MBPerSec float64 `json:"mb_per_sec,omitempty"`
	// ScalarNsPerOp is the BENCH_4-era pruned scalar engine
	// (CaptureVotesScalar) at one worker on the same grid point.
	ScalarNsPerOp   float64 `json:"scalar_ns_per_op,omitempty"`
	SpeedupVsScalar float64 `json:"speedup_vs_scalar,omitempty"`
	// RefNsPerOp is the serial unpruned oracle (CaptureVotesReference).
	RefNsPerOp   float64 `json:"reference_ns_per_op,omitempty"`
	SpeedupVsRef float64 `json:"speedup_vs_reference,omitempty"`
	// Bench4NsPerOp is this grid point's ns/op as recorded in
	// BENCH_4.json on this host, when that file is present.
	Bench4NsPerOp   float64 `json:"bench4_ns_per_op,omitempty"`
	SpeedupVsBench4 float64 `json:"speedup_vs_bench4,omitempty"`
}

type kernelReport struct {
	Schema     string `json:"schema"`
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Quick      bool   `json:"quick,omitempty"`
	// Equivalent: kernel, scalar and reference engines produced
	// bit-identical votes, data planes and counter consumption across
	// the checked grid, and the batch-decode rows allocated nothing.
	Equivalent  bool          `json:"captures_bit_identical"`
	Capture     []kernelPoint `json:"kernel_capture_grid"`
	BatchDecode []kernelPoint `json:"batch_decode_grid"`
}

// checkKernelEquivalence is the gate the v6 numbers rest on: for both
// noise-plane versions, clean and heavily-imprinted silicon, remanent
// and discharged entry, every worker count's kernel burst must match
// the scalar engine and the serial unpruned reference bit for bit —
// votes, final data plane, and power-on counter consumption.
func checkKernelEquivalence(workerGrid []int) error {
	const bytes = 4 << 10
	for _, gen := range []int{sram.NoiseGenBoxMuller, sram.NoiseGenZiggurat} {
		for _, soak := range []float64{0, 10} {
			for _, remanent := range []bool{false, true} {
				mk := func(w int) (*sram.Array, error) {
					a, err := newArray(bytes, w, gen)
					if err != nil {
						return nil, err
					}
					if err := imprint(a, soak); err != nil {
						return nil, err
					}
					if remanent {
						a.PowerOff(false) // retained charge: capture 1 is free
					} else {
						a.PowerOff(true)
					}
					return a, nil
				}
				ref, err := mk(1)
				if err != nil {
					return err
				}
				wantVotes, err := ref.CaptureVotesReference(5, 25)
				if err != nil {
					return err
				}
				wantData, err := ref.Read()
				if err != nil {
					return err
				}
				scal, err := mk(1)
				if err != nil {
					return err
				}
				scalVotes, err := scal.CaptureVotesScalar(5, 25)
				if err != nil {
					return err
				}
				for i := range wantVotes {
					if scalVotes[i] != wantVotes[i] {
						return fmt.Errorf("gen=%d soak=%vh rem=%v scalar: cell %d votes %d, reference %d",
							gen, soak, remanent, i, scalVotes[i], wantVotes[i])
					}
				}
				for _, w := range workerGrid {
					a, err := mk(w)
					if err != nil {
						return err
					}
					got, err := a.CaptureVotes(5, 25)
					if err != nil {
						return err
					}
					for i := range wantVotes {
						if got[i] != wantVotes[i] {
							return fmt.Errorf("gen=%d soak=%vh rem=%v workers=%d: cell %d votes %d, reference %d",
								gen, soak, remanent, w, i, got[i], wantVotes[i])
						}
					}
					data, err := a.Read()
					if err != nil {
						return err
					}
					for i := range wantData {
						if data[i] != wantData[i] {
							return fmt.Errorf("gen=%d soak=%vh rem=%v workers=%d: data byte %d %02x, reference %02x",
								gen, soak, remanent, w, i, data[i], wantData[i])
						}
					}
					if a.PowerOnCount() != ref.PowerOnCount() {
						return fmt.Errorf("gen=%d soak=%vh rem=%v workers=%d: counter %d, reference %d",
							gen, soak, remanent, w, a.PowerOnCount(), ref.PowerOnCount())
					}
				}
			}
		}
	}
	return nil
}

// loadBench4Capture joins BENCH_4.json's capture rows by grid-point
// name so v6 can report the generation-over-generation speedup
// measured on the same host. Absent or unreadable files just disable
// the join — the kernel grid stands on its own baselines.
func loadBench4Capture(path string) map[string]float64 {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var prior struct {
		Capture []benchPoint `json:"capture_grid"`
	}
	if err := json.Unmarshal(blob, &prior); err != nil {
		return nil
	}
	rows := make(map[string]float64, len(prior.Capture))
	for _, p := range prior.Capture {
		rows[p.Name] = p.NsPerOp
	}
	return rows
}

func runKernelBench(path string, workerGrid []int, quick bool) {
	if err := checkKernelEquivalence(workerGrid); err != nil {
		fail(fmt.Errorf("kernel equivalence check failed: %w", err))
	}
	fmt.Println("equivalence gates passed: kernel == scalar == reference (votes, data, counters)")

	report := kernelReport{
		Schema:     "invisiblebits/bench/v6",
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Quick:      quick,
		Equivalent: true,
	}
	bench4 := loadBench4Capture("BENCH_4.json")

	emit := func(dst *[]kernelPoint, pt kernelPoint) {
		*dst = append(*dst, pt)
		fmt.Printf("%-26s %14.0f ns/op %3d allocs %8.2fx scalar %8.2fx ref\n",
			pt.Name, pt.NsPerOp, pt.AllocsOp, pt.SpeedupVsScalar, pt.SpeedupVsRef)
	}

	kernelSizes := sizes
	captureGrid := []int{5, 25}
	if quick {
		kernelSizes = kernelSizes[:1] // 4KiB
		captureGrid = []int{5}
	}

	// --- kernel capture grid: size × captures × NoiseGen × workers --------
	// The scalar and reference baselines are timed once per
	// (size, captures, gen) at one worker; kernel rows across the worker
	// grid share them, so every speedup is within-generation and
	// within-noise-plane on identical hardware.
	for _, size := range kernelSizes {
		for _, captures := range captureGrid {
			captures := captures
			for _, gen := range []int{sram.NoiseGenBoxMuller, sram.NoiseGenZiggurat} {
				scalArr, err := newArray(size.bytes, 1, gen)
				if err != nil {
					fail(err)
				}
				scalar := bench(func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						if _, err := scalArr.CaptureVotesScalar(captures, 25); err != nil {
							b.Fatal(err)
						}
					}
				})
				refArr, err := newArray(size.bytes, 1, gen)
				if err != nil {
					fail(err)
				}
				ref := bench(func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						if _, err := refArr.CaptureVotesReference(captures, 25); err != nil {
							b.Fatal(err)
						}
					}
				})
				for _, w := range workerGrid {
					a, err := newArray(size.bytes, w, gen)
					if err != nil {
						fail(err)
					}
					res := bench(func(b *testing.B) {
						b.SetBytes(int64(size.bytes * captures))
						for i := 0; i < b.N; i++ {
							if _, err := a.CaptureVotes(captures, 25); err != nil {
								b.Fatal(err)
							}
						}
					})
					nsop := float64(res.NsPerOp())
					name := fmt.Sprintf("%s/%dcap/%s/%dw", size.name, captures, genName(gen), w)
					pt := kernelPoint{
						Name:            name,
						Bytes:           size.bytes,
						Captures:        captures,
						Workers:         w,
						NoiseGen:        gen,
						NsPerOp:         nsop,
						BPerOp:          res.AllocedBytesPerOp(),
						AllocsOp:        res.AllocsPerOp(),
						MBPerSec:        float64(size.bytes*captures) / nsop * 1e3,
						ScalarNsPerOp:   float64(scalar.NsPerOp()),
						SpeedupVsScalar: float64(scalar.NsPerOp()) / nsop,
						RefNsPerOp:      float64(ref.NsPerOp()),
						SpeedupVsRef:    float64(ref.NsPerOp()) / nsop,
					}
					if prior, ok := bench4[name]; ok {
						pt.Bench4NsPerOp = prior
						pt.SpeedupVsBench4 = prior / nsop
					}
					emit(&report.Capture, pt)
				}
			}
		}
	}

	// --- steady-state batch decode: Into variants, reused buffers ---------
	// One worker, one pre-sized buffer, burst after burst — the receiver's
	// decode loop. Gated on zero allocations per op: the kernel's layout,
	// scratch and vote slices are cached on the array and a warm burst
	// must never touch the heap.
	for _, size := range kernelSizes {
		for _, captures := range captureGrid {
			a, err := newArray(size.bytes, 1, sram.NoiseGenZiggurat)
			if err != nil {
				fail(err)
			}
			votes := make([]uint16, a.Cells())
			if err := a.CaptureVotesInto(context.Background(), captures, 25, votes); err != nil {
				fail(err) // warm the kernel layout outside the timed loop
			}
			res := bench(func(b *testing.B) {
				b.SetBytes(int64(size.bytes * captures))
				for i := 0; i < b.N; i++ {
					if err := a.CaptureVotesInto(context.Background(), captures, 25, votes); err != nil {
						b.Fatal(err)
					}
				}
			})
			if res.AllocsPerOp() != 0 {
				fail(fmt.Errorf("steady-state batch decode %s/%dcap allocated %d objects/op, want 0",
					size.name, captures, res.AllocsPerOp()))
			}
			nsop := float64(res.NsPerOp())
			emit(&report.BatchDecode, kernelPoint{
				Name:     fmt.Sprintf("%s/%dcap/votes-into", size.name, captures),
				Bytes:    size.bytes,
				Captures: captures,
				Workers:  1,
				NoiseGen: sram.NoiseGenZiggurat,
				NsPerOp:  nsop,
				BPerOp:   res.AllocedBytesPerOp(),
				AllocsOp: res.AllocsPerOp(),
				MBPerSec: float64(size.bytes*captures) / nsop * 1e3,
			})
		}
	}

	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fail(err)
	}
	if err := ioatomic.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		fail(err)
	}
	fmt.Println("wrote", path)
}
