package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"invisiblebits/internal/campaign"
	"invisiblebits/internal/ioatomic"
	"invisiblebits/internal/sched"
	"invisiblebits/internal/stegocrypt"
)

// schedBenchPoint is one scheduler run: a tenancy level with batching
// on or off, measured in both simulated chamber time (the economics)
// and wall-clock time (the implementation).
type schedBenchPoint struct {
	Tenants  int  `json:"tenants"`
	Batching bool `json:"batching"`

	Done   int `json:"done"`
	Failed int `json:"failed"`

	// ChamberHours is total simulated chamber occupancy; the headline
	// is the batched column being a small fraction of the unbatched one
	// at the same tenancy.
	ChamberHours  float64 `json:"chamber_hours"`
	Passes        int     `json:"passes"`
	BatchedSlices int     `json:"batched_slices"`

	CampaignsPerChamberHour float64 `json:"campaigns_per_chamber_hour"`
	// LatencyP50/P99 are submission-to-completion latencies in
	// simulated chamber hours (queue wait included).
	LatencyP50 float64 `json:"latency_p50_hours"`
	LatencyP99 float64 `json:"latency_p99_hours"`

	WallSeconds float64 `json:"wall_seconds"`
}

type schedBenchReport struct {
	Schema     string `json:"schema"`
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Notes records the workload shape: every campaign is one
	// MSP430G2553 board soaking one 2.5 h slice at the shared operating
	// point, journal fsync disabled (NoSync) so the numbers measure
	// scheduling, not disk.
	Notes  string            `json:"notes"`
	Points []schedBenchPoint `json:"points"`
	// ChamberHoursSaved maps "<tenants>" to the fraction of chamber
	// time batching saved at that tenancy level.
	ChamberHoursSaved map[string]float64 `json:"chamber_hours_saved_frac"`
}

// runSchedBench measures the multi-tenant scheduler at 1k and 10k
// tenants, batching on and off, and writes BENCH_5.json. Simulated
// chamber hours carry the economics claim (shared passes amortize the
// soak), wall seconds show the scheduler itself keeps up.
func runSchedBench(out string, tenantGrid []int) {
	benchKey := stegocrypt.KeyFromPassphrase("ibbench-sched")
	keyFor := func(string, string) *stegocrypt.Key { return &benchKey }

	report := schedBenchReport{
		Schema:     "invisiblebits/bench/v5",
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Notes: "one MSP430G2553 board per campaign, one 2.5h slice, shared (3.6V, 85C) operating point, " +
			"16 chamber slots, journal NoSync",
		ChamberHoursSaved: map[string]float64{},
	}

	for _, n := range tenantGrid {
		var hours [2]float64
		for _, batching := range []bool{true, false} {
			dir, err := os.MkdirTemp("", "ibbench-sched-")
			if err != nil {
				fail(err)
			}
			pt, err := schedBenchRun(dir, n, batching, keyFor)
			os.RemoveAll(dir)
			if err != nil {
				fail(err)
			}
			report.Points = append(report.Points, pt)
			if batching {
				hours[0] = pt.ChamberHours
			} else {
				hours[1] = pt.ChamberHours
			}
			fmt.Printf("sched %6d tenants batching=%-5v %10.1f chamber h  p99 %8.1f h  %6.1f s wall\n",
				n, batching, pt.ChamberHours, pt.LatencyP99, pt.WallSeconds)
		}
		saved := 1 - hours[0]/hours[1]
		report.ChamberHoursSaved[fmt.Sprintf("%d", n)] = saved
		fmt.Printf("sched %6d tenants: batching saves %.0f%% of chamber time\n", n, 100*saved)
	}

	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fail(err)
	}
	if err := ioatomic.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %s\n", out)
}

func schedBenchRun(dir string, tenants int, batching bool, keyFor func(string, string) *stegocrypt.Key) (schedBenchPoint, error) {
	s, err := sched.New(dir, sched.Config{
		KeyFor:          keyFor,
		MaxQueued:       tenants,
		DisableBatching: !batching,
		NoSync:          true,
	})
	if err != nil {
		return schedBenchPoint{}, err
	}
	start := time.Now()
	for i := 0; i < tenants; i++ {
		sub := sched.Submission{
			Tenant: fmt.Sprintf("tenant-%05d", i),
			Spec: campaign.Spec{
				ID:          fmt.Sprintf("bench-%05d", i),
				Model:       "MSP430G2553",
				Serials:     []string{fmt.Sprintf("bch%05d", i)},
				Message:     []byte("bench payload"),
				StressHours: 2.5,
				SliceHours:  2.5,
			},
		}
		if err := s.Submit(sub); err != nil {
			return schedBenchPoint{}, fmt.Errorf("submit %d: %w", i, err)
		}
	}
	if err := s.Drain(context.Background()); err != nil {
		return schedBenchPoint{}, err
	}
	wall := time.Since(start).Seconds()
	st := s.Status()
	if st.Done != tenants || st.Failed != 0 {
		return schedBenchPoint{}, fmt.Errorf("bench run finished %d/%d campaigns (%d failed)", st.Done, tenants, st.Failed)
	}
	return schedBenchPoint{
		Tenants:                 tenants,
		Batching:                batching,
		Done:                    st.Done,
		Failed:                  st.Failed,
		ChamberHours:            st.ChamberHours,
		Passes:                  st.Passes,
		BatchedSlices:           st.BatchedSlices,
		CampaignsPerChamberHour: st.CampaignsPerChamberHour,
		LatencyP50:              st.LatencyP50,
		LatencyP99:              st.LatencyP99,
		WallSeconds:             wall,
	}, nil
}
