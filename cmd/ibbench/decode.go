// Decode-grid mode (-decodegrid): benchmarks the word-parallel decode
// pipeline — vote counters to verified plaintext — against the retained
// scalar decoders and records the trajectory as BENCH_7.json.
//
// Layers under test, one contract:
//
//   - ecc.Pipeline    — LUT Hamming(7,4), bit-sliced repetition
//     majority, cached interleave permutations, zero-alloc scratch.
//   - core.DecodeArena — the fused decode tail: branchless
//     hard-decision, cached CTR keystream, compiled pipeline, alloc-free
//     digest verify.
//   - stats plane kernels — packed Moran's I and vote-histogram health
//     aggregation, the fleet-sweep statistics.
//
// Before timing, equivalence is gated: every pipeline decode must be
// bit-identical to ecc.DecodeScalar (the pre-pipeline implementation,
// retained verbatim), the arena tail must reproduce the scalar tail's
// plaintext exactly, and an arena-backed adaptive decode must produce a
// deeply equal DecodeReport to the plain path. Warm arena decodes are
// additionally gated on zero allocations per op. Either gate failing
// aborts the run, so a BENCH_7.json with "decode_bit_identical": true
// is itself the equivalence certificate. The scalar ns/op recorded in
// every row is the pre-PR baseline timed on the same host in the same
// process.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"invisiblebits/internal/core"
	"invisiblebits/internal/device"
	"invisiblebits/internal/ecc"
	"invisiblebits/internal/faults"
	"invisiblebits/internal/ioatomic"
	"invisiblebits/internal/rig"
	"invisiblebits/internal/rng"
	"invisiblebits/internal/stats"
	"invisiblebits/internal/stegocrypt"
)

type decodePoint struct {
	Name     string  `json:"name"`
	MsgBytes int     `json:"message_bytes,omitempty"`
	Payload  int     `json:"payload_bytes,omitempty"`
	Cells    int     `json:"cells,omitempty"`
	Workers  int     `json:"workers,omitempty"`
	NsPerOp  float64 `json:"ns_per_op"`
	BPerOp   int64   `json:"bytes_per_op"`
	AllocsOp int64   `json:"allocs_per_op"`
	MBPerSec float64 `json:"mb_per_sec,omitempty"`
	// ScalarNsPerOp is the pre-pipeline scalar implementation timed on
	// the same host for the same row — the pre-PR baseline.
	ScalarNsPerOp   float64 `json:"scalar_ns_per_op,omitempty"`
	SpeedupVsScalar float64 `json:"speedup_vs_scalar,omitempty"`
}

type decodeReport struct {
	Schema     string `json:"schema"`
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Quick      bool   `json:"quick,omitempty"`
	// Equivalent: every pipeline/arena decode was bit-identical to the
	// scalar chain (plaintext, unresolved masks, errors, adaptive
	// reports). Checked before any timing.
	Equivalent bool `json:"decode_bit_identical"`
	// ZeroAlloc: warm arena decodes and warm pipeline decodes performed
	// zero heap allocations per op.
	ZeroAlloc  bool          `json:"warm_decode_zero_alloc"`
	DecodeTail []decodePoint `json:"decode_tail_grid"`
	VotesTail  []decodePoint `json:"votes_tail_grid"`
	Workers    []decodePoint `json:"decode_workers_grid"`
	SweepStats []decodePoint `json:"sweep_stats_grid"`
}

// decodeCodecs is the benched codec ladder: the bare Hamming code, the
// paper's concatenation (Hamming(7,4) over 7-way repetition), and the
// full interleaved stack the 5× gate targets.
func decodeCodecs() []ecc.Codec {
	rep7, err := ecc.NewRepetition(7)
	if err != nil {
		fail(err)
	}
	inner := ecc.Composite{Outer: ecc.Hamming74{}, Inner: rep7}
	return []ecc.Codec{
		ecc.Hamming74{},
		inner,
		ecc.Interleaver{Depth: 8, Next: inner},
	}
}

// msgBytesForPayload returns the largest message size whose coded form
// fits in target payload bytes.
func msgBytesForPayload(c ecc.Codec, target int) int {
	m := 1
	for c.EncodedLen(m+1) <= target {
		m++
	}
	return m
}

// scalarVotesTail is the pre-PR decode tail reproduced from exported
// pieces: per-bit hard decision (payload bit set iff 2·votes < total),
// allocate-and-decrypt via StreamXOR, scalar ECC decode, digest verify.
// The equivalence gate proves it agrees with the arena tail before
// either is timed.
func scalarVotesTail(rec *core.Record, codec ecc.Codec, votes []uint16, total int, key *stegocrypt.Key) ([]byte, error) {
	payload := make([]byte, rec.PayloadBytes)
	for i := 0; i < rec.PayloadBytes*8; i++ {
		if 2*int(votes[i]) < total {
			payload[i/8] |= 1 << (i % 8)
		}
	}
	if rec.Encrypted {
		var err error
		payload, err = stegocrypt.StreamXOR(*key, rec.DeviceID, payload)
		if err != nil {
			return nil, err
		}
	}
	codedLen := codec.EncodedLen(rec.MessageBytes)
	msg, err := ecc.DecodeScalar(codec, payload[:codedLen], rec.MessageBytes)
	if err != nil {
		return nil, err
	}
	if rec.HasDigest() {
		if err := rec.VerifyMessage(msg, key); err != nil {
			return nil, err
		}
	}
	return msg, nil
}

// decodeRig encodes a message filling an sramBytes device and samples a
// capture burst, returning everything the tail rows need.
func decodeRig(serial string, sramBytes int, codec ecc.Codec, key *stegocrypt.Key) (*core.Record, []uint16, core.Options, error) {
	m, err := device.ByName("MSP432P401")
	if err != nil {
		return nil, nil, core.Options{}, err
	}
	d, err := device.New(m, serial, device.WithSRAMLimit(sramBytes))
	if err != nil {
		return nil, nil, core.Options{}, err
	}
	r := rig.New(d)
	opts := core.Options{Codec: codec, Key: key}
	msgBytes := core.MaxMessageBytes(sramBytes, codec)
	msg := make([]byte, msgBytes)
	rng.NewSource(benchSeed).Bytes(msg)
	rec, err := core.Encode(r, msg, opts)
	if err != nil {
		return nil, nil, core.Options{}, err
	}
	votes, err := r.SampleVotes(core.DefaultCaptures)
	if err != nil {
		return nil, nil, core.Options{}, err
	}
	return rec, votes, opts, nil
}

// checkDecodeEquivalence is the gate the v7 numbers rest on.
func checkDecodeEquivalence() error {
	// ECC layer: pipeline == scalar on clean codewords, corrupted
	// codewords and arbitrary garbage, and the erasure fast paths agree
	// with the scalar erasure oracle, across word-boundary sizes.
	src := rng.NewSource(benchSeed)
	for _, codec := range decodeCodecs() {
		p := ecc.NewPipeline(codec)
		for _, msgBytes := range []int{1, 7, 8, 9, 64, 65, 257} {
			payload := make([]byte, codec.EncodedLen(msgBytes))
			for trial := 0; trial < 6; trial++ {
				if trial < 3 {
					msg := make([]byte, msgBytes)
					src.Bytes(msg)
					coded, err := codec.Encode(msg)
					if err != nil {
						return err
					}
					copy(payload, coded)
					for f := 0; f < trial*len(payload)/4; f++ {
						bit := src.Intn(len(payload) * 8)
						payload[bit/8] ^= 1 << (bit % 8)
					}
				} else {
					src.Bytes(payload)
				}
				want, wantErr := ecc.DecodeScalar(codec, payload, msgBytes)
				got, gotErr := codec.Decode(payload, msgBytes)
				if (gotErr == nil) != (wantErr == nil) || !bytes.Equal(got, want) {
					return fmt.Errorf("%s/%dB: Decode diverges from scalar", codec.Name(), msgBytes)
				}
				dst := make([]byte, msgBytes)
				if err := p.DecodeInto(dst, payload, msgBytes); err != nil || !bytes.Equal(dst, want) {
					return fmt.Errorf("%s/%dB: pipeline diverges from scalar (err %v)", codec.Name(), msgBytes, err)
				}
				if dec, ok := codec.(ecc.ErasureDecoder); ok {
					mask := make([]bool, len(payload)*8)
					for i := range mask {
						mask[i] = src.Intn(4) == 0
					}
					wm, wu, we := ecc.DecodeErasureScalar(codec, payload, mask, msgBytes)
					gm, gu, ge := dec.DecodeErasure(payload, mask, msgBytes)
					if (ge == nil) != (we == nil) || !bytes.Equal(gm, wm) || !reflect.DeepEqual(gu, wu) {
						return fmt.Errorf("%s/%dB: erasure decode diverges from scalar", codec.Name(), msgBytes)
					}
				}
			}
		}
	}

	// Core tail: the arena's fused votes→plaintext must reproduce the
	// scalar tail exactly, encrypted (HMAC digest) and plain (CRC).
	key := stegocrypt.KeyFromPassphrase("bench7-tail")
	codec := decodeCodecs()[2]
	for _, enc := range []struct {
		name string
		key  *stegocrypt.Key
	}{{"hmac", &key}, {"crc", nil}} {
		rec, votes, opts, err := decodeRig("bench7-eq-"+enc.name, 4<<10, codec, enc.key)
		if err != nil {
			return err
		}
		want, err := scalarVotesTail(rec, codec, votes, core.DefaultCaptures, enc.key)
		if err != nil {
			return fmt.Errorf("scalar tail (%s): %w", enc.name, err)
		}
		arena := core.NewDecodeArena()
		for rep := 0; rep < 3; rep++ { // warm reuse must stay identical
			got, err := arena.DecodeVotes(rec, votes, core.DefaultCaptures, opts)
			if err != nil {
				return fmt.Errorf("arena tail (%s): %w", enc.name, err)
			}
			if !bytes.Equal(got, want) {
				return fmt.Errorf("arena tail (%s) diverges from scalar tail", enc.name)
			}
		}
	}

	// Adaptive ladder: arena-backed and plain decodes of twin hostile
	// rigs must agree on plaintext AND the full DecodeReport.
	run := func(withArena bool) ([]byte, *core.DecodeReport, error) {
		m, err := device.ByName("MSP432P401")
		if err != nil {
			return nil, nil, err
		}
		d, err := device.New(m, "bench7-ladder", device.WithSRAMLimit(4<<10))
		if err != nil {
			return nil, nil, err
		}
		r := rig.New(d, rig.WithInjector(faults.New(faults.Profile{Seed: 7, WeakFrac: 0.14}, d.Serial)))
		opts := core.Options{Codec: decodeCodecs()[1], Key: &key, StressHours: 14}
		msg := make([]byte, 192)
		rng.NewSource(benchSeed + 1).Bytes(msg)
		rec, err := core.Encode(r, msg, opts)
		if err != nil {
			return nil, nil, err
		}
		if err := r.ShelveFor(2 * 365 * 24); err != nil {
			return nil, nil, err
		}
		if withArena {
			opts.Arena = core.NewDecodeArena()
		}
		got, rep, err := core.DecodeAdaptive(context.Background(), r, rec, core.AdaptiveOptions{Options: opts})
		if err != nil {
			return nil, nil, err
		}
		out := make([]byte, len(got))
		copy(out, got)
		return out, rep, nil
	}
	plainMsg, plainRep, err := run(false)
	if err != nil {
		return fmt.Errorf("adaptive plain: %w", err)
	}
	arenaMsg, arenaRep, err := run(true)
	if err != nil {
		return fmt.Errorf("adaptive arena: %w", err)
	}
	if !bytes.Equal(plainMsg, arenaMsg) || !reflect.DeepEqual(plainRep, arenaRep) {
		return fmt.Errorf("arena-backed adaptive decode diverges (report or plaintext)")
	}

	// Sweep stats: packed Moran agrees with the expanded oracle to
	// float rounding, health tables are exact by construction (gated in
	// the unit suite).
	snap := make([]byte, 8<<10)
	rng.NewSource(benchSeed + 2).Bytes(snap)
	rows, cols := 256, len(snap)*8/256
	want, err := stats.MoranIBits(expandPlane(snap), rows, cols)
	if err != nil {
		return err
	}
	got, err := stats.MoranIPacked(snap, rows, cols)
	if err != nil {
		return err
	}
	if rel := math.Abs(got.I-want.I) / math.Max(math.Abs(want.I), 1e-9); rel > 1e-9 {
		return fmt.Errorf("packed Moran I %v vs expanded %v (rel %v)", got.I, want.I, rel)
	}
	return nil
}

// checkDecodeZeroAlloc gates the warm paths on zero allocations per op.
func checkDecodeZeroAlloc() error {
	for _, codec := range decodeCodecs() {
		const msgBytes = 257
		p := ecc.NewPipeline(codec)
		payload := make([]byte, codec.EncodedLen(msgBytes))
		dst := make([]byte, msgBytes)
		if err := p.DecodeInto(dst, payload, msgBytes); err != nil {
			return err
		}
		if n := testing.AllocsPerRun(50, func() {
			if err := p.DecodeInto(dst, payload, msgBytes); err != nil {
				panic(err)
			}
		}); n != 0 {
			return fmt.Errorf("warm pipeline decode of %s allocates %.1f objects/op, want 0", codec.Name(), n)
		}
	}
	key := stegocrypt.KeyFromPassphrase("bench7-alloc")
	rec, votes, opts, err := decodeRig("bench7-alloc", 4<<10, decodeCodecs()[2], &key)
	if err != nil {
		return err
	}
	arena := core.NewDecodeArena()
	if _, err := arena.DecodeVotes(rec, votes, core.DefaultCaptures, opts); err != nil {
		return err
	}
	if n := testing.AllocsPerRun(50, func() {
		if _, err := arena.DecodeVotes(rec, votes, core.DefaultCaptures, opts); err != nil {
			panic(err)
		}
	}); n != 0 {
		return fmt.Errorf("warm arena DecodeVotes allocates %.1f objects/op, want 0", n)
	}
	return nil
}

func expandPlane(snap []byte) []byte {
	out := make([]byte, len(snap)*8)
	for i := range out {
		if snap[i/8]&(1<<(i%8)) != 0 {
			out[i] = 1
		}
	}
	return out
}

func runDecodeBench(path string, workerGrid []int, quick bool) {
	if err := checkDecodeEquivalence(); err != nil {
		fail(fmt.Errorf("decode equivalence check failed: %w", err))
	}
	fmt.Println("equivalence gates passed: pipeline == scalar (plaintext, erasures, adaptive reports)")
	if err := checkDecodeZeroAlloc(); err != nil {
		fail(fmt.Errorf("zero-alloc gate failed: %w", err))
	}
	fmt.Println("zero-alloc gates passed: warm pipeline and arena decodes do not touch the heap")

	report := decodeReport{
		Schema:     "invisiblebits/bench/v7",
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Quick:      quick,
		Equivalent: true,
		ZeroAlloc:  true,
	}
	emit := func(dst *[]decodePoint, pt decodePoint) {
		*dst = append(*dst, pt)
		fmt.Printf("%-38s %12.0f ns/op %3d allocs %10.0f scalar %7.2fx\n",
			pt.Name, pt.NsPerOp, pt.AllocsOp, pt.ScalarNsPerOp, pt.SpeedupVsScalar)
	}
	if quick {
		// CI smoke: the gates above are the point; write the
		// certificate without the timing grids.
		writeDecodeReport(path, &report)
		return
	}

	payloadTargets := []struct {
		name  string
		bytes int
	}{{"4KiB", 4 << 10}, {"64KiB", 64 << 10}}

	// --- decode tail grid: codec × payload size, pipeline vs scalar -------
	src := rng.NewSource(benchSeed + 3)
	var headline float64
	for _, codec := range decodeCodecs() {
		for _, target := range payloadTargets {
			msgBytes := msgBytesForPayload(codec, target.bytes)
			msg := make([]byte, msgBytes)
			src.Bytes(msg)
			payload, err := codec.Encode(msg)
			if err != nil {
				fail(err)
			}
			for f := 0; f < len(payload)/100; f++ { // ~1% channel error
				bit := src.Intn(len(payload) * 8)
				payload[bit/8] ^= 1 << (bit % 8)
			}
			scalar := bench(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := ecc.DecodeScalar(codec, payload, msgBytes); err != nil {
						b.Fatal(err)
					}
				}
			})
			p := ecc.NewPipeline(codec)
			dst := make([]byte, msgBytes)
			res := bench(func(b *testing.B) {
				b.SetBytes(int64(len(payload)))
				for i := 0; i < b.N; i++ {
					if err := p.DecodeInto(dst, payload, msgBytes); err != nil {
						b.Fatal(err)
					}
				}
			})
			nsop := float64(res.NsPerOp())
			speedup := float64(scalar.NsPerOp()) / nsop
			emit(&report.DecodeTail, decodePoint{
				Name:            fmt.Sprintf("%s/%s/pipeline", target.name, codec.Name()),
				MsgBytes:        msgBytes,
				Payload:         len(payload),
				NsPerOp:         nsop,
				BPerOp:          res.AllocedBytesPerOp(),
				AllocsOp:        res.AllocsPerOp(),
				MBPerSec:        float64(len(payload)) / nsop * 1e3,
				ScalarNsPerOp:   float64(scalar.NsPerOp()),
				SpeedupVsScalar: speedup,
			})
			if target.bytes == 64<<10 && codec.Name() == decodeCodecs()[2].Name() {
				headline = speedup
			}
		}
	}
	if headline < 5 {
		fail(fmt.Errorf("decode-tail gate: 64KiB interleaved stack speedup %.2fx, need >= 5x", headline))
	}

	// --- votes tail grid: full arena tail vs scalar tail ------------------
	key := stegocrypt.KeyFromPassphrase("bench7-votes")
	for _, target := range payloadTargets {
		codec := decodeCodecs()[2]
		rec, votes, opts, err := decodeRig(fmt.Sprintf("bench7-votes-%s", target.name), target.bytes, codec, &key)
		if err != nil {
			fail(err)
		}
		scalar := bench(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := scalarVotesTail(rec, codec, votes, core.DefaultCaptures, &key); err != nil {
					b.Fatal(err)
				}
			}
		})
		arena := core.NewDecodeArena()
		res := bench(func(b *testing.B) {
			b.SetBytes(int64(rec.PayloadBytes))
			for i := 0; i < b.N; i++ {
				if _, err := arena.DecodeVotes(rec, votes, core.DefaultCaptures, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
		nsop := float64(res.NsPerOp())
		emit(&report.VotesTail, decodePoint{
			Name:            fmt.Sprintf("%s/%s/arena-votes-tail", target.name, codec.Name()),
			MsgBytes:        rec.MessageBytes,
			Payload:         rec.PayloadBytes,
			Cells:           len(votes),
			Workers:         1,
			NsPerOp:         nsop,
			BPerOp:          res.AllocedBytesPerOp(),
			AllocsOp:        res.AllocsPerOp(),
			MBPerSec:        float64(rec.PayloadBytes) / nsop * 1e3,
			ScalarNsPerOp:   float64(scalar.NsPerOp()),
			SpeedupVsScalar: float64(scalar.NsPerOp()) / nsop,
		})
	}

	// --- workers grid: fleet receiver, one arena per worker ---------------
	{
		codec := decodeCodecs()[2]
		rec, votes, opts, err := decodeRig("bench7-workers", 64<<10, codec, &key)
		if err != nil {
			fail(err)
		}
		for _, w := range workerGrid {
			w := w
			res := bench(func(b *testing.B) {
				b.SetBytes(int64(rec.PayloadBytes))
				var wg sync.WaitGroup
				per := b.N / w
				extra := b.N % w
				for g := 0; g < w; g++ {
					n := per
					if g < extra {
						n++
					}
					wg.Add(1)
					go func(n int) {
						defer wg.Done()
						arena := core.NewDecodeArena()
						o := opts
						o.Arena = arena
						for i := 0; i < n; i++ {
							if _, err := arena.DecodeVotes(rec, votes, core.DefaultCaptures, o); err != nil {
								panic(err)
							}
						}
					}(n)
				}
				wg.Wait()
			})
			nsop := float64(res.NsPerOp())
			emit(&report.Workers, decodePoint{
				Name:     fmt.Sprintf("64KiB/%s/%dw", codec.Name(), w),
				MsgBytes: rec.MessageBytes,
				Payload:  rec.PayloadBytes,
				Cells:    len(votes),
				Workers:  w,
				NsPerOp:  nsop,
				BPerOp:   res.AllocedBytesPerOp(),
				AllocsOp: res.AllocsPerOp(),
				MBPerSec: float64(rec.PayloadBytes) / nsop * 1e3,
			})
		}
	}

	// --- fleet-sweep stats grid: packed kernels vs expanded loops ---------
	snap := make([]byte, 64<<10)
	rng.NewSource(benchSeed + 4).Bytes(snap)
	rows, cols := 256, len(snap)*8/256
	scalarMoran := bench(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := stats.MoranIBits(expandPlane(snap), rows, cols); err != nil {
				b.Fatal(err)
			}
		}
	})
	packedMoran := bench(func(b *testing.B) {
		b.SetBytes(int64(len(snap)))
		for i := 0; i < b.N; i++ {
			if _, err := stats.MoranIPacked(snap, rows, cols); err != nil {
				b.Fatal(err)
			}
		}
	})
	nsop := float64(packedMoran.NsPerOp())
	moranSpeedup := float64(scalarMoran.NsPerOp()) / nsop
	emit(&report.SweepStats, decodePoint{
		Name:            "64KiB/moran-i/packed",
		Payload:         len(snap),
		Cells:           len(snap) * 8,
		NsPerOp:         nsop,
		BPerOp:          packedMoran.AllocedBytesPerOp(),
		AllocsOp:        packedMoran.AllocsPerOp(),
		MBPerSec:        float64(len(snap)) / nsop * 1e3,
		ScalarNsPerOp:   float64(scalarMoran.NsPerOp()),
		SpeedupVsScalar: moranSpeedup,
	})

	const captures = 15
	cells := len(snap) * 8
	votesPlane := make([]uint16, cells)
	vsrc := rng.NewSource(benchSeed + 5)
	for i := range votesPlane {
		votesPlane[i] = uint16(vsrc.Intn(captures + 1))
	}
	scalarHealth := bench(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var sumM, sumH float64
			weak := 0
			for _, v := range votesPlane {
				p := float64(v) / captures
				m := math.Abs(2*p - 1)
				sumM += m
				sumH += stats.BitEntropy(p)
				if m < rig.WeakCellMargin {
					weak++
				}
			}
			if sumM < 0 || weak < 0 || sumH < 0 {
				b.Fatal("impossible")
			}
		}
	})
	tab := stats.NewVoteTable(captures)
	hist := make([]int, captures+1)
	packedHealth := bench(func(b *testing.B) {
		b.SetBytes(int64(cells))
		for i := 0; i < b.N; i++ {
			tab.Histogram(votesPlane, hist)
			var sumM, sumH float64
			weak := 0
			for v, c := range hist {
				fc := float64(c)
				sumM += fc * tab.Margin[v]
				sumH += fc * tab.Entropy[v]
				if tab.Margin[v] < rig.WeakCellMargin {
					weak += c
				}
			}
			if sumM < 0 || weak < 0 || sumH < 0 {
				b.Fatal("impossible")
			}
		}
	})
	nsop = float64(packedHealth.NsPerOp())
	emit(&report.SweepStats, decodePoint{
		Name:            "64KiB/health-margin/histogram",
		Cells:           cells,
		NsPerOp:         nsop,
		BPerOp:          packedHealth.AllocedBytesPerOp(),
		AllocsOp:        packedHealth.AllocsPerOp(),
		ScalarNsPerOp:   float64(scalarHealth.NsPerOp()),
		SpeedupVsScalar: float64(scalarHealth.NsPerOp()) / nsop,
	})
	if moranSpeedup < 10 {
		fail(fmt.Errorf("sweep-stats gate: packed Moran speedup %.2fx, need >= 10x", moranSpeedup))
	}

	writeDecodeReport(path, &report)
}

func writeDecodeReport(path string, report *decodeReport) {
	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fail(err)
	}
	if err := ioatomic.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		fail(err)
	}
	fmt.Println("wrote", path)
}
