// Command ibdecode extracts a hidden message from a device image (the
// Bob side of Fig. 4): retainer firmware, five power-on captures,
// majority vote, inversion, decryption, ECC decode.
//
// Usage:
//
//	ibdecode -device dev.ibdev -record msg.ibrec -passphrase secret
//	ibdecode -device dev.ibdev -record msg.ibrec -shelve-weeks 4 -out msg.txt
//	ibdecode -device dev.ibdev -record msg.ibrec -passphrase secret -adaptive
//
// -shelve-weeks simulates the time the device spent in transit before
// decoding (natural recovery adds channel error; the ECC absorbs it).
// -adaptive runs the self-verifying escalation ladder instead of one
// fixed-effort decode, printing the rung-by-rung report to stderr.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	ib "invisiblebits"
	"invisiblebits/internal/cliutil"
	"invisiblebits/internal/ioatomic"
)

func main() {
	var (
		devPath     = flag.String("device", "device.ibdev", "device image produced by ibencode")
		recPath     = flag.String("record", "message.ibrec", "record with the pre-shared parameters")
		passphrase  = flag.String("passphrase", "", "pre-shared passphrase (required if the record is encrypted)")
		codecName   = flag.String("codec", "", "override the ECC layer (defaults to the record's)")
		captures    = flag.Int("captures", 0, "power-on captures for majority voting (0 = record default)")
		shelveWeeks = flag.Float64("shelve-weeks", 0, "simulated weeks on the shelf before decoding")
		soft        = flag.Bool("soft", false, "use soft-decision decoding (vote confidences instead of hard majority)")
		adaptive    = flag.Bool("adaptive", false, "self-verifying escalation ladder: cheap hard decode first, escalate to more captures/soft/erasure decode only if the record's digest rejects the result")
		decodeTemp  = flag.Float64("temp", 0, "chamber temperature (°C) during decode (0 = nominal)")
		outFile     = flag.String("out", "", "write the recovered message to this file instead of stdout")
	)
	flag.Parse()

	// LoadDeviceFile and ReadFileSealed verify the sha256 seal footer on
	// sealed artifacts and accept legacy unsealed ones as-is.
	dev, err := ib.LoadDeviceFile(*devPath)
	if err != nil {
		fatal(err)
	}

	recJSON, _, err := ioatomic.ReadFileSealed(nil, *recPath)
	if err != nil {
		fatal(err)
	}
	var rec ib.Record
	if err := json.Unmarshal(recJSON, &rec); err != nil {
		fatal(fmt.Errorf("parsing record: %w", err))
	}

	carrier := ib.NewCarrier(dev)
	if *shelveWeeks > 0 {
		dev.PowerOff(true)
		if err := carrier.Shelve(*shelveWeeks * 7 * 24); err != nil {
			fatal(err)
		}
	}

	opts := ib.Options{Captures: *captures, Soft: *soft, DecodeTempC: *decodeTemp}
	name := rec.CodecName
	if *codecName != "" {
		name = *codecName
	}
	opts.Codec, err = cliutil.ParseCodec(name)
	if err != nil {
		fatal(err)
	}
	if *passphrase != "" {
		key := ib.KeyFromPassphrase(*passphrase)
		opts.Key = &key
	}

	var msg []byte
	if *adaptive {
		var rep *ib.DecodeReport
		msg, rep, err = carrier.RevealAdaptive(&rec, ib.AdaptiveOptions{Options: opts})
		if rep != nil {
			for _, rung := range rep.Rungs {
				status := "digest mismatch"
				switch {
				case rung.Verified:
					status = "VERIFIED"
				case rung.Skipped:
					status = "skipped: " + rung.Note
				}
				fmt.Fprintf(os.Stderr, "ibdecode: rung %-13s @ %2d captures — %s\n", rung.Name, rung.Captures, status)
			}
			if rep.Verified {
				fmt.Fprintf(os.Stderr, "ibdecode: verified on %q after %d captures (residual channel error %.2f%%)\n",
					rep.VerifiedRung, rep.CapturesSpent, 100*rep.ResidualChannelError)
			}
		}
		if err != nil {
			fatal(err)
		}
	} else {
		msg, err = carrier.Reveal(&rec, opts)
		if err != nil {
			fatal(err)
		}
		if rec.HasDigest() {
			if verr := rec.VerifyMessage(msg, opts.Key); verr != nil {
				fatal(verr)
			}
			fmt.Fprintln(os.Stderr, "ibdecode: integrity digest verified")
		}
	}
	if *outFile != "" {
		if err := ioatomic.WriteFile(*outFile, msg, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "ibdecode: recovered %d bytes -> %s\n", len(msg), *outFile)
		return
	}
	os.Stdout.Write(msg)
	if len(msg) > 0 && msg[len(msg)-1] != '\n' {
		fmt.Println()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ibdecode:", err)
	os.Exit(1)
}
