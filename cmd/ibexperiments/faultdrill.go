package main

import (
	"context"
	"fmt"

	"invisiblebits/internal/core"
	"invisiblebits/internal/device"
	"invisiblebits/internal/ecc"
	"invisiblebits/internal/faults"
	"invisiblebits/internal/fleet"
	"invisiblebits/internal/rig"
	"invisiblebits/internal/rng"
)

// runFaultDrill rehearses a worst-plausible-day fleet campaign: a
// four-device stripe where one primary dies mid-soak, one fights a flaky
// debugger link, and a third is destroyed after encoding — and the
// message still comes back, via a standby spare and an XOR parity
// carrier. It prints a per-shard report of what broke and what absorbed
// it.
func runFaultDrill(sramLimit int) error {
	if sramLimit <= 0 {
		sramLimit = 4 << 10
	}
	model, err := device.ByName("MSP432P401")
	if err != nil {
		return err
	}
	mount := func(serial string, p faults.Profile) (*rig.Rig, error) {
		d, err := device.New(model, serial, device.WithSRAMLimit(sramLimit))
		if err != nil {
			return nil, err
		}
		return rig.New(d, rig.WithInjector(faults.New(p, d.Serial))), nil
	}

	profiles := []struct {
		serial string
		p      faults.Profile
		note   string
	}{
		{"drill-0", faults.Profile{}, "healthy"},
		{"drill-1", faults.Profile{FailAtHours: 2}, "dies 2h into its soak"},
		{"drill-2", faults.Profile{Seed: 11, LinkDropRate: 0.25}, "25% debugger-link drop rate"},
		{"drill-3", faults.Profile{}, "healthy (sacrificed after encode)"},
	}
	rigs := make([]*rig.Rig, len(profiles))
	fmt.Println("fault drill: 4 primaries + 1 spare + 1 parity carrier")
	for i, pr := range profiles {
		if rigs[i], err = mount(pr.serial, pr.p); err != nil {
			return err
		}
		fmt.Printf("  primary %d  %-10s %s\n", i, pr.serial, pr.note)
	}
	spare, err := mount("drill-spare", faults.Profile{})
	if err != nil {
		return err
	}
	parity, err := mount("drill-xor", faults.Profile{})
	if err != nil {
		return err
	}

	rep, err := ecc.NewRepetition(7)
	if err != nil {
		return err
	}
	opts := core.Options{Codec: ecc.Composite{Outer: ecc.Hamming74{}, Inner: rep}}
	perDevice := core.MaxMessageBytes(sramLimit, opts.Codec)
	msg := make([]byte, perDevice*3+perDevice/2)
	rng.NewSource(42).Bytes(msg)
	fmt.Printf("\nstriping %d bytes (%d per device max) ...\n", len(msg), perDevice)

	ctx := context.Background()
	striped, err := fleet.StripeWithOptions(ctx, rigs, msg, opts,
		fleet.StripeOptions{Spares: []*rig.Rig{spare}, ParityRig: parity})
	if err != nil {
		return fmt.Errorf("stripe: %w", err)
	}
	for _, s := range striped.Shards {
		carrier := s.Record.DeviceID
		tag := ""
		if carrier == spare.Device().DeviceID() {
			tag = "  << re-routed to spare"
		}
		fmt.Printf("  shard %d  %4d B  on %s%s\n", s.Index,
			striped.SegmentSizes[s.Index], carrier, tag)
	}
	for i, r := range rigs {
		if !r.Device().Alive() {
			fmt.Printf("  primary %d (%s) died during encode\n", i, profiles[i].serial)
		}
	}

	fmt.Println("\ndestroying primary 3 after encode (device lost in transit) ...")
	rigs[3].Device().Kill(faults.ErrDeviceDead)

	all := append(append([]*rig.Rig{}, rigs...), spare, parity)
	report, err := fleet.GatherContext(ctx, all, striped, opts)
	if err != nil {
		return fmt.Errorf("gather: %w", err)
	}
	fmt.Println("\ngather report:")
	for _, st := range report.Shards {
		switch {
		case st.Err == nil:
			fmt.Printf("  shard %d  ok        (%s)\n", st.Index, st.DeviceID)
		case st.Recovered:
			fmt.Printf("  shard %d  RECOVERED via parity (carrier %s: %v)\n", st.Index, st.DeviceID, st.Err)
		default:
			fmt.Printf("  shard %d  LOST      (%v)\n", st.Index, st.Err)
		}
	}
	if !report.Complete {
		return fmt.Errorf("drill failed: %w", report.Err())
	}
	match := "MATCHES"
	for i := range msg {
		if report.Message[i] != msg[i] {
			match = "DIFFERS"
			break
		}
	}
	fmt.Printf("\nreassembled %d bytes — %s the original message\n", len(report.Message), match)
	fmt.Println(">> two dead devices and a flaky link; zero bytes lost")
	return nil
}
