// Command ibexperiments regenerates the paper's evaluation: every table
// and figure from §5–§7, rendered as text tables and ASCII charts.
//
// Usage:
//
//	ibexperiments -list                 enumerate experiments
//	ibexperiments -run fig6             run one experiment
//	ibexperiments -run all              run everything (the default)
//	ibexperiments -run all -summary     one verdict line per experiment
//	ibexperiments -full                 use full-size SRAM arrays (slower)
//	ibexperiments -faultdrill           rehearse a fleet campaign under faults
//	ibexperiments -retention            retention-decay sweep (± refresh)
//	ibexperiments -campaigndrill        crash/resume rehearsal of the supervisor
//	ibexperiments -scheddrill           kill/resume/decode rehearsal of the scheduler
package main

import (
	"flag"
	"fmt"
	"os"

	"invisiblebits/internal/experiments"
)

func main() {
	var (
		run       = flag.String("run", "all", "experiment ID, or 'all'")
		list      = flag.Bool("list", false, "list experiments and exit")
		summary   = flag.Bool("summary", false, "print one-line summaries only")
		full      = flag.Bool("full", false, "full-size SRAM arrays (paper scale; slower)")
		sram      = flag.Int("sram-limit", 0, "override SRAM sample size in bytes")
		drill     = flag.Bool("faultdrill", false, "run the fleet fault drill and exit")
		retention = flag.Bool("retention", false, "run the retention-decay sweep (decode success vs shelf years, with and without refresh) and exit")
		cdrill    = flag.Bool("campaigndrill", false, "run the campaign crash/resume drill and exit")
		sdrill    = flag.Bool("scheddrill", false, "run the multi-tenant scheduler kill/resume drill and exit")
	)
	flag.Parse()

	if *sdrill {
		if err := runSchedDrill(); err != nil {
			fatal(err)
		}
		return
	}

	if *cdrill {
		if err := runCampaignDrill(); err != nil {
			fatal(err)
		}
		return
	}

	if *drill {
		if err := runFaultDrill(*sram); err != nil {
			fatal(err)
		}
		return
	}
	if *retention {
		if err := runRetention(*sram); err != nil {
			fatal(err)
		}
		return
	}

	if *list {
		for _, info := range experiments.List() {
			fmt.Printf("%-8s %-12s %s\n", info.ID, info.PaperRef, info.Title)
		}
		return
	}

	cfg := experiments.Default()
	if *full {
		cfg = experiments.Full()
	}
	if *sram > 0 {
		cfg.SRAMLimitBytes = *sram
	}

	var results []experiments.Result
	if *run == "all" {
		var err error
		results, err = experiments.RunAll(cfg)
		if err != nil {
			fatal(err)
		}
	} else {
		res, err := experiments.Run(*run, cfg)
		if err != nil {
			fatal(err)
		}
		results = append(results, res)
	}

	for _, res := range results {
		if *summary {
			fmt.Printf("%-8s %s\n", res.ID(), res.Summary())
			continue
		}
		fmt.Println("================================================================")
		fmt.Println(res.Render())
		fmt.Printf(">> %s\n\n", res.Summary())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ibexperiments:", err)
	os.Exit(1)
}
