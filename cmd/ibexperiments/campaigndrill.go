package main

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"

	"invisiblebits/internal/campaign"
	"invisiblebits/internal/faults"
	"invisiblebits/internal/stegocrypt"
)

// runCampaignDrill rehearses the crash-safety story end to end: it runs
// a reference campaign to completion, then re-runs it with a kill switch
// armed at several points along the journal — mid-soak, at a checkpoint,
// after encode — resumes each crashed copy, and verifies the resumed
// outcome is bit-identical to the uninterrupted run, final device images
// included. This is the operator-facing rehearsal of the crash matrix
// test in internal/campaign.
func runCampaignDrill() error {
	ctx := context.Background()
	key := stegocrypt.KeyFromPassphrase("campaign-drill")
	base, err := os.MkdirTemp("", "ibcampaign-drill-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(base)

	msg := []byte("interrupt me and see if I care")
	spec := campaign.Spec{
		ID:              "drill",
		Model:           "MSP430G2553",
		Serials:         []string{"drill-0", "drill-1"},
		Message:         msg,
		Codec:           "paper",
		SliceHours:      2.5,
		CheckpointEvery: 2,
	}
	opts := campaign.Options{Key: &key}

	fmt.Printf("campaign drill: %d B message, 2× %s, 2.5 h slices, checkpoint every 2\n\n",
		len(msg), spec.Model)
	refDir := filepath.Join(base, "ref")
	ref, err := campaign.Run(ctx, refDir, spec, opts)
	if err != nil {
		return fmt.Errorf("reference run: %w", err)
	}
	refImages, err := readFinalImages(refDir, ref)
	if err != nil {
		return err
	}
	fmt.Printf("reference run: %d carriers encoded, %.1f equivalent bench hours\n",
		len(ref.Records), ref.EquivalentHours)

	for _, killAt := range []int{2, 7, 13, 19} {
		dir := filepath.Join(base, fmt.Sprintf("kill-%d", killAt))
		ks := faults.NewKillSwitch(killAt)
		_, err := campaign.Run(ctx, dir, spec, campaign.Options{Key: &key, Hook: ks.Hook()})
		if !ks.Fired() {
			fmt.Printf("  kill point %2d: past the end of the journal, run completed clean\n", killAt)
			continue
		}
		if err == nil {
			return fmt.Errorf("kill point %d fired but the run reported success", killAt)
		}
		res, err := campaign.Resume(ctx, dir, opts)
		if err != nil {
			return fmt.Errorf("resume after kill point %d: %w", killAt, err)
		}
		images, err := readFinalImages(dir, res)
		if err != nil {
			return err
		}
		for slot, ref := range refImages {
			if !bytes.Equal(images[slot], ref) {
				return fmt.Errorf("kill point %d: slot %d image differs after resume", killAt, slot)
			}
		}
		got, err := campaign.DecodeResult(ctx, dir, &key)
		if err != nil {
			return fmt.Errorf("decode after kill point %d: %w", killAt, err)
		}
		if !bytes.Equal(got, msg) {
			return fmt.Errorf("kill point %d: resumed campaign decodes to %q", killAt, got)
		}
		fmt.Printf("  kill point %2d: died at %-18s resumed, images bit-identical, message intact\n",
			killAt, ks.FiredAt()+",")
	}

	fmt.Println("\nverdict: every interruption resumed to the same images and the same message.")
	return nil
}

func readFinalImages(dir string, res *campaign.Result) (map[int][]byte, error) {
	out := map[int][]byte{}
	for slot, rec := range res.Records {
		if rec == nil {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, res.Images[slot]))
		if err != nil {
			return nil, fmt.Errorf("slot %d final image: %w", slot, err)
		}
		out[slot] = b
	}
	return out, nil
}
