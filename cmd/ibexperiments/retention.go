package main

import (
	"context"
	"fmt"

	"invisiblebits/internal/core"
	"invisiblebits/internal/device"
	"invisiblebits/internal/ecc"
	"invisiblebits/internal/faults"
	"invisiblebits/internal/rig"
	"invisiblebits/internal/rng"
	"invisiblebits/internal/stegocrypt"
)

// retentionTempC is the sweep's shelf temperature: warm storage (a
// device forgotten in a car, a depot without climate control), which
// accelerates imprint recovery well beyond room-temperature decay.
const retentionTempC = 45

// runRetention sweeps decode success against simulated shelf years at
// elevated temperature, with and without a mid-life refresh. Every
// device, payload, and fault sequence is seeded, so two runs print
// byte-identical tables — the CI determinism job diffs exactly this.
func runRetention(sramLimit int) error {
	if sramLimit <= 0 {
		sramLimit = 4 << 10
	}
	model, err := device.ByName("MSP432P401")
	if err != nil {
		return err
	}
	rep7, err := ecc.NewRepetition(7)
	if err != nil {
		return err
	}
	key := stegocrypt.KeyFromPassphrase("retention-sweep")
	opts := core.Options{
		Codec:       ecc.Composite{Outer: ecc.Hamming74{}, Inner: rep7},
		Key:         &key,
		StressHours: 14,
	}
	aopts := core.AdaptiveOptions{Options: opts}
	msg := make([]byte, 192)
	rng.NewSource(2022).Bytes(msg)

	// Weak cells make the channel hostile in exactly the way hard
	// majority voting cannot fix: a per-capture coin flip is wrong with
	// probability 1/2 no matter how many captures vote. Soft and
	// erasure decoding neutralize them instead.
	profile := faults.Profile{Seed: 7, WeakFrac: 0.14}
	mount := func(serial string) (*rig.Rig, error) {
		d, err := device.New(model, serial, device.WithSRAMLimit(sramLimit))
		if err != nil {
			return nil, err
		}
		return rig.New(d, rig.WithInjector(faults.New(profile, d.Serial))), nil
	}

	ctx := context.Background()
	years := []float64{0, 1, 2, 4, 8}
	fmt.Printf("retention sweep: %d-byte message, %.0fh stress, shelf at %d°C, weak cells %.0f%%\n",
		len(msg), opts.StressHours, retentionTempC, 100*profile.WeakFrac)
	fmt.Println("\nyears | margin | hard@5    | adaptive       | refreshed hard@5")
	fmt.Println("------+--------+-----------+----------------+-----------------")

	for _, yr := range years {
		hours := yr * 365 * 24

		// Arm 1: shelve the full span, then decode.
		r, err := mount(fmt.Sprintf("vault-%.0fy", yr))
		if err != nil {
			return err
		}
		rec, err := core.EncodeContext(ctx, r, msg, opts)
		if err != nil {
			return err
		}
		if hours > 0 {
			if err := r.ShelveAtFor(hours, retentionTempC); err != nil {
				return err
			}
		}
		probe, err := r.ProbeHealthContext(ctx, 0, 0)
		if err != nil {
			return err
		}
		hardOK := "ok"
		if hmsg, err := core.DecodeContext(ctx, r, rec, opts); err != nil || rec.VerifyMessage(hmsg, opts.Key) != nil {
			hardOK = "FAIL"
		}
		adaptOK := "FAIL"
		if _, drep, err := core.DecodeAdaptive(ctx, r, rec, aopts); err == nil {
			adaptOK = fmt.Sprintf("ok (%s@%d)", drep.VerifiedRung, drep.CapturesSpent)
		}

		// Arm 2: same span with a refresh at half-life.
		refreshOK := "ok"
		if hours > 0 {
			r2, err := mount(fmt.Sprintf("vault-refresh-%.0fy", yr))
			if err != nil {
				return err
			}
			rec2, err := core.EncodeContext(ctx, r2, msg, opts)
			if err != nil {
				return err
			}
			if err := r2.ShelveAtFor(hours/2, retentionTempC); err != nil {
				return err
			}
			if _, err := core.Refresh(ctx, r2, rec2, aopts, opts.StressHours); err != nil {
				refreshOK = "refresh FAIL"
			} else if err := r2.ShelveAtFor(hours/2, retentionTempC); err != nil {
				return err
			} else if rmsg, err := core.DecodeContext(ctx, r2, rec2, opts); err != nil || rec2.VerifyMessage(rmsg, opts.Key) != nil {
				refreshOK = "FAIL"
			}
		}

		fmt.Printf("%5.0f | %.3f  | %-9s | %-14s | %s\n",
			yr, probe.MeanMargin, hardOK, adaptOK, refreshOK)
	}
	fmt.Println("\n>> fixed-effort decode dies with shelf decay; the adaptive ladder and mid-life refresh keep the channel alive")
	return nil
}
