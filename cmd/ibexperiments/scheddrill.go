package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"invisiblebits/internal/campaign"
	"invisiblebits/internal/faults"
	"invisiblebits/internal/fleet"
	"invisiblebits/internal/sched"
	"invisiblebits/internal/stegocrypt"
)

// runSchedDrill rehearses the multi-tenant scheduler end to end: a
// handful of tenants submit campaigns (one of them onto a carrier that
// dies mid-soak, with a spare standing by; one doomed with no spare),
// the whole scheduler is killed mid-flight, resumed from its journal,
// drained — and every surviving campaign must decode to its original
// message. This is the operator-facing rehearsal of the crash matrix
// and fault-storm tests in internal/sched.
func runSchedDrill() error {
	keyFor := func(tenant, id string) *stegocrypt.Key {
		k := stegocrypt.KeyFromPassphrase("sched-drill|" + tenant + "|" + id)
		return &k
	}
	base, err := os.MkdirTemp("", "ibsched-drill-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(base)

	sub := func(tenant, id string, serials []string, spares ...string) sched.Submission {
		return sched.Submission{
			Tenant: tenant,
			Spares: spares,
			Spec: campaign.Spec{
				ID: id, Model: "MSP430G2553", Serials: serials,
				Message: []byte("payload for " + id), Codec: "paper",
				StressHours: 7.5, SliceHours: 2.5, CheckpointEvery: 2,
			},
		}
	}
	subs := []sched.Submission{
		sub("alice", "drill-a", []string{"al-0"}),
		sub("bob", "drill-b", []string{"bo-0", "bo-1"}),
		sub("carol", "drill-c", []string{"dead-0"}, "spare-0"),
		sub("dave", "drill-d", []string{"dead-1"}),
	}
	cfg := sched.Config{
		KeyFor: keyFor,
		InjectorFor: func(serial string) faults.Injector {
			if len(serial) >= 4 && serial[:4] == "dead" {
				return faults.New(faults.Profile{Seed: 11, FailAtHours: 1}, serial)
			}
			return nil
		},
		Breakers: fleet.NewBreakerSet(fleet.BreakerConfig{
			FailureThreshold: 1, BaseBackoffHours: 1, QuarantineAfterTrips: 1,
		}),
	}

	fmt.Printf("scheduler drill: %d tenants, one carrier rerouting to a spare, one doomed, kill mid-flight\n\n", len(subs))

	dir := filepath.Join(base, "sched")
	ks := faults.NewKillSwitch(40)
	killCfg := cfg
	killCfg.Hook = ks.Hook()
	s, err := sched.New(dir, killCfg)
	if err != nil {
		return err
	}
	for _, sb := range subs {
		if err := s.Submit(sb); err != nil && !errors.Is(err, faults.ErrKilled) {
			return fmt.Errorf("submit %s: %w", sb.Spec.ID, err)
		}
	}
	drainErr := s.Drain(context.Background())
	if !ks.Fired() {
		return errors.New("kill switch never fired; raise the kill point")
	}
	if drainErr == nil {
		return errors.New("killed scheduler drained cleanly")
	}
	fmt.Printf("killed at %s — resuming from the journal\n", ks.FiredAt())

	rs, err := sched.Resume(dir, cfg)
	if err != nil {
		return fmt.Errorf("resume: %w", err)
	}
	for _, sb := range subs {
		if err := rs.Submit(sb); err != nil && !errors.Is(err, sched.ErrDuplicateCampaign) {
			return fmt.Errorf("re-submit %s: %w", sb.Spec.ID, err)
		}
	}
	if err := rs.Drain(context.Background()); err != nil {
		return fmt.Errorf("drain after resume: %w", err)
	}

	st := rs.Status()
	fmt.Printf("\ndrained: %d done, %d failed, %.1f chamber hours over %d passes (%d batched slices)\n",
		st.Done, st.Failed, st.ChamberHours, st.Passes, st.BatchedSlices)
	if st.Done != 3 || st.Failed != 1 {
		return fmt.Errorf("expected 3 done / 1 failed, got %d/%d", st.Done, st.Failed)
	}
	for _, sb := range subs[:3] {
		id := sb.Spec.ID
		got, err := campaign.DecodeResult(context.Background(),
			filepath.Join(dir, "campaigns", id), keyFor(sb.Tenant, id))
		if err != nil {
			return fmt.Errorf("decode %s: %w", id, err)
		}
		if !bytes.Equal(got, sb.Spec.Message) {
			return fmt.Errorf("campaign %s decodes to %q", id, got)
		}
		cs, _ := rs.Campaign(id)
		fmt.Printf("  %-8s %-6s decoded OK (baselines %v)\n", id, cs.State, cs.Baselines)
	}
	dd, _ := rs.Campaign("drill-d")
	fmt.Printf("  %-8s %-6s %s\n", "drill-d", dd.State, dd.Error)

	fmt.Println("\nverdict: kill + resume + carrier death all absorbed; every surviving campaign decodes.")
	return nil
}
