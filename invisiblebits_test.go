package invisiblebits

import (
	"bytes"
	"testing"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	model, err := Model("MSP432P401")
	if err != nil {
		t.Fatal(err)
	}
	dev, err := NewDeviceSampled(model, "api-test", 8<<10)
	if err != nil {
		t.Fatal(err)
	}
	carrier := NewCarrier(dev)

	key := KeyFromPassphrase("pre-shared secret")
	opts := Options{Codec: PaperCodec(), Key: &key}
	msg := []byte("public API round trip")

	rec, err := carrier.Hide(msg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := carrier.Shelve(14 * 24); err != nil {
		t.Fatal(err)
	}
	got, err := carrier.Reveal(rec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("revealed %q, want %q", got, msg)
	}
}

func TestModelsCatalog(t *testing.T) {
	ms := Models()
	if len(ms) != 12 {
		t.Fatalf("catalog size = %d", len(ms))
	}
	// The returned slice must be a copy.
	ms[0].Name = "tampered"
	if Models()[0].Name == "tampered" {
		t.Fatal("Models exposes internal catalog")
	}
	if _, err := Model("nope"); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestCodecConstructors(t *testing.T) {
	if _, err := Repetition(4); err == nil {
		t.Error("even repetition accepted")
	}
	rep, err := Repetition(5)
	if err != nil {
		t.Fatal(err)
	}
	comp := Compose(Hamming74(), rep)
	if comp.Name() != "hamming(7,4)+repetition(5)" {
		t.Errorf("name = %q", comp.Name())
	}
	if PaperCodec().Name() != "hamming(7,4)+repetition(7)" {
		t.Errorf("paper codec = %q", PaperCodec().Name())
	}
}

func TestMaxMessageBytesPublic(t *testing.T) {
	rep5, err := Repetition(5)
	if err != nil {
		t.Fatal(err)
	}
	if got := MaxMessageBytes(64<<10, rep5); got != 13107 {
		t.Errorf("capacity = %d, want 13107 (12.8KB, §5.3)", got)
	}
}

func TestCarrierAccessors(t *testing.T) {
	model, _ := Model("ATSAML11E16A")
	dev, err := NewDevice(model, "acc")
	if err != nil {
		t.Fatal(err)
	}
	c := NewCarrier(dev)
	if c.Device() != dev {
		t.Error("Device accessor broken")
	}
	if c.Rig() == nil || c.Rig().Device() != dev {
		t.Error("Rig accessor broken")
	}
	if dev.SRAM.Bytes() != model.SRAMBytes {
		t.Errorf("full-size device has %d bytes", dev.SRAM.Bytes())
	}
}
